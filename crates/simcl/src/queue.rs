//! In-order command queue execution.
//!
//! Each `cl_command_queue` owns a worker thread that drains commands in
//! FIFO order, honouring event wait lists, updating event status and
//! profiling timestamps, and accounting device-busy time. This gives the
//! silo authentic asynchrony: `clEnqueue*` returns immediately and
//! `clFinish`/blocking reads synchronize, exactly the behaviour AvA's
//! sync/async forwarding annotations interact with.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use crate::device::DeviceState;
use crate::event::EventCore;
use crate::kernels::{Invocation, Slot};
use crate::mem::AlignedBuf;
use crate::objects::{BoundArg, MemObj};
use crate::status::{CL_INVALID_KERNEL_ARGS, CL_INVALID_VALUE};

/// A command accepted by the queue worker.
pub enum Command {
    /// Execute an NDRange kernel.
    RunKernel {
        /// Kernel body to execute.
        body: Arc<dyn crate::kernels::KernelBody>,
        /// Arguments captured at enqueue time.
        args: Vec<BoundArg>,
        /// Global work size.
        global: [usize; 3],
        /// Work-group size.
        local: [usize; 3],
        /// Events that must complete first.
        wait: Vec<Arc<EventCore>>,
        /// Completion event.
        event: Arc<EventCore>,
    },
    /// Copy host data into a buffer.
    WriteBuffer {
        /// Destination buffer.
        mem: Arc<MemObj>,
        /// Destination offset in bytes.
        offset: usize,
        /// Source bytes (owned copy taken at enqueue).
        data: Vec<u8>,
        /// Events that must complete first.
        wait: Vec<Arc<EventCore>>,
        /// Completion event.
        event: Arc<EventCore>,
    },
    /// Copy a buffer into a host-visible result slot.
    ReadBuffer {
        /// Source buffer.
        mem: Arc<MemObj>,
        /// Source offset in bytes.
        offset: usize,
        /// Bytes to read.
        len: usize,
        /// Where the worker deposits the bytes.
        result: Arc<Mutex<Option<Vec<u8>>>>,
        /// Events that must complete first.
        wait: Vec<Arc<EventCore>>,
        /// Completion event.
        event: Arc<EventCore>,
    },
    /// Device-side buffer-to-buffer copy.
    CopyBuffer {
        /// Source buffer.
        src: Arc<MemObj>,
        /// Destination buffer.
        dst: Arc<MemObj>,
        /// Source offset in bytes.
        src_offset: usize,
        /// Destination offset in bytes.
        dst_offset: usize,
        /// Bytes to copy.
        len: usize,
        /// Events that must complete first.
        wait: Vec<Arc<EventCore>>,
        /// Completion event.
        event: Arc<EventCore>,
    },
    /// Barrier used by `clFinish`: completes when everything before it has.
    Marker {
        /// Completion event.
        event: Arc<EventCore>,
    },
    /// Stop the worker.
    Shutdown,
}

/// Worker loop: drains `rx` until `Shutdown`.
pub fn run_worker(rx: Receiver<Command>, device: Arc<DeviceState>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Shutdown => break,
            Command::Marker { event } => {
                let now = device.now_nanos();
                event.mark_submitted(now);
                event.mark_running(now);
                event.mark_complete(device.now_nanos());
            }
            Command::RunKernel {
                body,
                args,
                global,
                local,
                wait,
                event,
            } => {
                wait_all(&wait);
                event.mark_submitted(device.now_nanos());
                event.mark_running(device.now_nanos());
                let started = Instant::now();
                let result = execute_kernel(&body, &args, global, local);
                let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                device.add_busy(elapsed);
                match result {
                    Ok(()) => event.mark_complete(device.now_nanos()),
                    Err(e) => event.mark_failed(e.0, device.now_nanos()),
                }
            }
            Command::WriteBuffer {
                mem,
                offset,
                data,
                wait,
                event,
            } => {
                wait_all(&wait);
                event.mark_submitted(device.now_nanos());
                event.mark_running(device.now_nanos());
                let mut buf = mem.data.lock();
                match checked_range(&buf, offset, data.len()) {
                    Ok(()) => {
                        buf.as_bytes_mut()[offset..offset + data.len()].copy_from_slice(&data);
                        drop(buf);
                        event.mark_complete(device.now_nanos());
                    }
                    Err(code) => {
                        drop(buf);
                        event.mark_failed(code, device.now_nanos());
                    }
                }
            }
            Command::ReadBuffer {
                mem,
                offset,
                len,
                result,
                wait,
                event,
            } => {
                wait_all(&wait);
                event.mark_submitted(device.now_nanos());
                event.mark_running(device.now_nanos());
                let buf = mem.data.lock();
                match checked_range(&buf, offset, len) {
                    Ok(()) => {
                        let bytes = buf.as_bytes()[offset..offset + len].to_vec();
                        drop(buf);
                        *result.lock() = Some(bytes);
                        event.mark_complete(device.now_nanos());
                    }
                    Err(code) => {
                        drop(buf);
                        event.mark_failed(code, device.now_nanos());
                    }
                }
            }
            Command::CopyBuffer {
                src,
                dst,
                src_offset,
                dst_offset,
                len,
                wait,
                event,
            } => {
                wait_all(&wait);
                event.mark_submitted(device.now_nanos());
                event.mark_running(device.now_nanos());
                let status = (|| {
                    if Arc::ptr_eq(&src, &dst) {
                        // Same-buffer copy: use one lock and a temp copy.
                        let mut buf = dst.data.lock();
                        checked_range(&buf, src_offset, len)?;
                        checked_range(&buf, dst_offset, len)?;
                        let tmp = buf.as_bytes()[src_offset..src_offset + len].to_vec();
                        buf.as_bytes_mut()[dst_offset..dst_offset + len].copy_from_slice(&tmp);
                        return Ok(());
                    }
                    // Lock in id order to avoid deadlock against another
                    // queue copying the opposite direction.
                    let (first, second) = if src.id < dst.id {
                        (&src, &dst)
                    } else {
                        (&dst, &src)
                    };
                    let g1 = first.data.lock();
                    let g2 = second.data.lock();
                    let (sbuf, mut dbuf) = if src.id < dst.id { (g1, g2) } else { (g2, g1) };
                    checked_range(&sbuf, src_offset, len)?;
                    checked_range(&dbuf, dst_offset, len)?;
                    let tmp = sbuf.as_bytes()[src_offset..src_offset + len].to_vec();
                    dbuf.as_bytes_mut()[dst_offset..dst_offset + len].copy_from_slice(&tmp);
                    Ok(())
                })();
                match status {
                    Ok(()) => event.mark_complete(device.now_nanos()),
                    Err(code) => event.mark_failed(code, device.now_nanos()),
                }
            }
        }
    }
}

fn wait_all(events: &[Arc<EventCore>]) {
    for ev in events {
        // A failed dependency still unblocks the waiter; the dependent
        // command proceeds, matching our simplified in-order semantics.
        let _ = ev.wait();
    }
}

fn checked_range(buf: &AlignedBuf, offset: usize, len: usize) -> Result<(), i32> {
    if offset
        .checked_add(len)
        .map(|end| end <= buf.len())
        .unwrap_or(false)
    {
        Ok(())
    } else {
        Err(CL_INVALID_VALUE)
    }
}

/// Locks all argument buffers (in id order) and runs the kernel body.
fn execute_kernel(
    body: &Arc<dyn crate::kernels::KernelBody>,
    args: &[BoundArg],
    global: [usize; 3],
    local: [usize; 3],
) -> Result<(), crate::status::ClError> {
    // Collect unique memory objects, sorted by id for deadlock-free locking.
    let mut mems: Vec<Arc<MemObj>> = Vec::new();
    for arg in args {
        if let BoundArg::Mem(m) = arg {
            if !mems.iter().any(|x| Arc::ptr_eq(x, m)) {
                mems.push(Arc::clone(m));
            }
        }
    }
    mems.sort_by_key(|m| m.id);
    let mut guards: Vec<(u64, parking_lot::MutexGuard<'_, AlignedBuf>)> =
        mems.iter().map(|m| (m.id, m.data.lock())).collect();
    let mut views: HashMap<u64, &mut AlignedBuf> = HashMap::new();
    for (id, guard) in guards.iter_mut() {
        views.insert(*id, &mut **guard);
    }
    let mut slots: Vec<Slot<'_>> = Vec::with_capacity(args.len());
    for arg in args {
        match arg {
            BoundArg::Mem(m) => {
                // A buffer bound to two argument slots would need aliasing
                // `&mut` views; reject it (none of the supported kernels
                // use that pattern).
                let view = views
                    .remove(&m.id)
                    .ok_or(crate::status::ClError(CL_INVALID_KERNEL_ARGS))?;
                slots.push(Slot::Buf(view.as_bytes_mut()));
            }
            BoundArg::Local(n) => slots.push(Slot::Local(*n)),
            BoundArg::Scalar(b) => slots.push(Slot::Scalar(b.clone())),
        }
    }
    let mut inv = Invocation::new(global, local, slots);
    body.execute(&mut inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::kernels::KernelRegistry;
    use crate::mem::{bytes_to_f32, f32_to_bytes};
    use crate::types::MemFlags;
    use crossbeam::channel::unbounded;

    fn mem(id: u64, device: &Arc<DeviceState>, bytes: &[u8]) -> Arc<MemObj> {
        Arc::new(MemObj {
            id,
            ctx: 1,
            size: bytes.len(),
            flags: MemFlags::read_write(),
            image: None,
            device: Arc::clone(device),
            data: Mutex::new(AlignedBuf::from_bytes(bytes)),
            refs: crate::objects::RefCount::new(),
        })
    }

    fn start_worker() -> (
        crossbeam::channel::Sender<Command>,
        std::thread::JoinHandle<()>,
        Arc<DeviceState>,
    ) {
        let device = Arc::new(DeviceState::new(DeviceConfig::default()));
        let (tx, rx) = unbounded();
        let dev = Arc::clone(&device);
        let handle = std::thread::spawn(move || run_worker(rx, dev));
        (tx, handle, device)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (tx, handle, device) = start_worker();
        let m = mem(1, &device, &[0u8; 16]);
        let ev1 = Arc::new(EventCore::new(true));
        tx.send(Command::WriteBuffer {
            mem: Arc::clone(&m),
            offset: 4,
            data: vec![9, 8, 7, 6],
            wait: vec![],
            event: Arc::clone(&ev1),
        })
        .unwrap();
        let result = Arc::new(Mutex::new(None));
        let ev2 = Arc::new(EventCore::new(true));
        tx.send(Command::ReadBuffer {
            mem: m,
            offset: 0,
            len: 8,
            result: Arc::clone(&result),
            wait: vec![],
            event: Arc::clone(&ev2),
        })
        .unwrap();
        ev2.wait().unwrap();
        assert_eq!(result.lock().take().unwrap(), vec![0, 0, 0, 0, 9, 8, 7, 6]);
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn kernel_runs_and_accumulates_busy_time() {
        let (tx, handle, device) = start_worker();
        let reg = KernelRegistry::new().with_builtins();
        let a = mem(1, &device, &f32_to_bytes(&[1.0, 2.0]));
        let b = mem(2, &device, &f32_to_bytes(&[5.0, 6.0]));
        let c = mem(3, &device, &[0u8; 8]);
        let ev = Arc::new(EventCore::new(true));
        tx.send(Command::RunKernel {
            body: reg.get("vector_add").unwrap(),
            args: vec![
                BoundArg::Mem(Arc::clone(&a)),
                BoundArg::Mem(Arc::clone(&b)),
                BoundArg::Mem(Arc::clone(&c)),
                BoundArg::Scalar(2u32.to_le_bytes().to_vec()),
            ],
            global: [2, 1, 1],
            local: [1, 1, 1],
            wait: vec![],
            event: Arc::clone(&ev),
        })
        .unwrap();
        ev.wait().unwrap();
        assert_eq!(bytes_to_f32(c.data.lock().as_bytes()), vec![6.0, 8.0]);
        assert!(device.busy_nanos() > 0);
        let p = ev.profiling().unwrap();
        assert!(p.ended >= p.started);
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn copy_buffer_moves_data() {
        let (tx, handle, device) = start_worker();
        let src = mem(1, &device, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let dst = mem(2, &device, &[0u8; 8]);
        let ev = Arc::new(EventCore::new(false));
        tx.send(Command::CopyBuffer {
            src,
            dst: Arc::clone(&dst),
            src_offset: 2,
            dst_offset: 0,
            len: 4,
            wait: vec![],
            event: Arc::clone(&ev),
        })
        .unwrap();
        ev.wait().unwrap();
        assert_eq!(&dst.data.lock().as_bytes()[..4], &[3, 4, 5, 6]);
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn out_of_range_read_fails_event() {
        let (tx, handle, device) = start_worker();
        let m = mem(1, &device, &[0u8; 4]);
        let result = Arc::new(Mutex::new(None));
        let ev = Arc::new(EventCore::new(false));
        tx.send(Command::ReadBuffer {
            mem: m,
            offset: 2,
            len: 10,
            result,
            wait: vec![],
            event: Arc::clone(&ev),
        })
        .unwrap();
        assert!(ev.wait().is_err());
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn wait_list_orders_cross_commands() {
        let (tx, handle, device) = start_worker();
        let m = mem(1, &device, &[0u8; 4]);
        let gate = Arc::new(EventCore::new(false));
        // The write depends on `gate`, which nothing in this queue
        // completes; reading after it must still see the write because the
        // queue is in-order — so complete the gate from the test thread.
        let ev_w = Arc::new(EventCore::new(false));
        tx.send(Command::WriteBuffer {
            mem: Arc::clone(&m),
            offset: 0,
            data: vec![42, 0, 0, 0],
            wait: vec![Arc::clone(&gate)],
            event: Arc::clone(&ev_w),
        })
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_ne!(m.data.lock().as_bytes()[0], 42, "write ran before gate");
        gate.mark_complete(0);
        ev_w.wait().unwrap();
        assert_eq!(m.data.lock().as_bytes()[0], 42);
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn duplicate_buffer_args_rejected() {
        let (tx, handle, device) = start_worker();
        let reg = KernelRegistry::new().with_builtins();
        let a = mem(1, &device, &f32_to_bytes(&[1.0, 2.0]));
        let ev = Arc::new(EventCore::new(false));
        tx.send(Command::RunKernel {
            body: reg.get("vector_add").unwrap(),
            args: vec![
                BoundArg::Mem(Arc::clone(&a)),
                BoundArg::Mem(Arc::clone(&a)),
                BoundArg::Mem(Arc::clone(&a)),
                BoundArg::Scalar(2u32.to_le_bytes().to_vec()),
            ],
            global: [2, 1, 1],
            local: [1, 1, 1],
            wait: vec![],
            event: Arc::clone(&ev),
        })
        .unwrap();
        assert_eq!(
            ev.wait(),
            Err(crate::status::ClError(CL_INVALID_KERNEL_ARGS))
        );
        tx.send(Command::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
