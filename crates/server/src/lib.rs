//! `ava-server` — the API-agnostic server runtime of AvA (Figure 3's "API
//! server", §4.1).
//!
//! A per-VM [`ApiServer`] executes forwarded API calls on behalf of a
//! guest application. The runtime is fully descriptor-driven; the
//! API-specific part is a CAvA-generated [`ApiHandler`] that binds to the
//! real silo. On top of plain dispatch the runtime implements the §4.3
//! resource-management machinery:
//!
//! * **handle translation** — guests only ever see server-minted wire
//!   handles;
//! * **object tracking** — calls annotated `record(...)` are logged;
//! * **VM migration** — snapshot (records + buffer payloads) and restore
//!   by replay on another host;
//! * **buffer-granularity memory swapping** — on device OOM or
//!   capacity pressure, evict the LRU tracked buffer to host memory and
//!   transparently restore it on next use;
//! * **device-memory virtualization** — per-VM quotas (over-quota
//!   allocations are refused with a clean `QuotaExceeded` reply) and a
//!   per-device [`MemoryManager`] that accounts residency and
//!   deduplicates swapped payloads by content digest;
//! * **at-most-once execution** — duplicate call frames (guest retries,
//!   transport duplication) are answered from a bounded reply cache, never
//!   re-executed;
//! * **crash recovery** — every executed call is journaled so a supervisor
//!   can rebuild a crashed server by deterministic replay
//!   ([`ApiServer::replay_journal`]).

pub mod error;
pub mod handler;
pub mod handles;
pub mod memory;
pub mod record;
pub mod server;

pub use error::{Result, ServerError};
pub use handler::{shared_handler, ApiHandler, HandlerOutput, SharedHandler};
pub use handles::{HandleEntry, HandleState, HandleTable};
pub use memory::{MemoryManager, MemoryStats};
pub use record::{CallJournal, JournalEntry, MigrationImage, RecordLog, RecordedCall};
pub use server::{ApiServer, ServeExit, ServerStats};

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;

    use ava_spec::{compile_spec, ApiDescriptor, FunctionDesc, LowerOptions, MapResolver};
    use ava_wire::{CallMode, CallRequest, ReplyStatus, Value};

    use super::*;

    /// A toy "device" with named objects, used to exercise the runtime
    /// without pulling in a real silo.
    struct ToyHandler {
        next_silo: u64,
        /// silo handle → (capacity, contents)
        objects: HashMap<u64, Vec<u8>>,
        /// Simulated device capacity in bytes.
        capacity: usize,
        fail_next_alloc_with_oom: bool,
    }

    impl ToyHandler {
        fn new(capacity: usize) -> Self {
            ToyHandler {
                next_silo: 1,
                objects: HashMap::new(),
                capacity,
                fail_next_alloc_with_oom: false,
            }
        }

        fn used(&self) -> usize {
            self.objects.values().map(Vec::len).sum()
        }
    }

    impl ApiHandler for ToyHandler {
        fn dispatch(&mut self, func: &FunctionDesc, args: &[Value]) -> Result<HandlerOutput> {
            match func.name.as_str() {
                "toy_init" => Ok(HandlerOutput::ret(Value::I32(0))),
                "toy_create" => {
                    let size = args[0].as_u64().unwrap_or(0) as usize;
                    if self.fail_next_alloc_with_oom {
                        self.fail_next_alloc_with_oom = false;
                        return Ok(HandlerOutput::ret(Value::Null));
                    }
                    if self.used() + size > self.capacity {
                        return Ok(HandlerOutput::ret(Value::Null)); // device OOM
                    }
                    let silo = self.next_silo;
                    self.next_silo += 1;
                    self.objects.insert(silo, vec![0; size]);
                    Ok(HandlerOutput::ret(Value::Handle(silo)))
                }
                "toy_write" => {
                    let silo = args[0].as_handle().expect("handle arg");
                    let data = args[1].as_bytes().expect("bytes arg").to_vec();
                    let obj = self
                        .objects
                        .get_mut(&silo)
                        .ok_or(ServerError::BadHandle(silo))?;
                    let n = data.len().min(obj.len());
                    obj[..n].copy_from_slice(&data[..n]);
                    Ok(HandlerOutput::ret(Value::I32(0)))
                }
                "toy_read" => {
                    let silo = args[0].as_handle().expect("handle arg");
                    let len = args[2].as_u64().unwrap_or(0) as usize;
                    let obj = self
                        .objects
                        .get(&silo)
                        .ok_or(ServerError::BadHandle(silo))?;
                    let bytes = obj[..len.min(obj.len())].to_vec();
                    Ok(HandlerOutput {
                        ret: Value::I32(0),
                        outputs: vec![(1, Value::Bytes(bytes.into()))],
                        destroyed: None,
                    })
                }
                "toy_destroy" => {
                    let silo = args[0].as_handle().expect("handle arg");
                    self.objects.remove(&silo);
                    Ok(HandlerOutput::ret(Value::I32(0)))
                }
                other => Err(ServerError::Handler(format!("unknown fn {other}"))),
            }
        }

        fn swappable_kinds(&self) -> &[&str] {
            &["toy_buf"]
        }

        fn snapshot_object(&mut self, _kind: &str, silo: u64) -> Option<Vec<u8>> {
            self.objects.get(&silo).cloned()
        }

        fn restore_object(&mut self, _kind: &str, silo: u64, data: &[u8]) -> bool {
            match self.objects.get_mut(&silo) {
                Some(obj) if obj.len() == data.len() => {
                    obj.copy_from_slice(data);
                    true
                }
                _ => false,
            }
        }

        fn drop_object(&mut self, _kind: &str, silo: u64) -> bool {
            self.objects.remove(&silo).is_some()
        }

        fn ret_indicates_oom(&self, func: &FunctionDesc, ret: &Value) -> bool {
            func.name == "toy_create" && ret.is_null()
        }
    }

    const TOY_SPEC: &str = r#"
api("toy", 1);
#define TOY_OK 0
typedef int toy_status;
typedef struct _toy_buf *toy_buf;
type(toy_status) { success(TOY_OK); }
toy_status toy_init(unsigned int flags) { record(config); }
toy_buf toy_create(size_t size) {
  record(alloc);
  resource(device_mem, size);
}
toy_status toy_write(toy_buf buf, const void *data, size_t data_size) {
  record(modify);
  parameter(data) { buffer(data_size); }
}
toy_status toy_read(toy_buf buf, void *out, size_t out_size) {
  parameter(out) { out; buffer(out_size); }
}
toy_status toy_destroy(toy_buf buf) {
  record(dealloc);
  parameter(buf) { deallocates; }
}
"#;

    fn toy_descriptor() -> Arc<ApiDescriptor> {
        Arc::new(compile_spec(TOY_SPEC, &MapResolver::new(), LowerOptions::default()).unwrap())
    }

    fn call(desc: &ApiDescriptor, name: &str, args: Vec<Value>) -> CallRequest {
        CallRequest {
            call_id: 0,
            fn_id: desc.by_name(name).unwrap().id,
            mode: CallMode::Sync,
            args,
            budget_us: 0,
        }
    }

    fn create_buf(server: &mut ApiServer, desc: &ApiDescriptor, size: u64) -> u64 {
        let rep = server.handle_call(call(desc, "toy_create", vec![Value::U64(size)]));
        assert_eq!(rep.status, ReplyStatus::Ok);
        rep.ret.as_handle().expect("created handle")
    }

    fn write_buf(server: &mut ApiServer, desc: &ApiDescriptor, h: u64, data: &[u8]) {
        let rep = server.handle_call(call(
            desc,
            "toy_write",
            vec![
                Value::Handle(h),
                Value::Bytes(data.to_vec().into()),
                Value::U64(data.len() as u64),
            ],
        ));
        assert_eq!(rep.status, ReplyStatus::Ok);
        assert_eq!(rep.ret, Value::I32(0));
    }

    fn read_buf(server: &mut ApiServer, desc: &ApiDescriptor, h: u64, len: u64) -> Vec<u8> {
        let rep = server.handle_call(call(
            desc,
            "toy_read",
            vec![Value::Handle(h), Value::Null, Value::U64(len)],
        ));
        assert_eq!(rep.status, ReplyStatus::Ok);
        rep.outputs[0].1.as_bytes().unwrap().to_vec()
    }

    #[test]
    fn create_write_read_destroy_cycle() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        let h = create_buf(&mut server, &desc, 16);
        assert!(
            h >= 0x4000_0000,
            "guest sees wire handles, not silo handles"
        );
        write_buf(&mut server, &desc, h, b"hello");
        assert_eq!(&read_buf(&mut server, &desc, h, 5), b"hello");
        let rep = server.handle_call(call(&desc, "toy_destroy", vec![Value::Handle(h)]));
        assert_eq!(rep.status, ReplyStatus::Ok);
        // Handle is dead now.
        let rep = server.handle_call(call(
            &desc,
            "toy_read",
            vec![Value::Handle(h), Value::Null, Value::U64(1)],
        ));
        assert_eq!(rep.status, ReplyStatus::TransportError);
    }

    #[test]
    fn unknown_function_is_transport_error() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let rep = server.handle_call(CallRequest {
            call_id: 7,
            fn_id: 999,
            mode: CallMode::Sync,
            args: vec![],
            budget_us: 0,
        });
        assert_eq!(rep.status, ReplyStatus::TransportError);
        assert_eq!(rep.call_id, 7);
    }

    #[test]
    fn wrong_arg_count_is_transport_error() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let rep = server.handle_call(call(&desc, "toy_create", vec![]));
        assert_eq!(rep.status, ReplyStatus::TransportError);
    }

    #[test]
    fn record_log_tracks_alloc_and_cancels_on_dealloc() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.handle_call(call(&desc, "toy_init", vec![Value::U32(0)]));
        let h = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h, b"x");
        assert_eq!(server.stats().recorded, 3); // init + create + write
        server.handle_call(call(&desc, "toy_destroy", vec![Value::Handle(h)]));
        assert_eq!(server.stats().recorded, 1); // only config stays
    }

    #[test]
    fn migration_snapshot_restore_preserves_handles_and_data() {
        let desc = toy_descriptor();
        let mut source = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(4096)));
        source.handle_call(call(&desc, "toy_init", vec![Value::U32(1)]));
        let h1 = create_buf(&mut source, &desc, 8);
        let h2 = create_buf(&mut source, &desc, 4);
        write_buf(&mut source, &desc, h1, b"migrate!");
        write_buf(&mut source, &desc, h2, b"tiny");

        let image = source.snapshot();
        source.teardown();

        // "Arrive" on a different host: fresh handler.
        let mut target =
            ApiServer::restore(Arc::clone(&desc), Box::new(ToyHandler::new(4096)), &image).unwrap();
        // The guest's old wire handles still resolve.
        assert_eq!(&read_buf(&mut target, &desc, h1, 8), b"migrate!");
        assert_eq!(&read_buf(&mut target, &desc, h2, 4), b"tiny");
    }

    #[test]
    fn migration_replays_modify_calls_in_order() {
        // The record log carries the *write* as a modify record, so even
        // without the buffer snapshot the data would be reconstructed; with
        // both, the latest contents win (restore happens after replay).
        let desc = toy_descriptor();
        let mut source = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let h = create_buf(&mut source, &desc, 4);
        write_buf(&mut source, &desc, h, b"abcd");
        let image = source.snapshot();
        assert_eq!(image.records.len(), 2);
        assert_eq!(image.buffers.len(), 1);
        assert_eq!(image.buffers[0].1, b"abcd");
        let mut target =
            ApiServer::restore(Arc::clone(&desc), Box::new(ToyHandler::new(64)), &image).unwrap();
        assert_eq!(&read_buf(&mut target, &desc, h, 4), b"abcd");
    }

    #[test]
    fn oom_triggers_lru_swap_out_and_swap_in_restores() {
        let desc = toy_descriptor();
        // Device fits two 32-byte buffers.
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let h1 = create_buf(&mut server, &desc, 32);
        let h2 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h1, b"first-buffer-contents!!!");
        write_buf(&mut server, &desc, h2, b"second");
        // Third allocation overflows: the LRU buffer (h1) must be evicted.
        let h3 = create_buf(&mut server, &desc, 32);
        assert_eq!(server.stats().swap_outs, 1);
        write_buf(&mut server, &desc, h3, b"third");
        // Touching h1 swaps it back in (evicting is the server's concern;
        // the toy device grew room because h2/h3 stayed).
        // First make room: destroy h3.
        server.handle_call(call(&desc, "toy_destroy", vec![Value::Handle(h3)]));
        assert_eq!(
            &read_buf(&mut server, &desc, h1, 24),
            b"first-buffer-contents!!!"
        );
        assert_eq!(server.stats().swap_ins, 1);
        // h2 was untouched by the dance.
        assert_eq!(&read_buf(&mut server, &desc, h2, 6), b"second");
    }

    #[test]
    fn live_device_mem_accounts_for_swapped_objects() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(256)));
        let h1 = create_buf(&mut server, &desc, 100);
        let _h2 = create_buf(&mut server, &desc, 50);
        assert_eq!(server.live_device_mem(), 150);
        server.swap_out(h1, "toy_buf").unwrap();
        assert_eq!(server.live_device_mem(), 50);
        server.swap_in(h1).unwrap();
        assert_eq!(server.live_device_mem(), 150);
    }

    #[test]
    fn over_quota_alloc_is_rejected_cleanly_and_lane_stays_healthy() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_mem_quota(Some(64));
        let h1 = create_buf(&mut server, &desc, 32);
        // Second allocation would put the VM at 96 B against a 64 B quota.
        let rep = server.handle_call(call(&desc, "toy_create", vec![Value::U64(64)]));
        assert_eq!(rep.status, ReplyStatus::QuotaExceeded);
        assert_eq!(server.stats().quota_rejects, 1);
        // The refusal must not poison the lane: an in-quota allocation
        // and ordinary traffic still work.
        let h2 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h2, b"fine");
        assert_eq!(&read_buf(&mut server, &desc, h2, 4), b"fine");
        // Freeing memory restores headroom.
        server.handle_call(call(&desc, "toy_destroy", vec![Value::Handle(h1)]));
        let h3 = create_buf(&mut server, &desc, 32);
        assert_eq!(&read_buf(&mut server, &desc, h3, 1), &[0]);
    }

    #[test]
    fn quota_counts_swapped_bytes_so_swapping_cannot_launder_it() {
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        server.set_mem_quota(Some(64));
        let h1 = create_buf(&mut server, &desc, 32);
        let _h2 = create_buf(&mut server, &desc, 32);
        // Swap h1 out: the device has room again, but the VM still *owns*
        // 64 B — a further allocation must be refused by quota, not
        // satisfied by eviction.
        server.swap_out(h1, "toy_buf").unwrap();
        assert_eq!(server.live_device_mem(), 32);
        assert_eq!(server.owned_device_mem(), 64);
        let rep = server.handle_call(call(&desc, "toy_create", vec![Value::U64(16)]));
        assert_eq!(rep.status, ReplyStatus::QuotaExceeded);
    }

    #[test]
    fn memory_manager_tracks_residency_through_swap_cycle() {
        let desc = toy_descriptor();
        let mm = Arc::new(MemoryManager::new(None));
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        server.set_memory(Arc::clone(&mm), 7);
        let h1 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h1, b"payload-one");
        let h2 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h2, b"payload-two");
        assert_eq!(mm.stats().resident_bytes, 64);
        // Third allocation overflows the toy device: h1 is evicted.
        let h3 = create_buf(&mut server, &desc, 32);
        let s = mm.stats();
        assert_eq!(s.resident_bytes, 64);
        assert_eq!(s.swapped_bytes, 32);
        assert_eq!(s.live_bytes, 96);
        assert_eq!(s.evictions, 1);
        // Destroy h3 (making room) and touch h1: fault-in moves the bytes
        // back and the freed buffer left no residue.
        server.handle_call(call(&desc, "toy_destroy", vec![Value::Handle(h3)]));
        assert_eq!(&read_buf(&mut server, &desc, h1, 11), b"payload-one");
        let s = mm.stats();
        assert_eq!(s.resident_bytes, 64);
        assert_eq!(s.swapped_bytes, 0);
        assert_eq!(s.faults, 1);
        assert_eq!(mm.vm_bytes(7), 64);
    }

    #[test]
    fn capacity_pressure_evicts_proactively_before_device_oom() {
        let desc = toy_descriptor();
        // The toy device is huge; only the manager's capacity constrains
        // residency, so evictions here are purely pressure-driven.
        let mm = Arc::new(MemoryManager::new(Some(64)));
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(4096)));
        server.set_memory(Arc::clone(&mm), 0);
        let h1 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h1, b"cold");
        let h2 = create_buf(&mut server, &desc, 32);
        write_buf(&mut server, &desc, h2, b"warm");
        let _h3 = create_buf(&mut server, &desc, 32);
        let s = mm.stats();
        assert!(s.evictions >= 1, "capacity pressure must evict");
        assert!(
            s.resident_bytes <= 64,
            "resident set must respect capacity, got {}",
            s.resident_bytes
        );
        // The evicted buffer faults back in transparently.
        assert_eq!(&read_buf(&mut server, &desc, h1, 4), b"cold");
        assert!(mm.stats().faults >= 1);
    }

    #[test]
    fn identical_swapped_payloads_dedup_across_servers_on_one_device() {
        let desc = toy_descriptor();
        let mm = Arc::new(MemoryManager::new(None));
        let handler = shared_handler(Box::new(ToyHandler::new(4096)));
        let mut a = ApiServer::with_shared(Arc::clone(&desc), handler.clone());
        let mut b = ApiServer::with_shared(Arc::clone(&desc), handler);
        a.set_memory(Arc::clone(&mm), 1);
        b.set_memory(Arc::clone(&mm), 2);
        let ha = create_buf(&mut a, &desc, 64);
        let hb = create_buf(&mut b, &desc, 64);
        a.handle_call(call(
            &desc,
            "toy_write",
            vec![
                Value::Handle(ha),
                Value::Bytes(vec![9u8; 64].into()),
                Value::U64(64),
            ],
        ));
        b.handle_call(call(
            &desc,
            "toy_write",
            vec![
                Value::Handle(hb),
                Value::Bytes(vec![9u8; 64].into()),
                Value::U64(64),
            ],
        ));
        a.swap_out(ha, "toy_buf").unwrap();
        b.swap_out(hb, "toy_buf").unwrap();
        let s = mm.stats();
        assert_eq!(s.swapped_bytes, 128, "accounting stays per-buffer");
        assert_eq!(s.host_store_bytes, 64, "identical content stored once");
        assert_eq!(s.dedup_hits, 1);
    }

    #[test]
    fn set_memory_after_restore_rematerializes_residency() {
        let desc = toy_descriptor();
        let mut source = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(4096)));
        let h1 = create_buf(&mut source, &desc, 48);
        write_buf(&mut source, &desc, h1, b"carried");
        let image = source.snapshot();
        source.teardown();
        let mut target =
            ApiServer::restore(Arc::clone(&desc), Box::new(ToyHandler::new(4096)), &image).unwrap();
        let mm = Arc::new(MemoryManager::new(None));
        target.set_memory(Arc::clone(&mm), 3);
        let s = mm.stats();
        assert_eq!(s.resident_bytes, 48, "restored buffers register resident");
        assert_eq!(s.live_bytes, 48);
        assert_eq!(&read_buf(&mut target, &desc, h1, 7), b"carried");
    }

    /// Sends `msg` through `serve_one` and drains every reply available on
    /// the client end.
    fn pump(
        server: &mut ApiServer,
        server_end: &dyn ava_transport::Transport,
        client: &dyn ava_transport::Transport,
        msg: ava_wire::Message,
    ) -> Vec<ava_wire::CallReply> {
        server.serve_one(server_end, msg).unwrap();
        let mut replies = Vec::new();
        while let Ok(Some(ava_wire::Message::Reply(rep))) = client.try_recv() {
            replies.push(rep);
        }
        replies
    }

    fn write_req(desc: &ApiDescriptor, call_id: u64, h: u64, arg: Value, len: u64) -> CallRequest {
        CallRequest {
            call_id,
            fn_id: desc.by_name("toy_write").unwrap().id,
            mode: CallMode::Sync,
            args: vec![Value::Handle(h), arg, Value::U64(len)],
            budget_us: 0,
        }
    }

    #[test]
    fn cached_bytes_rematerialize_from_the_payload_mirror() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_payload_cache(8, 4);
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let h = create_buf(&mut server, &desc, 64);

        let payload = b"content-addressed".to_vec();
        let digest = ava_wire::digest64(&payload);
        // Full transfer primes the mirror.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::Bytes(payload.clone().into()),
                payload.len() as u64,
            )),
        );
        assert_eq!(reps[0].status, ReplyStatus::Ok);
        // Digest-only reference rematerializes server-side.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::CachedBytes {
                    digest,
                    len: payload.len() as u64,
                },
                payload.len() as u64,
            )),
        );
        assert_eq!(reps[0].status, ReplyStatus::Ok);
        assert_eq!(server.stats().payload_cache_hits, 1);
        assert_eq!(server.stats().payload_cache_misses, 0);
        assert_eq!(
            read_buf(&mut server, &desc, h, payload.len() as u64),
            payload
        );
    }

    #[test]
    fn unknown_digest_nacks_and_holds_later_calls_in_order() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_payload_cache(8, 4);
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let h = create_buf(&mut server, &desc, 64);

        let first = b"AAAA-first".to_vec();
        let second = b"BBBB-second".to_vec();
        // Call 1 references a digest the server has never seen.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::CachedBytes {
                    digest: ava_wire::digest64(&first),
                    len: first.len() as u64,
                },
                first.len() as u64,
            )),
        );
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].status, ReplyStatus::CacheMiss);
        assert_eq!(reps[0].call_id, 1);
        // Call 2 arrives while the resend is outstanding: held, no reply,
        // not executed.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::Bytes(second.clone().into()),
                second.len() as u64,
            )),
        );
        assert!(reps.is_empty(), "held call must not be answered: {reps:?}");
        assert_eq!(server.stats().calls, 1, "only toy_create has executed");
        // The full-payload resend unblocks call 1 and then drains call 2.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::Bytes(first.clone().into()),
                first.len() as u64,
            )),
        );
        assert_eq!(reps.len(), 2);
        assert_eq!((reps[0].call_id, reps[0].status), (1, ReplyStatus::Ok));
        assert_eq!((reps[1].call_id, reps[1].status), (2, ReplyStatus::Ok));
        // Call 2 executed *after* call 1: the buffer holds call 2's bytes.
        assert_eq!(read_buf(&mut server, &desc, h, second.len() as u64), second);
        assert_eq!(server.stats().payload_cache_misses, 1);
    }

    #[test]
    fn expired_budget_is_discarded_without_dedup_so_a_retry_executes() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_payload_cache(8, 4);
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let h = create_buf(&mut server, &desc, 64);

        let stall = b"stall-payload".to_vec();
        let late = b"LATE".to_vec();
        // Call 1 stalls the lane on an unknown digest.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::CachedBytes {
                    digest: ava_wire::digest64(&stall),
                    len: stall.len() as u64,
                },
                stall.len() as u64,
            )),
        );
        assert_eq!(reps[0].status, ReplyStatus::CacheMiss);
        // Call 2 arrives with a 5ms budget and is held behind the stall.
        let mut deadlined = write_req(&desc, 2, h, Value::Bytes(late.clone().into()), 4);
        deadlined.budget_us = 5_000;
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(deadlined),
        );
        assert!(reps.is_empty(), "held call must not be answered: {reps:?}");
        // The stall outlives call 2's budget.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::Bytes(stall.clone().into()),
                stall.len() as u64,
            )),
        );
        assert_eq!(reps.len(), 2);
        assert_eq!((reps[0].call_id, reps[0].status), (1, ReplyStatus::Ok));
        assert_eq!(
            (reps[1].call_id, reps[1].status),
            (2, ReplyStatus::Overloaded),
            "expired held call is discarded, not executed"
        );
        assert_eq!(server.stats().expired_discards, 1);
        assert_eq!(server.stats().calls, 2, "only toy_create and call 1 ran");
        // The discard skipped dedup state: a retry of call 2 with a fresh
        // budget executes for real instead of being suppressed.
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::Bytes(late.clone().into()),
                late.len() as u64,
            )),
        );
        assert_eq!((reps[0].call_id, reps[0].status), (2, ReplyStatus::Ok));
        assert_eq!(server.stats().duplicates_suppressed, 0);
        assert_eq!(read_buf(&mut server, &desc, h, late.len() as u64), late);
    }

    #[test]
    fn clearing_the_mirror_forces_a_nack_on_next_cached_reference() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_payload_cache(8, 4);
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let h = create_buf(&mut server, &desc, 64);

        let payload = b"soon-to-be-forgotten".to_vec();
        let digest = ava_wire::digest64(&payload);
        pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                1,
                h,
                Value::Bytes(payload.clone().into()),
                payload.len() as u64,
            )),
        );
        server.clear_payload_cache();
        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::CachedBytes {
                    digest,
                    len: payload.len() as u64,
                },
                payload.len() as u64,
            )),
        );
        assert_eq!(reps[0].status, ReplyStatus::CacheMiss);
        assert_eq!(server.stats().payload_cache_misses, 1);
    }

    fn create_req(desc: &ApiDescriptor, call_id: u64, size: u64) -> CallRequest {
        CallRequest {
            call_id,
            fn_id: desc.by_name("toy_create").unwrap().id,
            mode: CallMode::Sync,
            args: vec![Value::U64(size)],
            budget_us: 0,
        }
    }

    #[test]
    fn duplicate_sync_frames_execute_once_and_replay_the_reply() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();

        let req = create_req(&desc, 1, 8);
        let first = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(req.clone()),
        );
        assert_eq!(first[0].status, ReplyStatus::Ok);
        // A transport-duplicated copy of the same frame: answered from the
        // reply cache, with the *same* wire handle — re-execution would
        // have minted a second buffer.
        let dup = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(req),
        );
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0], first[0]);
        assert_eq!(server.stats().calls, 1, "the create ran exactly once");
        assert_eq!(server.stats().duplicates_suppressed, 1);
        assert_eq!(server.stats().recorded, 1, "one alloc record, not two");
    }

    #[test]
    fn duplicate_async_frames_are_suppressed_silently() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let req = CallRequest {
            call_id: 1,
            fn_id: desc.by_name("toy_init").unwrap().id,
            mode: CallMode::Async,
            args: vec![Value::U32(0)],
            budget_us: 0,
        };
        for _ in 0..2 {
            let reps = pump(
                &mut server,
                server_end.as_ref(),
                client.as_ref(),
                ava_wire::Message::Call(req.clone()),
            );
            assert!(reps.is_empty(), "async success never replies: {reps:?}");
        }
        assert_eq!(server.stats().calls, 1);
        assert_eq!(server.stats().duplicates_suppressed, 1);
    }

    #[test]
    fn heartbeats_are_acknowledged() {
        use ava_transport::{CostModel, TransportKind};
        use ava_wire::ControlMessage;
        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        server
            .serve_one(
                server_end.as_ref(),
                ava_wire::Message::Control(ControlMessage::Heartbeat(42)),
            )
            .unwrap();
        assert_eq!(
            client.recv().unwrap(),
            ava_wire::Message::Control(ControlMessage::HeartbeatAck(42))
        );
    }

    #[test]
    fn journal_replay_rebuilds_a_crashed_server() {
        use ava_transport::{CostModel, TransportKind};
        use std::sync::Mutex;
        let desc = toy_descriptor();
        let journal = Arc::new(Mutex::new(CallJournal::new()));
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        server.set_journal(Arc::clone(&journal));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();

        let reps = pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(create_req(&desc, 1, 8)),
        );
        let h = reps[0].ret.as_handle().expect("created handle");
        pump(
            &mut server,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::Bytes(b"journal!".to_vec().into()),
                8,
            )),
        );
        // Crash: the server vanishes without any chance to snapshot.
        drop(server);

        let entries = journal.lock().unwrap().entries().to_vec();
        let mut fresh = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        assert_eq!(fresh.replay_journal(&entries), 2);
        // The guest's wire handle survived and the kernel-written contents
        // were reconstructed by re-execution, not from a snapshot.
        assert_eq!(&read_buf(&mut fresh, &desc, h, 8), b"journal!");
        // A guest retry of a pre-crash call is answered, not re-executed.
        let reps = pump(
            &mut fresh,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(write_req(
                &desc,
                2,
                h,
                Value::Bytes(b"XXXXXXXX".to_vec().into()),
                8,
            )),
        );
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].status, ReplyStatus::Ok);
        assert_eq!(&read_buf(&mut fresh, &desc, h, 8), b"journal!");
        assert_eq!(fresh.stats().duplicates_suppressed, 1);
        assert!(journal.lock().unwrap().call_ids_unique());
    }

    #[test]
    fn migration_image_carries_dedup_state() {
        use ava_transport::{CostModel, TransportKind};
        let desc = toy_descriptor();
        let mut source = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(1024)));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let reps = pump(
            &mut source,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(create_req(&desc, 1, 8)),
        );
        assert_eq!(reps[0].status, ReplyStatus::Ok);
        let image = source.snapshot();
        source.teardown();
        let mut target =
            ApiServer::restore(Arc::clone(&desc), Box::new(ToyHandler::new(1024)), &image).unwrap();
        // A retry that straddled the migration is still deduplicated.
        let dup = pump(
            &mut target,
            server_end.as_ref(),
            client.as_ref(),
            ava_wire::Message::Call(create_req(&desc, 1, 8)),
        );
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0], reps[0]);
        assert_eq!(target.stats().duplicates_suppressed, 1);
        assert_eq!(target.stats().calls, 0, "nothing re-executed post-restore");
    }

    #[test]
    fn serve_loop_answers_over_transport() {
        use ava_transport::{CostModel, TransportKind};
        use std::sync::atomic::AtomicBool;

        let desc = toy_descriptor();
        let mut server = ApiServer::new(Arc::clone(&desc), Box::new(ToyHandler::new(64)));
        let (client, server_end) =
            ava_transport::pair(TransportKind::InProcess, CostModel::free()).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            server.serve(server_end.as_ref(), &stop2);
            server
        });
        let req = call(&desc, "toy_create", vec![Value::U64(8)]);
        client.send(&ava_wire::Message::Call(req)).unwrap();
        match client.recv().unwrap() {
            ava_wire::Message::Reply(rep) => {
                assert_eq!(rep.status, ReplyStatus::Ok);
                assert!(rep.ret.as_handle().is_some());
            }
            other => panic!("{other:?}"),
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let server = t.join().unwrap();
        assert_eq!(server.stats().calls, 1);
    }
}
