//! Parser for the CAvA specification format (Figure 4 of the paper).
//!
//! A spec file mixes three kinds of items:
//!
//! * `api("name", version);` — metadata;
//! * `type(T) { success(EXPR); handle; }` — per-type rules;
//! * `#include <...>` — pulls in the unmodified C header (handled by the
//!   preprocessor);
//! * a C function prototype followed by `{ ... }` — per-function
//!   annotations.

use std::collections::BTreeMap;

use crate::ast::{
    ApiSpec, DirectionSpec, ElementSpec, FunctionSpec, ParamSpec, RecordCategory, SyncSpec,
    TypeRule,
};
use crate::cparse::{parse_preprocessed, parse_prototype, Header};
use crate::error::{Result, SpecError, SpecErrorKind};
use crate::expr::Expr;
use crate::lexer::{lex, Cursor, Tok};
use crate::preprocess::{preprocess, HeaderResolver};

/// Parses a specification source file, resolving `#include`s through
/// `resolver`.
pub fn parse_spec(src: &str, resolver: &dyn HeaderResolver) -> Result<ApiSpec> {
    let pre = preprocess(src, resolver)?;
    let mut spec = ApiSpec {
        name: "api".to_string(),
        version: 1,
        header: Header::default(),
        type_rules: BTreeMap::new(),
        functions: Vec::new(),
    };

    // The header declarations and the function specs are interleaved in one
    // token stream. We scan once: spec-specific items (`api`, `type`,
    // prototype-with-annotation-body) are parsed here, and runs of plain C
    // declarations are collected and handed to the C parser.
    let mut c_tokens: Vec<crate::lexer::Token> = Vec::new();
    let all_tokens = lex(&pre.text)?;
    let mut i = 0usize;
    while i < all_tokens.len() {
        let tok = &all_tokens[i];
        let is_item_kw = |name: &str| matches!(&tok.tok, Tok::Ident(s) if s == name);
        if is_item_kw("api")
            && matches!(all_tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct("(")))
        {
            let mut cur2 = Cursor::new(all_tokens[i..].to_vec());
            let consumed = parse_api_item(&mut cur2, &mut spec)?;
            i += consumed;
            continue;
        }
        if is_item_kw("type")
            && matches!(all_tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct("(")))
        {
            let mut cur2 = Cursor::new(all_tokens[i..].to_vec());
            let consumed = parse_type_item(&mut cur2, &mut spec)?;
            i += consumed;
            continue;
        }
        // Detect "prototype followed by `{`": scan forward to the matching
        // `)` of the first `(` and check the next token.
        if let Some(end) = prototype_with_body_end(&all_tokens, i) {
            // Flush pending C declarations first so typedefs are known.
            flush_c(&mut c_tokens, &mut spec)?;
            let slice = all_tokens[i..=end].to_vec();
            let mut cur2 = Cursor::new(slice);
            let func = parse_function_spec(&mut cur2, &spec)?;
            spec.functions.push(func);
            i = end + 1;
            continue;
        }
        c_tokens.push(tok.clone());
        i += 1;
    }
    flush_c(&mut c_tokens, &mut spec)?;

    // Constants from the preprocessor (defines) belong in the header table.
    for (k, v) in &pre.constants {
        spec.header.constants.entry(k.clone()).or_insert(*v);
    }

    // Every function spec must correspond to a known prototype; if the
    // prototype was only declared inline in the spec, register it.
    for f in &spec.functions {
        if spec.header.proto(&f.proto.name).is_none() {
            spec.header.protos.push(f.proto.clone());
        }
    }
    Ok(spec)
}

/// Reconstructs C declarations from accumulated tokens and merges them into
/// the spec's header tables.
fn flush_c(c_tokens: &mut Vec<crate::lexer::Token>, spec: &mut ApiSpec) -> Result<()> {
    if c_tokens.is_empty() {
        return Ok(());
    }
    let text = detokenize(c_tokens);
    c_tokens.clear();
    let pre = crate::preprocess::Preprocessed {
        text,
        constants: BTreeMap::new(),
    };
    let parsed = parse_preprocessed(&pre)?;
    // Merge.
    for (name, ty) in parsed.types.typedefs() {
        spec.header.types.add_typedef(name.clone(), ty.clone());
    }
    for p in parsed.protos {
        spec.header.protos.push(p);
    }
    for (k, v) in parsed.constants {
        spec.header.constants.insert(k, v);
    }
    spec.header.types.merge_from(&parsed.types);
    Ok(())
}

/// Renders tokens back to compilable C text (whitespace-separated).
fn detokenize(tokens: &[crate::lexer::Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match &t.tok {
            Tok::Ident(s) => {
                out.push_str(s);
                out.push(' ');
            }
            Tok::Int(v) => {
                out.push_str(&v.to_string());
                out.push(' ');
            }
            Tok::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        other => out.push(other),
                    }
                }
                out.push_str("\" ");
            }
            Tok::Punct(p) => {
                out.push_str(p);
                out.push(' ');
            }
        }
    }
    out
}

/// If the tokens starting at `start` form `TYPE NAME ( ... ) {`, returns the
/// index of the matching closing `}` of the annotation body.
fn prototype_with_body_end(tokens: &[crate::lexer::Token], start: usize) -> Option<usize> {
    // Heuristic pre-check: an identifier must appear before the first `(`,
    // and no `;`, `{`, `}`, `=` may appear before it.
    let mut j = start;
    let mut saw_ident = false;
    loop {
        match tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Ident(_)) => saw_ident = true,
            Some(Tok::Punct("*")) => {}
            Some(Tok::Punct("(")) if saw_ident => break,
            _ => return None,
        }
        j += 1;
        if j > start + 16 {
            return None;
        }
    }
    // Find matching `)`.
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct("(") => depth += 1,
            Tok::Punct(")") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // Next token must be `{` for this to be a function spec.
    if !matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct("{"))) {
        return None;
    }
    // Find matching `}`.
    let mut depth = 0usize;
    let mut k = j + 1;
    while k < tokens.len() {
        match tokens[k].tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parses `api("name", version);`, returning tokens consumed.
fn parse_api_item(cur: &mut Cursor, spec: &mut ApiSpec) -> Result<usize> {
    cur.next(); // api
    cur.expect_punct("(")?;
    match cur.next() {
        Some(Tok::Str(s)) => spec.name = s,
        Some(Tok::Ident(s)) => spec.name = s,
        _ => return Err(cur.err_here("expected API name".into())),
    }
    if cur.eat_punct(",") {
        let v = cur.expect_int()?;
        spec.version = u32::try_from(v).map_err(|_| cur.err_here("version out of range".into()))?;
    }
    cur.expect_punct(")")?;
    cur.eat_punct(";");
    Ok(cur.consumed())
}

/// Parses `type(T) { ... };?`, returning tokens consumed.
fn parse_type_item(cur: &mut Cursor, spec: &mut ApiSpec) -> Result<usize> {
    cur.next(); // type
    cur.expect_punct("(")?;
    let tyname = cur.expect_ident()?;
    cur.expect_punct(")")?;
    cur.expect_punct("{")?;
    let mut rule = TypeRule::default();
    loop {
        if cur.eat_punct("}") {
            break;
        }
        let prop = cur.expect_ident()?;
        match prop.as_str() {
            "success" => {
                cur.expect_punct("(")?;
                rule.success = Some(Expr::parse(cur)?);
                cur.expect_punct(")")?;
            }
            "handle" => rule.handle = true,
            other => return Err(cur.err_here(format!("unknown type property `{other}`"))),
        }
        cur.expect_punct(";")?;
    }
    cur.eat_punct(";");
    spec.type_rules.insert(tyname, rule);
    Ok(cur.consumed())
}

/// Parses `RET NAME(PARAMS) { annotation* }` (cursor covers exactly this
/// token range).
fn parse_function_spec(cur: &mut Cursor, spec: &ApiSpec) -> Result<FunctionSpec> {
    let proto = parse_prototype(cur, &spec.header)?;
    cur.expect_punct("{")?;
    let mut func = FunctionSpec::bare(proto);
    parse_annotation_block(cur, &mut func)?;
    Ok(func)
}

/// Parses annotation statements until the matching `}` is consumed.
fn parse_annotation_block(cur: &mut Cursor, func: &mut FunctionSpec) -> Result<()> {
    loop {
        if cur.eat_punct("}") {
            return Ok(());
        }
        parse_annotation_stmt(cur, func)?;
    }
}

fn parse_annotation_stmt(cur: &mut Cursor, func: &mut FunctionSpec) -> Result<()> {
    if cur.eat_ident("sync") {
        cur.expect_punct(";")?;
        set_sync(cur, func, SyncSpec::Sync)?;
        return Ok(());
    }
    if cur.eat_ident("async") {
        cur.expect_punct(";")?;
        set_sync(cur, func, SyncSpec::Async)?;
        return Ok(());
    }
    if cur.eat_ident("if") {
        cur.expect_punct("(")?;
        let cond = Expr::parse(cur)?;
        cur.expect_punct(")")?;
        // Then-branch: `sync;` or `async;` (possibly braced).
        let then_sync = parse_sync_branch(cur)?;
        let else_sync = if cur.eat_ident("else") {
            Some(parse_sync_branch(cur)?)
        } else {
            None
        };
        let policy = match (then_sync, else_sync) {
            (true, Some(false)) | (true, None) => SyncSpec::SyncIf(cond),
            (false, Some(true)) => {
                SyncSpec::SyncIf(Expr::Unary(crate::expr::UnOp::Not, Box::new(cond)))
            }
            (true, Some(true)) => SyncSpec::Sync,
            (false, Some(false)) | (false, None) => SyncSpec::Async,
        };
        set_sync(cur, func, policy)?;
        return Ok(());
    }
    if cur.eat_ident("parameter") {
        cur.expect_punct("(")?;
        let pname = cur.expect_ident()?;
        cur.expect_punct(")")?;
        if !func.proto.params.iter().any(|p| p.name == pname) {
            return Err(SpecError::at(
                cur.loc(),
                SpecErrorKind::Unknown(format!(
                    "parameter `{pname}` not found in `{}`",
                    func.proto.name
                )),
            ));
        }
        cur.expect_punct("{")?;
        let mut pspec = func.params.remove(&pname).unwrap_or_default();
        parse_param_props(cur, &mut pspec)?;
        func.params.insert(pname, pspec);
        return Ok(());
    }
    if cur.eat_ident("record") {
        cur.expect_punct("(")?;
        let cat = cur.expect_ident()?;
        cur.expect_punct(")")?;
        cur.expect_punct(";")?;
        func.record = Some(match cat.as_str() {
            "config" => RecordCategory::Config,
            "alloc" => RecordCategory::Alloc,
            "dealloc" => RecordCategory::Dealloc,
            "modify" => RecordCategory::Modify,
            other => return Err(cur.err_here(format!("unknown record category `{other}`"))),
        });
        return Ok(());
    }
    if cur.eat_ident("resource") {
        cur.expect_punct("(")?;
        let rname = match cur.next() {
            Some(Tok::Ident(s)) | Some(Tok::Str(s)) => s,
            _ => return Err(cur.err_here("expected resource name".into())),
        };
        cur.expect_punct(",")?;
        let amount = Expr::parse(cur)?;
        cur.expect_punct(")")?;
        cur.expect_punct(";")?;
        func.resources.push((rname, amount));
        return Ok(());
    }
    if cur.eat_ident("unsupported") {
        cur.expect_punct(";")?;
        func.unsupported = true;
        return Ok(());
    }
    if cur.eat_ident("note") {
        cur.expect_punct("(")?;
        match cur.next() {
            Some(Tok::Str(s)) => func.notes.push(s),
            _ => return Err(cur.err_here("expected string in note(...)".into())),
        }
        cur.expect_punct(")")?;
        cur.expect_punct(";")?;
        return Ok(());
    }
    Err(cur.err_here(format!("unknown annotation {}", cur.describe())))
}

/// Parses a branch of an `if` that must consist of sync/async statements;
/// returns true for sync.
fn parse_sync_branch(cur: &mut Cursor) -> Result<bool> {
    if cur.eat_punct("{") {
        let v = parse_sync_branch(cur)?;
        cur.expect_punct("}")?;
        return Ok(v);
    }
    if cur.eat_ident("sync") {
        cur.expect_punct(";")?;
        return Ok(true);
    }
    if cur.eat_ident("async") {
        cur.expect_punct(";")?;
        return Ok(false);
    }
    Err(cur.err_here("expected `sync;` or `async;` in conditional".into()))
}

fn set_sync(cur: &Cursor, func: &mut FunctionSpec, policy: SyncSpec) -> Result<()> {
    if func.sync != SyncSpec::Default {
        return Err(SpecError::at(
            cur.loc(),
            SpecErrorKind::Conflict(format!("multiple sync policies for `{}`", func.proto.name)),
        ));
    }
    func.sync = policy;
    Ok(())
}

fn parse_param_props(cur: &mut Cursor, pspec: &mut ParamSpec) -> Result<()> {
    loop {
        if cur.eat_punct("}") {
            return Ok(());
        }
        let prop = cur.expect_ident()?;
        match prop.as_str() {
            "in" => pspec.direction = Some(DirectionSpec::In),
            "out" => pspec.direction = Some(DirectionSpec::Out),
            "inout" => pspec.direction = Some(DirectionSpec::InOut),
            "buffer" => {
                cur.expect_punct("(")?;
                pspec.buffer = Some(Expr::parse(cur)?);
                cur.expect_punct(")")?;
            }
            "element" => {
                cur.expect_punct("{")?;
                let mut elem = ElementSpec::default();
                loop {
                    if cur.eat_punct("}") {
                        break;
                    }
                    let e = cur.expect_ident()?;
                    match e.as_str() {
                        "allocates" => elem.allocates = true,
                        "deallocates" => elem.deallocates = true,
                        other => {
                            return Err(cur.err_here(format!("unknown element property `{other}`")))
                        }
                    }
                    cur.expect_punct(";")?;
                }
                pspec.element = Some(elem);
                // `element { ... }` blocks are not followed by `;`.
                continue;
            }
            "deallocates" => pspec.deallocates = true,
            "handle" => pspec.handle = true,
            "nullable" => pspec.nullable = true,
            "string" => pspec.string = true,
            "userdata" => pspec.userdata = true,
            "zero_copy" => pspec.zero_copy = true,
            other => return Err(cur.err_here(format!("unknown parameter property `{other}`"))),
        }
        cur.expect_punct(";")?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::MapResolver;

    /// The exact example from Figure 4 of the paper, against a minimal cl.h.
    const FIG4_CL_H: &str = r#"
#ifndef CL_H
#define CL_H 1
#define CL_SUCCESS 0
#define CL_TRUE 1
#define CL_FALSE 0
typedef int cl_int;
typedef unsigned int cl_uint;
typedef cl_uint cl_bool;
typedef struct _cl_command_queue *cl_command_queue;
typedef struct _cl_mem *cl_mem;
typedef struct _cl_event *cl_event;
cl_int clEnqueueReadBuffer(cl_command_queue command_queue,
    cl_mem buf, cl_bool blocking_read,
    size_t offset, size_t size, void *ptr,
    cl_uint num_events_in_wait_list,
    const cl_event *event_wait_list, cl_event *event);
#endif
"#;

    const FIG4_SPEC: &str = r#"
type(cl_int) { success(CL_SUCCESS); }
#include <CL/cl.h>
cl_int clEnqueueReadBuffer(
    cl_command_queue command_queue,
    cl_mem buf, cl_bool blocking_read,
    size_t offset, size_t size, void *ptr,
    cl_uint num_events_in_wait_list,
    const cl_event *event_wait_list, cl_event *event) {
  if (blocking_read == CL_TRUE) sync; else async;
  parameter(ptr) { out; buffer(size); }
  parameter(event_wait_list) {
      buffer(num_events_in_wait_list); }
  parameter(event) { out; element { allocates; } }
}
"#;

    fn fig4() -> ApiSpec {
        let resolver = MapResolver::new().with("CL/cl.h", FIG4_CL_H);
        parse_spec(FIG4_SPEC, &resolver).unwrap()
    }

    #[test]
    fn figure4_parses() {
        let spec = fig4();
        assert_eq!(spec.functions.len(), 1);
        let f = &spec.functions[0];
        assert_eq!(f.proto.name, "clEnqueueReadBuffer");
        assert_eq!(f.proto.params.len(), 9);
    }

    #[test]
    fn figure4_type_rule() {
        let spec = fig4();
        let rule = &spec.type_rules["cl_int"];
        assert_eq!(rule.success, Some(Expr::Ident("CL_SUCCESS".into())));
    }

    #[test]
    fn figure4_sync_policy_is_conditional() {
        let spec = fig4();
        match &spec.functions[0].sync {
            SyncSpec::SyncIf(cond) => {
                let printed = cond.to_string();
                assert!(printed.contains("blocking_read"), "{printed}");
                assert!(printed.contains("CL_TRUE"), "{printed}");
            }
            other => panic!("expected SyncIf, got {other:?}"),
        }
    }

    #[test]
    fn figure4_parameter_annotations() {
        let spec = fig4();
        let f = &spec.functions[0];
        let ptr = f.param("ptr");
        assert_eq!(ptr.direction, Some(DirectionSpec::Out));
        assert_eq!(ptr.buffer, Some(Expr::Ident("size".into())));
        let wl = f.param("event_wait_list");
        assert_eq!(
            wl.buffer,
            Some(Expr::Ident("num_events_in_wait_list".into()))
        );
        assert_eq!(wl.direction, None); // inferred from const later
        let ev = f.param("event");
        assert_eq!(ev.direction, Some(DirectionSpec::Out));
        assert!(ev.element.as_ref().unwrap().allocates);
    }

    #[test]
    fn figure4_header_contents_merged() {
        let spec = fig4();
        assert_eq!(spec.header.constants["CL_SUCCESS"], 0);
        assert!(spec
            .header
            .types
            .is_opaque_handle(&crate::ctypes::CType::Named("cl_mem".into())));
        // The header prototype and the spec prototype are the same function.
        assert!(spec.header.proto("clEnqueueReadBuffer").is_some());
    }

    #[test]
    fn api_metadata_item() {
        let spec = parse_spec(
            "api(\"opencl\", 3);\nint f(int a) { sync; }\n",
            &MapResolver::new(),
        )
        .unwrap();
        assert_eq!(spec.name, "opencl");
        assert_eq!(spec.version, 3);
    }

    #[test]
    fn record_and_resource_annotations() {
        let spec = parse_spec(
            r#"
typedef struct _m *m_t;
m_t create(unsigned long size) { record(alloc); resource(device_mem, size); }
int destroy(m_t h) { record(dealloc); parameter(h) { deallocates; } }
"#,
            &MapResolver::new(),
        )
        .unwrap();
        assert_eq!(spec.functions[0].record, Some(RecordCategory::Alloc));
        assert_eq!(spec.functions[0].resources.len(), 1);
        assert_eq!(spec.functions[1].record, Some(RecordCategory::Dealloc));
        assert!(spec.functions[1].param("h").deallocates);
    }

    #[test]
    fn unsupported_and_notes() {
        let spec = parse_spec(
            "int weird(int n) { unsupported; note(\"varargs sibling\"); }\n",
            &MapResolver::new(),
        )
        .unwrap();
        assert!(spec.functions[0].unsupported);
        assert_eq!(spec.functions[0].notes[0], "varargs sibling");
    }

    #[test]
    fn duplicate_sync_rejected() {
        let err = parse_spec("int f(int a) { sync; async; }", &MapResolver::new()).unwrap_err();
        assert!(err.to_string().contains("multiple sync"));
    }

    #[test]
    fn unknown_parameter_rejected() {
        let err =
            parse_spec("int f(int a) { parameter(b) { in; } }", &MapResolver::new()).unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }

    #[test]
    fn unknown_annotation_rejected() {
        let err = parse_spec("int f(int a) { frobnicate; }", &MapResolver::new()).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn inverted_conditional_normalizes() {
        let spec = parse_spec(
            "int f(int fast) { if (fast == 1) async; else sync; }",
            &MapResolver::new(),
        )
        .unwrap();
        match &spec.functions[0].sync {
            SyncSpec::SyncIf(e) => assert!(e.to_string().starts_with("!")),
            other => panic!("expected SyncIf, got {other:?}"),
        }
    }

    #[test]
    fn plain_header_only_spec() {
        // A spec that is nothing but an include: all functions inferred.
        let resolver = MapResolver::new().with("CL/cl.h", FIG4_CL_H);
        let spec = parse_spec("#include <CL/cl.h>\n", &resolver).unwrap();
        assert!(spec.functions.is_empty());
        assert_eq!(spec.header.protos.len(), 1);
    }
}
