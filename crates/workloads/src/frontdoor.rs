//! A minimal HTTP client for the `avad` control plane.
//!
//! Lives in the workloads crate so chaos drivers, CI smoke scripts'
//! example binaries, and nightly sweeps can exercise the daemon *through
//! the front door* — the same `TcpStream` path an external tenant would
//! use — without depending on the daemon crate (which depends on this
//! one). Requests are HTTP/1.1 with `Connection: close`; responses are
//! read to EOF. JSON handling is deliberately naive: the daemon emits
//! flat, known-shape bodies, and this client only plucks scalar fields.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A front-door response: status code plus raw body.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON for API endpoints, text for `/metrics`).
    pub body: String,
}

impl HttpReply {
    /// True for 2xx.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Plucks a scalar JSON field (`"key":value`) from a flat body:
    /// numbers and strings both come back as the raw token text.
    pub fn field(&self, key: &str) -> Option<String> {
        let needle = format!("\"{key}\":");
        let start = self.body.find(&needle)? + needle.len();
        let rest = &self.body[start..];
        if let Some(quoted) = rest.strip_prefix('"') {
            let end = quoted.find('"')?;
            return Some(quoted[..end].to_string());
        }
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    }

    /// A numeric field as u64.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key)?.parse().ok()
    }

    /// Every element of a flat numeric array field (`"key":[a,b,c]`),
    /// as raw token strings — used for checksum lists, where the *text*
    /// is compared (bit-identical f64s print identically).
    pub fn array_field(&self, key: &str) -> Option<Vec<String>> {
        let needle = format!("\"{key}\":[");
        let start = self.body.find(&needle)? + needle.len();
        let rest = &self.body[start..];
        let end = rest.find(']')?;
        let inner = &rest[..end];
        if inner.is_empty() {
            return Some(Vec::new());
        }
        Some(inner.split(',').map(|s| s.trim().to_string()).collect())
    }
}

/// A typed client bound to one daemon address and bearer token.
#[derive(Debug, Clone)]
pub struct FrontDoor {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Bearer token; empty = no Authorization header (open daemons).
    pub token: String,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

/// Front-door client errors (connect/IO/protocol).
pub type FrontDoorResult = Result<HttpReply, String>;

impl FrontDoor {
    /// A client for `addr` (`host:port` or `http://host:port`).
    pub fn new(addr: impl Into<String>, token: impl Into<String>) -> FrontDoor {
        let addr = addr.into();
        let addr = addr
            .strip_prefix("http://")
            .map(str::to_string)
            .unwrap_or(addr);
        let addr = addr.trim_end_matches('/').to_string();
        FrontDoor {
            addr,
            token: token.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// One request/response exchange.
    pub fn request(&self, method: &str, path: &str, body: &str) -> FrontDoorResult {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("socket setup: {e}"))?;
        let auth = if self.token.is_empty() {
            String::new()
        } else {
            format!("Authorization: Bearer {}\r\n", self.token)
        };
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\n{auth}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        stream
            .write_all(request.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| format!("recv: {e}"))?;
        let (head, payload) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| format!("malformed response: {raw:.80}"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line: {head:.80}"))?;
        Ok(HttpReply {
            status,
            body: payload.to_string(),
        })
    }

    fn get(&self, path: &str) -> FrontDoorResult {
        self.request("GET", path, "")
    }

    fn post(&self, path: &str, body: &str) -> FrontDoorResult {
        self.request("POST", path, body)
    }

    /// `GET /health`.
    pub fn health(&self) -> FrontDoorResult {
        self.get("/health")
    }

    /// `GET /metrics` (Prometheus text).
    pub fn metrics(&self) -> FrontDoorResult {
        self.get("/metrics")
    }

    /// `GET /vms`.
    pub fn list_vms(&self) -> FrontDoorResult {
        self.get("/vms")
    }

    /// `POST /vms` with a raw JSON body (`{}` for all defaults). On
    /// success the reply's `id` field is the new VM id.
    pub fn create_vm(&self, body: &str) -> FrontDoorResult {
        self.post("/vms", body)
    }

    /// `GET /vms/{id}/stats`.
    pub fn vm_stats(&self, vm: u64) -> FrontDoorResult {
        self.get(&format!("/vms/{vm}/stats"))
    }

    /// `POST /vms/{id}/run` for `workload`, returning the reply whose
    /// `checksums` array carries the deterministic result(s).
    pub fn run_workload(&self, vm: u64, workload: &str, repeat: u32) -> FrontDoorResult {
        self.post(
            &format!("/vms/{vm}/run"),
            &format!("{{\"workload\":\"{workload}\",\"repeat\":{repeat}}}"),
        )
    }

    /// `POST /vms/{id}/migrate`.
    pub fn migrate_vm(&self, vm: u64) -> FrontDoorResult {
        self.post(&format!("/vms/{vm}/migrate"), "")
    }

    /// `POST /vms/{id}/rebalance` to `slot`.
    pub fn rebalance_vm(&self, vm: u64, slot: u64) -> FrontDoorResult {
        self.post(
            &format!("/vms/{vm}/rebalance"),
            &format!("{{\"slot\":{slot}}}"),
        )
    }

    /// `POST /vms/{id}/crash` (needs `daemon.enable_test_hooks`).
    pub fn crash_vm(&self, vm: u64) -> FrontDoorResult {
        self.post(&format!("/vms/{vm}/crash"), "")
    }

    /// `DELETE /vms/{id}`.
    pub fn delete_vm(&self, vm: u64) -> FrontDoorResult {
        self.request("DELETE", &format!("/vms/{vm}"), "")
    }

    /// `POST /shutdown` (admin): asks the daemon to drain and exit.
    pub fn shutdown(&self) -> FrontDoorResult {
        self.post("/shutdown", "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extractors_pluck_scalars_and_arrays() {
        let reply = HttpReply {
            status: 200,
            body: r#"{"id":7,"name":"vm-a","slot":null,"checksums":[1.5,-2,3e-7],"empty":[]}"#
                .to_string(),
        };
        assert!(reply.ok());
        assert_eq!(reply.field_u64("id"), Some(7));
        assert_eq!(reply.field("name").as_deref(), Some("vm-a"));
        assert_eq!(reply.field("slot").as_deref(), Some("null"));
        assert_eq!(
            reply.array_field("checksums").unwrap(),
            vec!["1.5", "-2", "3e-7"]
        );
        assert_eq!(reply.array_field("empty").unwrap(), Vec::<String>::new());
        assert_eq!(reply.field("missing"), None);
    }
}
