//! The entire workload suite, executed through the AvA stack: the same
//! binaries that ran natively in unit tests run here against the remoting
//! client, and must produce identical checksums.

use ava_core::{mvnc_stack, opencl_stack, MvncClient, OpenClClient, StackConfig};
use ava_hypervisor::VmPolicy;
use ava_transport::{CostModel, TransportKind};
use ava_workloads::{opencl_workloads, silo_with_all_kernels, Inception, Scale};

fn fast_config() -> StackConfig {
    StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        ..StackConfig::default()
    }
}

#[test]
fn all_opencl_workloads_match_native_checksums_when_virtualized() {
    let native_cl = silo_with_all_kernels(Scale::Test);
    let virtual_cl = silo_with_all_kernels(Scale::Test);
    let stack = opencl_stack(virtual_cl, fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);

    for wl in opencl_workloads(Scale::Test) {
        let native = wl
            .run(&native_cl)
            .unwrap_or_else(|e| panic!("{} native failed: {e}", wl.name()));
        let virtualized = wl
            .run(&client)
            .unwrap_or_else(|e| panic!("{} virtual failed: {e}", wl.name()));
        assert_eq!(
            native,
            virtualized,
            "{}: native and virtual checksums must match",
            wl.name()
        );
    }
}

#[test]
fn inception_matches_native_when_virtualized() {
    let wl = Inception::new(Scale::Test);
    let native = wl.run(&simnc::SimNc::new(1)).unwrap();

    let stack = mvnc_stack(simnc::SimNc::new(1), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = MvncClient::new(lib);
    let virtualized = wl.run(&client).unwrap();
    assert_eq!(native, virtualized);
}

#[test]
fn suite_runs_with_paravirtual_cost_model_too() {
    // Sanity that modelled latencies do not break correctness.
    let stack = opencl_stack(
        silo_with_all_kernels(Scale::Test),
        StackConfig {
            transport: TransportKind::SharedMemory,
            cost_model: CostModel::paravirtual(),
            ..StackConfig::default()
        },
    )
    .unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    for wl in opencl_workloads(Scale::Test).into_iter().take(3) {
        wl.run(&client)
            .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name()));
    }
}
