//! Per-call spans: one record per forwarded API invocation, with stage
//! timestamps contributed by every tier it crosses.
//!
//! The guest library opens a span keyed by the wire `(vm_id, call_id)`
//! pair; the router stamps `queued`/`forwarded`/`replied`, the API server
//! stamps `executed`. All timestamps are nanoseconds since the owning
//! registry's epoch, so a single call's end-to-end latency decomposes
//! exactly into per-tier segments (the stage deltas telescope).
//!
//! ```text
//!  guest_start ── sent ── queued ── forwarded ── executed ── replied ── guest_end
//!  |  marshal  | transport | queue  |  server    |  reply    | return  |
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// Identifies one call across tiers: `(vm_id, call_id)`.
pub type SpanKey = (u32, u64);

/// A multiply-xor hasher (FxHash-style) for the active-span maps. Span
/// keys are tiny and attacker-free, and the map is locked on every stage
/// stamp of every call — SipHash's DoS resistance costs more here than
/// the whole critical section it guards.
#[derive(Default)]
struct SpanKeyHasher(u64);

impl Hasher for SpanKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }
}

type ActiveMap = HashMap<SpanKey, SpanRecord, BuildHasherDefault<SpanKeyHasher>>;

/// Lifecycle stages a span passes through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Guest: call entered the guest library (before marshaling).
    GuestStart,
    /// Guest: request handed to the transport.
    Sent,
    /// Router: request ingested from the guest channel.
    Queued,
    /// Router: request forwarded to the API server.
    Forwarded,
    /// Server: dispatch against the silo finished.
    Executed,
    /// Router: reply pumped back toward the guest.
    Replied,
    /// Guest: reply consumed, call returns to the application.
    GuestEnd,
}

/// One call's cross-tier timeline. All times are nanoseconds since the
/// registry epoch; `None` means the stage was not observed (that tier was
/// not instrumented, or the call bypassed it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanRecord {
    /// VM the call belongs to (0 when unattributed).
    pub vm: u32,
    /// Wire call id (unique per VM).
    pub call_id: u64,
    /// Function id as seen by the guest when opening the span.
    pub fn_id: Option<u32>,
    /// Function id as seen by the server when executing — must agree with
    /// `fn_id` for a healthy stack.
    pub server_fn_id: Option<u32>,
    /// Stage timestamps.
    pub guest_start: Option<u64>,
    /// Request handed to the transport by the guest.
    pub sent: Option<u64>,
    /// Request ingested by the router.
    pub queued: Option<u64>,
    /// Request forwarded to the API server.
    pub forwarded: Option<u64>,
    /// Server dispatch completed.
    pub executed: Option<u64>,
    /// Reply pumped back by the router.
    pub replied: Option<u64>,
    /// Reply consumed by the guest.
    pub guest_end: Option<u64>,
}

impl SpanRecord {
    fn delta(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        Some(b?.saturating_sub(a?))
    }

    /// Guest-side marshal + verification time (`guest_start → sent`).
    pub fn guest_marshal(&self) -> Option<u64> {
        Self::delta(self.guest_start, self.sent)
    }

    /// Guest→router transport time (`sent → queued`).
    pub fn transport_out(&self) -> Option<u64> {
        Self::delta(self.sent, self.queued)
    }

    /// Router queueing + policy time (`queued → forwarded`).
    pub fn router_queue(&self) -> Option<u64> {
        Self::delta(self.queued, self.forwarded)
    }

    /// Server execution time including the router→server hop
    /// (`forwarded → executed`).
    pub fn server_execute(&self) -> Option<u64> {
        Self::delta(self.forwarded, self.executed)
    }

    /// Server→router reply time (`executed → replied`).
    pub fn reply_path(&self) -> Option<u64> {
        Self::delta(self.executed, self.replied)
    }

    /// Router→guest return transport time (`replied → guest_end`).
    pub fn transport_back(&self) -> Option<u64> {
        Self::delta(self.replied, self.guest_end)
    }

    /// End-to-end latency observed by the guest
    /// (`guest_start → guest_end`).
    pub fn total(&self) -> Option<u64> {
        Self::delta(self.guest_start, self.guest_end)
    }

    /// The stage timestamps that were observed, in lifecycle order.
    pub fn observed_stages(&self) -> Vec<(Stage, u64)> {
        [
            (Stage::GuestStart, self.guest_start),
            (Stage::Sent, self.sent),
            (Stage::Queued, self.queued),
            (Stage::Forwarded, self.forwarded),
            (Stage::Executed, self.executed),
            (Stage::Replied, self.replied),
            (Stage::GuestEnd, self.guest_end),
        ]
        .into_iter()
        .filter_map(|(s, t)| Some((s, t?)))
        .collect()
    }

    /// True if every observed stage pair is in lifecycle order.
    pub fn stages_ordered(&self) -> bool {
        self.observed_stages().windows(2).all(|w| w[0].1 <= w[1].1)
    }
}

/// Default cap on in-flight (active) spans; excess openings are dropped
/// and counted rather than growing without bound.
const ACTIVE_CAP: usize = 1 << 16;

/// Default cap on retained completed spans.
const COMPLETED_CAP: usize = 1 << 16;

/// Shards of the active-span map. Stamps for one call come from three
/// threads (guest, router, server) but *different* calls are in flight
/// simultaneously; hashing the key across shards keeps the per-stamp
/// critical section from serializing the whole stack on one mutex.
const ACTIVE_SHARDS: usize = 16;

/// Cap on deferred stamps awaiting a fold; excess stamps are dropped and
/// counted, bounding memory if nothing ever folds.
const DEFERRED_CAP: u64 = 1 << 16;

/// A stage stamp recorded via [`SpanTable::stage_deferred`], parked on
/// the lock-free intake until the next fold.
struct DeferredStamp {
    key: SpanKey,
    stage: Stage,
    nanos: u64,
    fn_id: Option<u32>,
}

/// Intrusive node of the deferred-stamp Treiber stack.
struct StampNode {
    stamp: DeferredStamp,
    next: *mut StampNode,
}

/// Concurrent store of active and completed spans.
pub struct SpanTable {
    active: [Mutex<ActiveMap>; ACTIVE_SHARDS],
    /// Total records across all `active` shards (cap enforcement without
    /// locking every shard).
    active_count: AtomicU64,
    completed: Mutex<Vec<SpanRecord>>,
    /// Spans dropped because a cap was hit.
    dropped: AtomicU64,
    /// Lock-free intake of stamps pushed by [`SpanTable::stage_deferred`]
    /// (newest first; reversed to push order at fold time).
    deferred: AtomicPtr<StampNode>,
    /// Upper bound on nodes in `deferred`.
    deferred_len: AtomicU64,
    /// Serializes folds so one fold cannot interleave another's chain —
    /// a producer's per-call stamp order must survive the fold.
    fold_lock: Mutex<()>,
}

impl Default for SpanTable {
    fn default() -> Self {
        SpanTable {
            active: std::array::from_fn(|_| Mutex::new(ActiveMap::default())),
            active_count: AtomicU64::new(0),
            completed: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            deferred: AtomicPtr::new(std::ptr::null_mut()),
            deferred_len: AtomicU64::new(0),
            fold_lock: Mutex::new(()),
        }
    }
}

impl Drop for SpanTable {
    fn drop(&mut self) {
        let mut node = *self.deferred.get_mut();
        while !node.is_null() {
            // Safety: nodes are uniquely owned by the intake once pushed,
            // and `&mut self` excludes concurrent pushers and folders.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

impl SpanTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard holding `key`'s record. Consecutive call ids spread
    /// across shards, so back-to-back calls never contend.
    fn shard(&self, key: SpanKey) -> &Mutex<ActiveMap> {
        let h = key.1 ^ u64::from(key.0).rotate_left(32);
        &self.active[(h as usize) % ACTIVE_SHARDS]
    }

    /// Records `stage` at time `nanos` for the span `key`, creating the
    /// record on first touch. `fn_id` attributes the function at the
    /// recording tier (guest on open, server on execute).
    ///
    /// A `GuestEnd` stamp folds the deferred intake first, so any
    /// router-side stamps parked there (the router pushes `Replied`
    /// *before* relaying the reply, hence before the guest can get here)
    /// land on the record before it completes.
    pub fn stage(&self, key: SpanKey, stage: Stage, nanos: u64, fn_id: Option<u32>) {
        if stage == Stage::GuestEnd {
            self.fold_deferred();
        }
        self.stage_inner(key, stage, nanos, fn_id);
    }

    fn stage_inner(&self, key: SpanKey, stage: Stage, nanos: u64, fn_id: Option<u32>) {
        let mut active = self.shard(key).lock().expect("span table poisoned");
        let record = match active.get_mut(&key) {
            Some(r) => r,
            None => {
                if self.active_count.load(Ordering::Relaxed) >= ACTIVE_CAP as u64 {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                self.active_count.fetch_add(1, Ordering::Relaxed);
                let r = active.entry(key).or_default();
                r.vm = key.0;
                r.call_id = key.1;
                r
            }
        };
        match stage {
            Stage::GuestStart => {
                record.guest_start = Some(nanos);
                record.fn_id = fn_id.or(record.fn_id);
            }
            Stage::Sent => record.sent = Some(nanos),
            Stage::Queued => record.queued = Some(nanos),
            Stage::Forwarded => record.forwarded = Some(nanos),
            Stage::Executed => {
                record.executed = Some(nanos);
                record.server_fn_id = fn_id.or(record.server_fn_id);
            }
            Stage::Replied => record.replied = Some(nanos),
            Stage::GuestEnd => record.guest_end = Some(nanos),
        }
        // A span completes when the guest consumes the reply, or — for
        // traffic injected below the guest library (raw transport tests,
        // unattributed probes) — when the router pumps the reply back and
        // no guest ever opened the span.
        let done = match stage {
            Stage::GuestEnd => true,
            Stage::Replied => record.guest_start.is_none(),
            _ => false,
        };
        if done {
            let record = active.remove(&key).expect("record exists");
            drop(active);
            self.active_count.fetch_sub(1, Ordering::Relaxed);
            let mut completed = self.completed.lock().expect("span table poisoned");
            if completed.len() >= COMPLETED_CAP {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                completed.push(record);
            }
        }
    }

    /// Records `stage` without touching any shard mutex: the stamp is
    /// pushed onto a lock-free intake and applied at the next fold (a
    /// guest-end stamp or a read API). Meant for the router's data path,
    /// where a per-stamp lock would serialize call forwarding against
    /// telemetry readers and the other tiers' stamps.
    pub fn stage_deferred(&self, key: SpanKey, stage: Stage, nanos: u64, fn_id: Option<u32>) {
        if self.deferred_len.fetch_add(1, Ordering::SeqCst) >= DEFERRED_CAP {
            self.deferred_len.fetch_sub(1, Ordering::SeqCst);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let node = Box::into_raw(Box::new(StampNode {
            stamp: DeferredStamp {
                key,
                stage,
                nanos,
                fn_id,
            },
            next: std::ptr::null_mut(),
        }));
        let mut head = self.deferred.load(Ordering::SeqCst);
        loop {
            // Safety: `node` came from Box::into_raw above and is not yet
            // shared; it becomes shared only once the CAS publishes it.
            unsafe { (*node).next = head };
            match self.deferred.compare_exchange_weak(
                head,
                node,
                Ordering::SeqCst,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Applies every parked deferred stamp to the span records, in each
    /// producer's push order. Cheap when the intake is empty (one atomic
    /// load); folds are serialized against each other.
    pub fn fold_deferred(&self) {
        if self.deferred.load(Ordering::SeqCst).is_null() {
            return;
        }
        let _guard = self.fold_lock.lock().expect("span table poisoned");
        let mut head = self.deferred.swap(std::ptr::null_mut(), Ordering::SeqCst);
        // Reverse the LIFO chain so stamps apply in push order.
        let mut prev: *mut StampNode = std::ptr::null_mut();
        let mut count = 0u64;
        while !head.is_null() {
            // Safety: the swap above transferred exclusive ownership of
            // the whole chain to this fold.
            let next = unsafe { (*head).next };
            unsafe { (*head).next = prev };
            prev = head;
            head = next;
            count += 1;
        }
        self.deferred_len.fetch_sub(count, Ordering::SeqCst);
        let mut node = prev;
        while !node.is_null() {
            // Safety: each node is applied and freed exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            let s = boxed.stamp;
            self.stage_inner(s.key, s.stage, s.nanos, s.fn_id);
            node = boxed.next;
        }
    }

    /// Discards the active record for `key` (e.g. a call that failed
    /// before reaching the wire).
    pub fn abandon(&self, key: SpanKey) {
        let removed = self
            .shard(key)
            .lock()
            .expect("span table poisoned")
            .remove(&key);
        if removed.is_some() {
            self.active_count.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Number of spans currently in flight.
    pub fn active_len(&self) -> usize {
        self.active_count.load(Ordering::Relaxed) as usize
    }

    /// Spans dropped due to capacity limits.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the completed spans without consuming them. Folds the
    /// deferred intake first so readers see every stamp pushed so far.
    pub fn completed(&self) -> Vec<SpanRecord> {
        self.fold_deferred();
        self.completed.lock().expect("span table poisoned").clone()
    }

    /// Drains and returns the completed spans (after folding deferred
    /// stamps, like [`SpanTable::completed`]).
    pub fn take_completed(&self) -> Vec<SpanRecord> {
        self.fold_deferred();
        std::mem::take(&mut *self.completed.lock().expect("span table poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lifecycle_completes_on_guest_end() {
        let t = SpanTable::new();
        let key = (1, 42);
        t.stage(key, Stage::GuestStart, 10, Some(7));
        t.stage(key, Stage::Sent, 20, None);
        t.stage(key, Stage::Queued, 30, None);
        t.stage(key, Stage::Forwarded, 40, None);
        t.stage(key, Stage::Executed, 50, Some(7));
        t.stage(key, Stage::Replied, 60, None);
        assert_eq!(t.active_len(), 1, "guest has not consumed the reply yet");
        t.stage(key, Stage::GuestEnd, 70, None);
        assert_eq!(t.active_len(), 0);
        let done = t.take_completed();
        assert_eq!(done.len(), 1);
        let span = &done[0];
        assert_eq!(span.fn_id, Some(7));
        assert_eq!(span.server_fn_id, Some(7));
        assert!(span.stages_ordered());
        assert_eq!(span.total(), Some(60));
        let segments = span.guest_marshal().unwrap()
            + span.transport_out().unwrap()
            + span.router_queue().unwrap()
            + span.server_execute().unwrap()
            + span.reply_path().unwrap()
            + span.transport_back().unwrap();
        assert_eq!(segments, span.total().unwrap(), "segments telescope");
    }

    #[test]
    fn guestless_span_completes_on_replied() {
        let t = SpanTable::new();
        let key = (3, 1);
        t.stage(key, Stage::Queued, 5, None);
        t.stage(key, Stage::Forwarded, 6, None);
        t.stage(key, Stage::Executed, 7, Some(2));
        t.stage(key, Stage::Replied, 8, None);
        assert_eq!(t.active_len(), 0);
        assert_eq!(t.take_completed().len(), 1);
    }

    #[test]
    fn abandon_discards_active() {
        let t = SpanTable::new();
        t.stage((1, 1), Stage::GuestStart, 1, Some(0));
        t.abandon((1, 1));
        assert_eq!(t.active_len(), 0);
        assert!(t.take_completed().is_empty());
    }

    #[test]
    fn deferred_stamps_fold_before_guest_end_completes() {
        let t = SpanTable::new();
        let key = (1, 9);
        t.stage(key, Stage::GuestStart, 10, Some(4));
        t.stage(key, Stage::Sent, 20, None);
        // Router-side stamps go through the lock-free intake.
        t.stage_deferred(key, Stage::Queued, 30, None);
        t.stage_deferred(key, Stage::Forwarded, 40, None);
        t.stage_deferred(key, Stage::Replied, 60, None);
        // Nothing folded yet: the record is active and missing them.
        assert_eq!(t.active_len(), 1);
        t.stage(key, Stage::GuestEnd, 70, None);
        let done = t.take_completed();
        assert_eq!(done.len(), 1);
        let span = &done[0];
        assert_eq!(span.queued, Some(30));
        assert_eq!(span.forwarded, Some(40));
        assert_eq!(span.replied, Some(60));
        assert!(span.stages_ordered());
    }

    #[test]
    fn read_apis_fold_deferred_guestless_spans() {
        let t = SpanTable::new();
        let key = (2, 5);
        t.stage_deferred(key, Stage::Queued, 1, None);
        t.stage_deferred(key, Stage::Forwarded, 2, None);
        t.stage_deferred(key, Stage::Replied, 3, None);
        // A guestless span completes on Replied — but only once folded.
        let done = t.completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].replied, Some(3));
        assert_eq!(t.active_len(), 0);
    }

    #[test]
    fn concurrent_deferred_pushers_lose_nothing() {
        use std::sync::Arc;
        let t = Arc::new(SpanTable::new());
        let threads: Vec<_> = (0..4u32)
            .map(|vm| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for call in 0..500u64 {
                        let key = (vm, call);
                        t.stage_deferred(key, Stage::Queued, call * 2, None);
                        t.stage_deferred(key, Stage::Forwarded, call * 2 + 1, None);
                        t.stage_deferred(key, Stage::Replied, call * 2 + 2, None);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let done = t.take_completed();
        assert_eq!(done.len(), 4 * 500, "every guestless span completed");
        assert!(done.iter().all(|s| s.stages_ordered()));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn out_of_order_stamp_detected() {
        let r = SpanRecord {
            queued: Some(10),
            forwarded: Some(5),
            ..Default::default()
        };
        assert!(!r.stages_ordered());
    }
}
