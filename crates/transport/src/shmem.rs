//! Virtio-style shared-memory ring transport.
//!
//! This is the para-virtual transport AvA uses between a guest VM and the
//! hypervisor router. Unlike the in-process channel, messages are *actually
//! serialized* into a byte ring shared between producer and consumer, so a
//! guest cannot pass host pointers, and the hypervisor can account for every
//! byte that crosses — the property §3 relies on for interposition.
//!
//! Each direction is a single-producer/single-consumer byte ring guarded by
//! monotonically increasing head/tail counters (`Acquire`/`Release`
//! atomics). Blocking uses a mutex+condvar doorbell, standing in for the
//! guest's doorbell write and the hypervisor's interrupt injection.
//!
//! Frame layout inside the ring:
//!
//! ```text
//! [u64 deliver_at_nanos (LE)] [u32 len_and_flag (LE)] [len bytes]
//! ```
//!
//! `deliver_at_nanos` is relative to the ring's shared epoch and implements
//! the transport [`CostModel`]'s delivery latency. The top bit of
//! `len_and_flag` marks a *fragment*: messages larger than a quarter of the
//! ring are split into chained fragments (the software analogue of virtio
//! descriptor chains), so arbitrarily large payloads flow through a
//! fixed-size ring.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_wire::Message;
use parking_lot::{Condvar, Mutex};

use crate::error::{Result, TransportError};
use crate::latency::{wait_until, CostModel};
use crate::stats::{StatsCell, TransportStats};
use crate::Transport;

/// Frame header size: u64 deliver-at + u32 length.
const HEADER: usize = 12;

/// Top bit of the length word: more fragments follow.
const MORE_FRAGMENTS: u32 = 1 << 31;

/// Configuration for a shared-memory ring pair.
#[derive(Debug, Clone, Copy)]
pub struct RingConfig {
    /// Capacity in bytes of each direction's ring.
    pub capacity: usize,
    /// Cost model applied to each crossing.
    pub model: CostModel,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: 1 << 20,
            model: CostModel::paravirtual(),
        }
    }
}

/// One SPSC byte ring.
struct Ring {
    /// Shared byte storage. Interior mutability is required because both
    /// producer and consumer hold `&Ring`.
    data: Box<[UnsafeCell<u8>]>,
    /// Monotonic count of bytes consumed.
    head: AtomicUsize,
    /// Monotonic count of bytes produced.
    tail: AtomicUsize,
    /// Set when either side closes in an orderly fashion.
    closed: AtomicBool,
    /// Set when a peer vanishes abruptly (crash). Unlike `closed`, frames
    /// still in the ring are considered lost and both sides observe
    /// [`TransportError::Disconnected`].
    disconnected: AtomicBool,
    /// Doorbell: wakes a consumer waiting for data.
    doorbell: Mutex<()>,
    doorbell_cv: Condvar,
    /// Wakes a producer waiting for free space.
    space: Mutex<()>,
    space_cv: Condvar,
    /// Epoch that `deliver_at_nanos` values are relative to.
    epoch: Instant,
}

// SAFETY: `Ring` is shared by exactly one producer and one consumer thread.
// The producer writes only bytes in `[tail, tail + n)` and publishes them
// with a `Release` store of `tail`; the consumer reads them only after an
// `Acquire` load of `tail` observes the new value, and symmetrically for
// `head`. Each byte is therefore never accessed mutably by one thread while
// the other reads it, and the Acquire/Release pairs provide the required
// happens-before edges for the data written through the `UnsafeCell`s.
unsafe impl Sync for Ring {}
// SAFETY: all fields are owned values; sending the Arc'd ring between
// threads moves no thread-affine state.
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize, epoch: Instant) -> Arc<Self> {
        let data: Box<[UnsafeCell<u8>]> = (0..capacity).map(|_| UnsafeCell::new(0)).collect();
        Arc::new(Ring {
            data,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            disconnected: AtomicBool::new(false),
            doorbell: Mutex::new(()),
            doorbell_cv: Condvar::new(),
            space: Mutex::new(()),
            space_cv: Condvar::new(),
            epoch,
        })
    }

    fn capacity(&self) -> usize {
        self.data.len()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.doorbell_cv.notify_all();
        self.space_cv.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn disconnect(&self) {
        self.disconnected.store(true, Ordering::Release);
        self.doorbell_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Returns the error a dead ring should surface, if any. A hard
    /// disconnect shadows an orderly close: if both happened, the failure
    /// is what callers must react to.
    fn dead(&self) -> Option<TransportError> {
        if self.disconnected.load(Ordering::Acquire) {
            Some(TransportError::Disconnected)
        } else if self.is_closed() {
            Some(TransportError::Closed)
        } else {
            None
        }
    }

    /// Copies `src` into the ring at absolute position `pos`, wrapping.
    fn write_bytes(&self, pos: usize, src: &[u8]) {
        let cap = self.capacity();
        let start = pos % cap;
        let first = src.len().min(cap - start);
        // SAFETY: per the `Sync` argument above, the producer exclusively
        // owns `[tail, tail + n)` until it publishes `tail`; `pos..pos+len`
        // lies inside that window (checked by the caller's space
        // accounting), so no other thread accesses these bytes now.
        unsafe {
            let base = self.data.as_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(start), first);
            if first < src.len() {
                std::ptr::copy_nonoverlapping(src.as_ptr().add(first), base, src.len() - first);
            }
        }
    }

    /// Copies `dst.len()` bytes out of the ring from absolute position `pos`.
    fn read_bytes(&self, pos: usize, dst: &mut [u8]) {
        let cap = self.capacity();
        let start = pos % cap;
        let first = dst.len().min(cap - start);
        // SAFETY: the consumer exclusively owns `[head, tail)` after an
        // Acquire load of `tail`; the caller checked `pos..pos+len` lies in
        // that window, so the producer is not writing these bytes.
        unsafe {
            let base = self.data.as_ptr() as *const u8;
            std::ptr::copy_nonoverlapping(base.add(start), dst.as_mut_ptr(), first);
            if first < dst.len() {
                std::ptr::copy_nonoverlapping(base, dst.as_mut_ptr().add(first), dst.len() - first);
            }
        }
    }

    /// Producer: appends one frame (or fragment), blocking while the ring
    /// is full.
    fn push_frame(&self, deliver_at_nanos: u64, payload: &[u8], more: bool) -> Result<()> {
        let need = HEADER + payload.len();
        if need > self.capacity() {
            return Err(TransportError::FrameTooLarge {
                size: need,
                limit: self.capacity(),
            });
        }
        // Wait for space. A dead peer (closed or disconnected) surfaces as
        // an error even while the ring is full — the classic "ring full
        // with a dead consumer" wedge must not block forever.
        loop {
            if let Some(err) = self.dead() {
                return Err(err);
            }
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Relaxed);
            let used = tail - head;
            if self.capacity() - used >= need {
                break;
            }
            let mut guard = self.space.lock();
            // Re-check under the lock to avoid a lost wakeup.
            let head = self.head.load(Ordering::Acquire);
            let used = self.tail.load(Ordering::Relaxed) - head;
            if self.capacity() - used >= need || self.dead().is_some() {
                continue;
            }
            self.space_cv
                .wait_for(&mut guard, Duration::from_millis(50));
        }
        let tail = self.tail.load(Ordering::Relaxed);
        let mut header = [0u8; HEADER];
        header[..8].copy_from_slice(&deliver_at_nanos.to_le_bytes());
        let len_word = payload.len() as u32 | if more { MORE_FRAGMENTS } else { 0 };
        header[8..].copy_from_slice(&len_word.to_le_bytes());
        self.write_bytes(tail, &header);
        self.write_bytes(tail + HEADER, payload);
        self.tail.store(tail + need, Ordering::Release);
        // Ring the doorbell.
        {
            let _guard = self.doorbell.lock();
            self.doorbell_cv.notify_one();
        }
        Ok(())
    }

    /// Consumer: pops one frame (or fragment) if available. Returns the
    /// deliver-at nanos, the bytes, and whether more fragments follow.
    fn try_pop_frame(&self) -> Result<Option<(u64, Vec<u8>, bool)>> {
        // A hard disconnect loses in-flight frames: error out even if bytes
        // remain in the ring, so a consumer never acts on traffic from a
        // peer that crashed mid-conversation.
        if self.disconnected.load(Ordering::Acquire) {
            return Err(TransportError::Disconnected);
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if tail - head < HEADER {
            if self.is_closed() {
                return Err(TransportError::Closed);
            }
            return Ok(None);
        }
        let mut header = [0u8; HEADER];
        self.read_bytes(head, &mut header);
        let deliver = u64::from_le_bytes(header[..8].try_into().expect("8 bytes"));
        let len_word = u32::from_le_bytes(header[8..].try_into().expect("4 bytes"));
        let more = len_word & MORE_FRAGMENTS != 0;
        let len = (len_word & !MORE_FRAGMENTS) as usize;
        if tail - head < HEADER + len {
            // Frame not fully published yet (cannot happen with Release
            // ordering on tail, but be defensive).
            return Ok(None);
        }
        let mut payload = vec![0u8; len];
        self.read_bytes(head + HEADER, &mut payload);
        self.head.store(head + HEADER + len, Ordering::Release);
        {
            let _guard = self.space.lock();
            self.space_cv.notify_one();
        }
        Ok(Some((deliver, payload, more)))
    }

    /// Consumer: pops one frame, blocking up to `timeout` (`None` = forever).
    fn pop_frame(&self, timeout: Option<Duration>) -> Result<Option<(u64, Vec<u8>, bool)>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(frame) = self.try_pop_frame()? {
                return Ok(Some(frame));
            }
            let mut guard = self.doorbell.lock();
            // Re-check under the lock so a frame pushed between the check
            // and the wait is not missed.
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Acquire);
            if tail - head >= HEADER {
                continue;
            }
            if let Some(err) = self.dead() {
                return Err(err);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Ok(None);
                    }
                    self.doorbell_cv.wait_for(&mut guard, d - now);
                    let now = Instant::now();
                    if now >= d && self.try_pop_frame()?.is_none() {
                        return Ok(None);
                    }
                }
                None => {
                    self.doorbell_cv
                        .wait_for(&mut guard, Duration::from_millis(50));
                }
            }
        }
    }
}

/// One endpoint of a shared-memory transport pair.
pub struct ShmemTransport {
    tx_ring: Arc<Ring>,
    rx_ring: Arc<Ring>,
    model: CostModel,
    stats: Arc<StatsCell>,
    /// Serializes senders (the ring itself is single-producer).
    send_lock: Mutex<()>,
    /// Serializes receivers.
    recv_lock: Mutex<()>,
}

/// Creates a connected shared-memory pair.
pub fn pair(config: RingConfig) -> (ShmemTransport, ShmemTransport) {
    let epoch = Instant::now();
    let ab = Ring::new(config.capacity, epoch);
    let ba = Ring::new(config.capacity, epoch);
    let a = ShmemTransport {
        tx_ring: Arc::clone(&ab),
        rx_ring: Arc::clone(&ba),
        model: config.model,
        stats: StatsCell::new(),
        send_lock: Mutex::new(()),
        recv_lock: Mutex::new(()),
    };
    let b = ShmemTransport {
        tx_ring: ba,
        rx_ring: ab,
        model: config.model,
        stats: StatsCell::new(),
        send_lock: Mutex::new(()),
        recv_lock: Mutex::new(()),
    };
    (a, b)
}

impl ShmemTransport {
    /// Simulates an abrupt peer crash: both directions observe
    /// [`TransportError::Disconnected`] and any in-flight frames are lost.
    /// Contrast with [`Transport::close`], which is an orderly shutdown.
    pub fn disconnect(&self) {
        self.tx_ring.disconnect();
        self.rx_ring.disconnect();
    }

    /// Largest single fragment: a quarter of the ring, so a chained
    /// message cannot monopolize it.
    fn max_fragment(&self) -> usize {
        (self.tx_ring.capacity() / 4).saturating_sub(HEADER).max(1)
    }

    /// Reassembles any remaining fragments after the first, then decodes.
    fn finish_recv(
        &self,
        deliver_nanos: u64,
        mut payload: Vec<u8>,
        mut more: bool,
    ) -> Result<Message> {
        while more {
            match self.rx_ring.pop_frame(None)? {
                Some((_nanos, chunk, chunk_more)) => {
                    payload.extend_from_slice(&chunk);
                    more = chunk_more;
                }
                None => return Err(TransportError::Closed),
            }
        }
        let deliver_at = self.rx_ring.epoch + Duration::from_nanos(deliver_nanos);
        wait_until(deliver_at);
        let frame_bytes = payload.len() + HEADER;
        let msg = Message::decode(bytes::Bytes::from(payload))?;
        self.stats.on_recv(msg.payload_bytes(), frame_bytes);
        Ok(msg)
    }
}

impl Transport for ShmemTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let _guard = self.send_lock.lock();
        let encoded = msg.encode();
        let now = Instant::now();
        let deliver_at = self.model.deliver_at(now, msg.payload_bytes());
        let deliver_nanos = deliver_at
            .saturating_duration_since(self.tx_ring.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let max = self.max_fragment();
        if encoded.len() <= max {
            self.tx_ring.push_frame(deliver_nanos, &encoded, false)?;
        } else {
            let mut chunks = encoded.chunks(max).peekable();
            while let Some(chunk) = chunks.next() {
                let more = chunks.peek().is_some();
                self.tx_ring.push_frame(deliver_nanos, chunk, more)?;
            }
        }
        self.stats
            .on_send(msg.payload_bytes(), encoded.len() + HEADER);
        wait_until(now + self.model.sender_overhead);
        Ok(())
    }

    fn recv(&self) -> Result<Message> {
        let _guard = self.recv_lock.lock();
        match self.rx_ring.pop_frame(None)? {
            Some((deliver, payload, more)) => self.finish_recv(deliver, payload, more),
            None => Err(TransportError::Closed),
        }
    }

    fn try_recv(&self) -> Result<Option<Message>> {
        let _guard = self.recv_lock.lock();
        match self.rx_ring.try_pop_frame()? {
            Some((deliver, payload, more)) => self.finish_recv(deliver, payload, more).map(Some),
            None => Ok(None),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>> {
        let _guard = self.recv_lock.lock();
        match self.rx_ring.pop_frame(Some(timeout))? {
            Some((deliver, payload, more)) => self.finish_recv(deliver, payload, more).map(Some),
            None => Ok(None),
        }
    }

    fn close(&self) {
        self.tx_ring.close();
        self.rx_ring.close();
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn register_telemetry(&self, registry: &ava_telemetry::Registry, prefix: &str) {
        self.stats.register_into(registry, prefix);
    }
}

impl Drop for ShmemTransport {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_wire::{CallMode, CallRequest, ControlMessage, Value};

    fn free_pair() -> (ShmemTransport, ShmemTransport) {
        pair(RingConfig {
            capacity: 1 << 16,
            model: CostModel::free(),
        })
    }

    fn call(id: u64, bytes: usize) -> Message {
        Message::Call(CallRequest {
            call_id: id,
            fn_id: 9,
            mode: CallMode::Sync,
            args: vec![Value::Bytes(bytes::Bytes::from(vec![0xabu8; bytes]))],
            budget_us: 0,
        })
    }

    #[test]
    fn round_trip_single_message() {
        let (a, b) = free_pair();
        let msg = call(7, 100);
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
    }

    #[test]
    fn many_messages_preserve_order_and_content() {
        let (a, b) = free_pair();
        let sender = std::thread::spawn(move || {
            for i in 0..500 {
                a.send(&call(i, (i as usize * 7) % 300)).unwrap();
            }
            a // keep alive until joined
        });
        for i in 0..500 {
            match b.recv().unwrap() {
                Message::Call(req) => {
                    assert_eq!(req.call_id, i);
                    assert_eq!(req.args[0].payload_bytes(), (i as usize * 7) % 300);
                }
                other => panic!("{other:?}"),
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn wraparound_is_exercised() {
        // Ring far smaller than total traffic forces many wraps; also use
        // payloads larger than half the ring to hit the split-copy path.
        let (a, b) = pair(RingConfig {
            capacity: 4096,
            model: CostModel::free(),
        });
        let sender = std::thread::spawn(move || {
            for i in 0..200 {
                a.send(&call(i, 1500)).unwrap();
            }
            a
        });
        for i in 0..200 {
            match b.recv().unwrap() {
                Message::Call(req) => {
                    assert_eq!(req.call_id, i);
                    let data = req.args[0].as_bytes().unwrap();
                    assert!(data.iter().all(|&x| x == 0xab));
                }
                other => panic!("{other:?}"),
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn oversized_messages_fragment_and_reassemble() {
        // 4 KiB ring, 64 KiB payload: must chain ~64 fragments.
        let (a, b) = pair(RingConfig {
            capacity: 4096,
            model: CostModel::free(),
        });
        let msg = call(1, 64 * 1024);
        let expected = msg.clone();
        let sender = std::thread::spawn(move || {
            a.send(&msg).unwrap();
            a
        });
        assert_eq!(b.recv().unwrap(), expected);
        sender.join().unwrap();
    }

    #[test]
    fn interleaved_large_and_small_messages() {
        let (a, b) = pair(RingConfig {
            capacity: 8192,
            model: CostModel::free(),
        });
        let sender = std::thread::spawn(move || {
            for i in 0..20 {
                let size = if i % 3 == 0 { 32 * 1024 } else { 16 };
                a.send(&call(i, size)).unwrap();
            }
            a
        });
        for i in 0..20 {
            match b.recv().unwrap() {
                Message::Call(req) => {
                    assert_eq!(req.call_id, i);
                    let expect = if i % 3 == 0 { 32 * 1024 } else { 16 };
                    assert_eq!(req.payload_bytes(), expect);
                }
                other => panic!("{other:?}"),
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn full_ring_blocks_until_drained() {
        let (a, b) = pair(RingConfig {
            capacity: 2048,
            model: CostModel::free(),
        });
        // Fill with ~4 frames of ~400 bytes; the 6th send must block until
        // the receiver drains.
        let sender = std::thread::spawn(move || {
            for i in 0..10 {
                a.send(&call(i, 400)).unwrap();
            }
            a
        });
        std::thread::sleep(Duration::from_millis(20));
        for i in 0..10 {
            match b.recv().unwrap() {
                Message::Call(req) => assert_eq!(req.call_id, i),
                other => panic!("{other:?}"),
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires_empty() {
        let (_a, b) = free_pair();
        let got = b.recv_timeout(Duration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn close_wakes_blocked_receiver() {
        let (a, b) = free_pair();
        let waiter = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.close();
        assert_eq!(waiter.join().unwrap().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn recv_timeout_and_hard_disconnect_are_distinct() {
        // Benign timeout: Ok(None). Hard disconnect: Err(Disconnected).
        // Orderly close: Err(Closed). Three different answers so callers
        // can retry, recover, or shut down respectively.
        let (a, b) = free_pair();
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        a.disconnect();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            TransportError::Disconnected
        );
        let (c, d) = free_pair();
        c.close();
        assert_eq!(
            d.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn disconnect_discards_in_flight_frames() {
        let (a, b) = free_pair();
        a.send(&call(1, 16)).unwrap();
        a.disconnect();
        // The frame is in the ring, but a crashed peer's traffic must not
        // be delivered as if nothing happened.
        assert_eq!(b.recv().unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn ring_full_with_dead_consumer_errors_instead_of_blocking() {
        let (a, b) = pair(RingConfig {
            capacity: 2048,
            model: CostModel::free(),
        });
        // Fill the ring with no consumer draining it, then kill the
        // consumer. The blocked producer must unwedge with an error.
        let producer = std::thread::spawn(move || {
            let mut result = Ok(());
            for i in 0..50 {
                result = a.send(&call(i, 400));
                if result.is_err() {
                    break;
                }
            }
            result
        });
        std::thread::sleep(Duration::from_millis(50));
        b.disconnect();
        assert_eq!(
            producer.join().unwrap().unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn disconnect_wakes_blocked_receiver() {
        let (a, b) = free_pair();
        let waiter = std::thread::spawn(move || b.recv());
        std::thread::sleep(Duration::from_millis(20));
        a.disconnect();
        assert_eq!(
            waiter.join().unwrap().unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn delivery_latency_is_applied() {
        let model = CostModel {
            delivery_latency: Duration::from_millis(4),
            ..CostModel::free()
        };
        let (a, b) = pair(RingConfig {
            capacity: 1 << 16,
            model,
        });
        let start = Instant::now();
        a.send(&Message::Control(ControlMessage::Ping(1))).unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn frame_bytes_are_counted() {
        let (a, b) = free_pair();
        a.send(&call(1, 64)).unwrap();
        b.recv().unwrap();
        let s = a.stats();
        assert_eq!(s.messages_sent, 1);
        assert!(s.frame_bytes_sent > 64, "frame must include headers");
        assert_eq!(s.payload_bytes_sent, 64);
        let r = b.stats();
        assert_eq!(r.messages_received, 1);
        assert_eq!(
            r.frame_bytes_received, s.frame_bytes_sent,
            "receiver sees the same encoded frame the sender put on the ring"
        );
        assert_eq!(r.payload_bytes_received, 64);
    }

    #[test]
    fn bidirectional_traffic() {
        let (a, b) = free_pair();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                let msg = b.recv().unwrap();
                if let Message::Call(req) = msg {
                    b.send(&Message::Control(ControlMessage::Pong(req.call_id)))
                        .unwrap();
                }
            }
            b
        });
        for i in 0..100 {
            a.send(&call(i, 32)).unwrap();
            match a.recv().unwrap() {
                Message::Control(ControlMessage::Pong(id)) => assert_eq!(id, i),
                other => panic!("{other:?}"),
            }
        }
        t.join().unwrap();
    }
}
