//! `pathfinder` — Rodinia's grid dynamic programming: find the cheapest
//! path from the bottom row to the top, one kernel launch per row.

use simcl::kernels::KernelRegistry;
use simcl::mem::{as_i32, as_i32_mut};
use simcl::types::KernelArg;
use simcl::ClApi;

use crate::harness::{ClWorkload, Result, Scale, Session, WorkloadError, XorShift};

/// OpenCL C source.
pub const SOURCE: &str = r#"
__kernel void pathfinder_row(__global const int *wall,
                             __global const int *src,
                             __global int *dst,
                             const int cols, const int row) {
    int c = get_global_id(0);
    if (c < cols) {
        int best = src[c];
        if (c > 0 && src[c - 1] < best) best = src[c - 1];
        if (c < cols - 1 && src[c + 1] < best) best = src[c + 1];
        dst[c] = wall[row * cols + c] + best;
    }
}
"#;

/// The pathfinder workload.
pub struct Pathfinder {
    rows: usize,
    cols: usize,
}

impl Pathfinder {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Pathfinder { rows: 8, cols: 64 },
            Scale::Bench => Pathfinder {
                rows: 500,
                cols: 20_000,
            },
        }
    }

    fn wall(&self) -> Vec<i32> {
        let mut rng = XorShift::new(0x9a7f);
        (0..self.rows * self.cols)
            .map(|_| rng.next_below(10) as i32)
            .collect()
    }

    fn cpu_solve(&self, wall: &[i32]) -> Vec<i32> {
        let cols = self.cols;
        let mut src: Vec<i32> = wall[..cols].to_vec();
        for row in 1..self.rows {
            let mut dst = vec![0i32; cols];
            for c in 0..cols {
                let mut best = src[c];
                if c > 0 {
                    best = best.min(src[c - 1]);
                }
                if c < cols - 1 {
                    best = best.min(src[c + 1]);
                }
                dst[c] = wall[row * cols + c] + best;
            }
            src = dst;
        }
        src
    }
}

impl ClWorkload for Pathfinder {
    fn name(&self) -> &'static str {
        "pathfinder"
    }

    fn register(&self, registry: &KernelRegistry) {
        registry.register_fn("pathfinder_row", |inv| {
            let cols = inv.scalar_i32(3)? as usize;
            let row = inv.scalar_i32(4)? as usize;
            let [wall, src, dst] = inv.bufs([0, 1, 2])?;
            let (wall, src) = (as_i32(wall), as_i32(src));
            let dst = as_i32_mut(dst);
            for c in 0..cols {
                let mut best = src[c];
                if c > 0 {
                    best = best.min(src[c - 1]);
                }
                if c < cols - 1 {
                    best = best.min(src[c + 1]);
                }
                dst[c] = wall[row * cols + c] + best;
            }
            Ok(())
        });
    }

    fn run(&self, api: &dyn ClApi) -> Result<f64> {
        let wall = self.wall();
        let mut session = Session::open(api)?;
        session.build(SOURCE)?;
        let kernel = session.kernel("pathfinder_row")?;

        let b_wall = session.buffer_i32(&wall)?;
        let mut b_src = session.buffer_i32(&wall[..self.cols])?;
        let mut b_dst = session.buffer_zeroed(self.cols * 4)?;

        for row in 1..self.rows {
            session.set_args(
                kernel,
                &[
                    KernelArg::Mem(b_wall),
                    KernelArg::Mem(b_src),
                    KernelArg::Mem(b_dst),
                    KernelArg::from_i32(self.cols as i32),
                    KernelArg::from_i32(row as i32),
                ],
            )?;
            session.run_1d(kernel, self.cols)?;
            std::mem::swap(&mut b_src, &mut b_dst);
        }
        session.finish()?;
        let result = session.read_i32(b_src, self.cols)?;

        let expected = self.cpu_solve(&wall);
        if result != expected {
            return Err(WorkloadError::Validation("DP row mismatch".into()));
        }
        let checksum = f64::from(*result.iter().min().expect("non-empty"));

        for mem in [b_wall, b_src, b_dst] {
            session.release(mem)?;
        }
        session.close()?;
        Ok(checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pathfinder_matches_cpu_dp() {
        let wl = Pathfinder::new(Scale::Test);
        let registry = Arc::new(KernelRegistry::new());
        wl.register(&registry);
        let cl =
            simcl::SimCl::with_devices_and_registry(vec![simcl::DeviceConfig::default()], registry);
        assert!(wl.run(&cl).unwrap().is_finite());
    }
}
