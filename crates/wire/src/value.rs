//! The API-agnostic argument value model.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{get_len, get_varint, put_varint};
use crate::{Result, WireError};

/// A single marshaled argument or return value.
///
/// `Value` is the common currency between the guest library, the hypervisor
/// router and the API server. The CAvA-generated descriptor on each side maps
/// between native API types and `Value`s; the wire layer itself attaches no
/// API semantics beyond the shape of the data.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (e.g. `void` return).
    Unit,
    /// A null pointer argument. Distinct from an empty buffer: OpenCL-style
    /// APIs frequently distinguish `NULL` from a zero-length array.
    Null,
    /// Boolean scalar.
    Bool(bool),
    /// Signed 32-bit scalar (covers C `int` and most status codes).
    I32(i32),
    /// Signed 64-bit scalar.
    I64(i64),
    /// Unsigned 32-bit scalar.
    U32(u32),
    /// Unsigned 64-bit scalar (also used for `size_t`).
    U64(u64),
    /// 32-bit float scalar.
    F32(f32),
    /// 64-bit float scalar.
    F64(f64),
    /// An opaque accelerator object handle, already translated to the wire
    /// handle namespace by the endpoint that produced it.
    Handle(u64),
    /// Raw buffer contents (input or output data), cheaply cloneable.
    Bytes(Bytes),
    /// A NUL-free UTF-8 string (e.g. program source, option strings).
    Str(String),
    /// A homogeneous or heterogeneous list of values (arrays of handles,
    /// nested structures).
    List(Vec<Value>),
    /// A buffer payload elided by the content-addressed transfer cache: the
    /// receiver rematerializes the bytes from its mirror cache keyed by
    /// `digest` (FNV-1a 64-bit over the payload). `len` is the payload
    /// length, kept so size accounting works without the bytes present. If
    /// the receiver's cache misses, it NACKs with
    /// `ReplyStatus::CacheMiss` and the sender retransmits the full buffer.
    CachedBytes {
        /// FNV-1a 64-bit digest of the elided payload.
        digest: u64,
        /// Length in bytes of the elided payload.
        len: u64,
    },
}

mod tag {
    pub const UNIT: u8 = 0x00;
    pub const NULL: u8 = 0x01;
    pub const BOOL_FALSE: u8 = 0x02;
    pub const BOOL_TRUE: u8 = 0x03;
    pub const I32: u8 = 0x04;
    pub const I64: u8 = 0x05;
    pub const U32: u8 = 0x06;
    pub const U64: u8 = 0x07;
    pub const F32: u8 = 0x08;
    pub const F64: u8 = 0x09;
    pub const HANDLE: u8 = 0x0a;
    pub const BYTES: u8 = 0x0b;
    pub const STR: u8 = 0x0c;
    pub const LIST: u8 = 0x0d;
    pub const CACHED_BYTES: u8 = 0x0e;
}

impl Value {
    /// Encodes `self`, appending to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Unit => buf.put_u8(tag::UNIT),
            Value::Null => buf.put_u8(tag::NULL),
            Value::Bool(false) => buf.put_u8(tag::BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(tag::BOOL_TRUE),
            Value::I32(v) => {
                buf.put_u8(tag::I32);
                buf.put_i32_le(*v);
            }
            Value::I64(v) => {
                buf.put_u8(tag::I64);
                buf.put_i64_le(*v);
            }
            Value::U32(v) => {
                buf.put_u8(tag::U32);
                buf.put_u32_le(*v);
            }
            Value::U64(v) => {
                buf.put_u8(tag::U64);
                buf.put_u64_le(*v);
            }
            Value::F32(v) => {
                buf.put_u8(tag::F32);
                buf.put_f32_le(*v);
            }
            Value::F64(v) => {
                buf.put_u8(tag::F64);
                buf.put_f64_le(*v);
            }
            Value::Handle(h) => {
                buf.put_u8(tag::HANDLE);
                put_varint(buf, *h);
            }
            Value::Bytes(b) => {
                buf.put_u8(tag::BYTES);
                put_varint(buf, b.len() as u64);
                buf.put_slice(b);
            }
            Value::Str(s) => {
                buf.put_u8(tag::STR);
                put_varint(buf, s.len() as u64);
                buf.put_slice(s.as_bytes());
            }
            Value::List(items) => {
                buf.put_u8(tag::LIST);
                put_varint(buf, items.len() as u64);
                for item in items {
                    item.encode(buf);
                }
            }
            Value::CachedBytes { digest, len } => {
                buf.put_u8(tag::CACHED_BYTES);
                buf.put_u64_le(*digest);
                put_varint(buf, *len);
            }
        }
    }

    /// Decodes a value from the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> Result<Value> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let t = buf.get_u8();
        Ok(match t {
            tag::UNIT => Value::Unit,
            tag::NULL => Value::Null,
            tag::BOOL_FALSE => Value::Bool(false),
            tag::BOOL_TRUE => Value::Bool(true),
            tag::I32 => Value::I32(need(buf, 4)?.get_i32_le()),
            tag::I64 => Value::I64(need(buf, 8)?.get_i64_le()),
            tag::U32 => Value::U32(need(buf, 4)?.get_u32_le()),
            tag::U64 => Value::U64(need(buf, 8)?.get_u64_le()),
            tag::F32 => Value::F32(need(buf, 4)?.get_f32_le()),
            tag::F64 => Value::F64(need(buf, 8)?.get_f64_le()),
            tag::HANDLE => Value::Handle(get_varint(buf)?),
            tag::BYTES => {
                let len = get_len(buf)?;
                if buf.remaining() < len {
                    return Err(WireError::UnexpectedEof);
                }
                Value::Bytes(buf.split_to(len))
            }
            tag::STR => {
                let len = get_len(buf)?;
                if buf.remaining() < len {
                    return Err(WireError::UnexpectedEof);
                }
                let raw = buf.split_to(len);
                Value::Str(String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)?)
            }
            tag::LIST => {
                let len = get_len(buf)?;
                // A list element takes at least one byte, so `len` can never
                // legitimately exceed the remaining input.
                if len > buf.remaining() {
                    return Err(WireError::UnexpectedEof);
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(Value::decode(buf)?);
                }
                Value::List(items)
            }
            tag::CACHED_BYTES => {
                let digest = need(buf, 8)?.get_u64_le();
                // The elided payload obeys the same length bound as an
                // in-line `Bytes`, even though the bytes are not present.
                let len = get_len(buf)? as u64;
                Value::CachedBytes { digest, len }
            }
            other => return Err(WireError::BadTag(other)),
        })
    }

    /// Number of payload bytes this value moves across the transport,
    /// counting buffer/string/list contents. Used by the router for
    /// bandwidth accounting. `CachedBytes` moves no payload — only its
    /// fixed-size digest — so it counts zero here; the bytes it stands in
    /// for are reported by [`Value::elided_bytes`].
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Bytes(b) => b.len(),
            Value::Str(s) => s.len(),
            Value::List(items) => items.iter().map(Value::payload_bytes).sum(),
            _ => 0,
        }
    }

    /// Number of payload bytes this value *avoided* moving thanks to
    /// transfer-cache elision (the declared lengths of any `CachedBytes`
    /// inside, recursively).
    pub fn elided_bytes(&self) -> usize {
        match self {
            Value::CachedBytes { len, .. } => *len as usize,
            Value::List(items) => items.iter().map(Value::elided_bytes).sum(),
            _ => 0,
        }
    }

    /// Number of `CachedBytes` values inside `self`, recursively. Used by
    /// the router's cache-hit accounting.
    pub fn cached_count(&self) -> usize {
        match self {
            Value::CachedBytes { .. } => 1,
            Value::List(items) => items.iter().map(Value::cached_count).sum(),
            _ => 0,
        }
    }

    /// Interprets this value as an unsigned integer, if it has integral
    /// shape. Used by size-expression evaluation and handle translation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Bool(b) => Some(u64::from(*b)),
            Value::I32(v) if *v >= 0 => Some(*v as u64),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::U32(v) => Some(u64::from(*v)),
            Value::U64(v) => Some(*v),
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// Interprets this value as a signed integer, if it has integral shape.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Bool(b) => Some(i64::from(*b)),
            Value::I32(v) => Some(i64::from(*v)),
            Value::I64(v) => Some(*v),
            Value::U32(v) => Some(i64::from(*v)),
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::Handle(h) => i64::try_from(*h).ok(),
            _ => None,
        }
    }

    /// Returns the buffer contents if this is a `Bytes` value.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the string contents if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the handle value if this is a `Handle`.
    pub fn as_handle(&self) -> Option<u64> {
        match self {
            Value::Handle(h) => Some(*h),
            _ => None,
        }
    }

    /// Returns the list items if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Checks that at least `n` bytes remain, returning the buffer for chaining.
fn need(buf: &mut Bytes, n: usize) -> Result<&mut Bytes> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof)
    } else {
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = Value::decode(&mut bytes).expect("decode");
        assert!(bytes.is_empty(), "trailing bytes for {v:?}");
        decoded
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Unit,
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I32(-7),
            Value::I32(i32::MIN),
            Value::I64(i64::MAX),
            Value::U32(0),
            Value::U64(u64::MAX),
            Value::F32(3.5),
            Value::F64(-0.0),
            Value::Handle(0xdead_beef),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Value::List(vec![
            Value::Bytes(Bytes::from_static(b"hello")),
            Value::Str("world".into()),
            Value::List(vec![Value::Handle(1), Value::Null]),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn empty_containers_round_trip() {
        assert_eq!(
            round_trip(&Value::Bytes(Bytes::new())),
            Value::Bytes(Bytes::new())
        );
        assert_eq!(
            round_trip(&Value::Str(String::new())),
            Value::Str(String::new())
        );
        assert_eq!(round_trip(&Value::List(vec![])), Value::List(vec![]));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut bytes = Bytes::from_static(&[0x7f]);
        assert_eq!(Value::decode(&mut bytes), Err(WireError::BadTag(0x7f)));
    }

    #[test]
    fn decode_rejects_truncated_scalar() {
        let mut buf = BytesMut::new();
        Value::I64(42).encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..5);
        assert_eq!(Value::decode(&mut truncated), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_truncated_bytes() {
        let mut buf = BytesMut::new();
        Value::Bytes(Bytes::from_static(b"abcdef")).encode(&mut buf);
        let frozen = buf.freeze();
        let mut truncated = frozen.slice(0..frozen.len() - 1);
        assert_eq!(Value::decode(&mut truncated), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x0c); // STR tag
        raw.put_u8(2); // length 2
        raw.put_slice(&[0xff, 0xfe]);
        let mut bytes = raw.freeze();
        assert_eq!(Value::decode(&mut bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn decode_rejects_list_longer_than_input() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x0d); // LIST tag
        raw.put_u8(0x7f); // claims 127 elements, but input ends here
        let mut bytes = raw.freeze();
        assert_eq!(Value::decode(&mut bytes), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn cached_bytes_round_trips() {
        for v in [
            Value::CachedBytes { digest: 0, len: 0 },
            Value::CachedBytes {
                digest: u64::MAX,
                len: 4096,
            },
            Value::List(vec![
                Value::CachedBytes {
                    digest: 0x1234_5678_9abc_def0,
                    len: 1,
                },
                Value::Bytes(Bytes::from_static(b"xy")),
            ]),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn decode_rejects_truncated_cached_bytes_digest() {
        let mut buf = BytesMut::new();
        Value::CachedBytes {
            digest: 0xaabb_ccdd_eeff_0011,
            len: 77,
        }
        .encode(&mut buf);
        // Cut into the fixed-width digest field.
        let mut truncated = buf.freeze().slice(0..5);
        assert_eq!(Value::decode(&mut truncated), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_cached_bytes_missing_len() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x0e); // CACHED_BYTES tag
        raw.put_u64_le(42); // digest present, len varint absent
        let mut bytes = raw.freeze();
        assert_eq!(Value::decode(&mut bytes), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_cached_bytes_len_out_of_range() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x0e); // CACHED_BYTES tag
        raw.put_u64_le(42);
        // A length far beyond MAX_LEN: corrupt frame, must be rejected even
        // though no payload bytes follow a CachedBytes.
        crate::codec::put_varint(&mut raw, u64::MAX);
        let mut bytes = raw.freeze();
        assert_eq!(
            Value::decode(&mut bytes),
            Err(WireError::LengthOutOfRange(u64::MAX))
        );
    }

    #[test]
    fn elided_accounting_is_disjoint_from_payload() {
        let v = Value::List(vec![
            Value::CachedBytes {
                digest: 7,
                len: 100,
            },
            Value::Bytes(Bytes::from_static(&[0u8; 40])),
            Value::List(vec![Value::CachedBytes { digest: 8, len: 5 }]),
        ]);
        assert_eq!(v.payload_bytes(), 40);
        assert_eq!(v.elided_bytes(), 105);
        assert_eq!(v.cached_count(), 2);
        assert_eq!(Value::U64(9).elided_bytes(), 0);
        assert_eq!(Value::U64(9).cached_count(), 0);
    }

    #[test]
    fn payload_bytes_counts_nested_contents() {
        let v = Value::List(vec![
            Value::Bytes(Bytes::from_static(&[0u8; 100])),
            Value::Str("abcd".into()),
            Value::U64(9),
            Value::List(vec![Value::Bytes(Bytes::from_static(&[0u8; 3]))]),
        ]);
        assert_eq!(v.payload_bytes(), 107);
    }

    #[test]
    fn numeric_views_behave() {
        assert_eq!(Value::I32(-1).as_u64(), None);
        assert_eq!(Value::I32(-1).as_i64(), Some(-1));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::Bool(true).as_u64(), Some(1));
        assert_eq!(Value::Handle(7).as_u64(), Some(7));
        assert_eq!(Value::Str("x".into()).as_u64(), None);
    }
}
