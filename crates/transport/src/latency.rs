//! Cost model for para-virtual and disaggregated transports.
//!
//! AvA's end-to-end overhead is determined by the frequency and mode of
//! guest/host communication (§2). The simulated transports reproduce that
//! cost structure mechanistically: each crossing pays a fixed latency
//! (doorbell + exit/injection on a para-virtual path, propagation on a
//! network path) and payload bytes pay a bandwidth cost. Overhead therefore
//! emerges from each workload's call profile rather than from per-benchmark
//! constants.

use std::time::{Duration, Instant};

/// Per-message cost model applied by a transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost paid by the *sender* per crossing (models the guest's vm-exit /
    /// doorbell write on a para-virtual transport).
    pub sender_overhead: Duration,
    /// One-way delivery latency before the message becomes visible to the
    /// receiver (interrupt injection, scheduling, or network propagation).
    pub delivery_latency: Duration,
    /// Payload bandwidth in bytes per second; `None` means unbounded
    /// (payloads still pay memcpy time on real hardware, but that is already
    /// captured by the actual copy the ring performs).
    pub bytes_per_sec: Option<u64>,
}

impl CostModel {
    /// No modelled costs at all (ideal transport).
    pub const fn free() -> Self {
        CostModel {
            sender_overhead: Duration::ZERO,
            delivery_latency: Duration::ZERO,
            bytes_per_sec: None,
        }
    }

    /// Defaults modelled on a virtio-style para-virtual channel: ~1 µs of
    /// guest-side doorbell cost (exitless notification, as production
    /// virtio rings use) and ~8 µs one-way delivery, with copy bandwidth
    /// around 12 GB/s.
    pub const fn paravirtual() -> Self {
        CostModel {
            sender_overhead: Duration::from_micros(1),
            delivery_latency: Duration::from_micros(8),
            bytes_per_sec: Some(12_000_000_000),
        }
    }

    /// Defaults modelled on trap-based interposition: every crossing is a
    /// full VM exit (hypercall or emulated doorbell write) handled by the
    /// hypervisor, plus interrupt-injection delivery — the regime AvA's §2
    /// overhead argument targets, where per-call forwarding costs tens of
    /// microseconds and call *frequency*, not payload volume, dominates.
    /// Contrast with [`CostModel::paravirtual`], whose exitless doorbell
    /// costs ~1 µs: batching exists precisely to amortize this gap.
    pub const fn trap() -> Self {
        CostModel {
            sender_overhead: Duration::from_micros(20),
            delivery_latency: Duration::from_micros(15),
            bytes_per_sec: Some(12_000_000_000),
        }
    }

    /// Defaults modelled on a datacenter network hop (disaggregated
    /// accelerators): ~20 µs one-way and 10 GbE-class bandwidth.
    pub const fn network() -> Self {
        CostModel {
            sender_overhead: Duration::from_micros(3),
            delivery_latency: Duration::from_micros(20),
            bytes_per_sec: Some(1_250_000_000),
        }
    }

    /// Time the payload occupies the link.
    pub fn serialization_delay(&self, payload_bytes: usize) -> Duration {
        match self.bytes_per_sec {
            Some(bw) if bw > 0 => {
                let nanos = (payload_bytes as u128).saturating_mul(1_000_000_000) / u128::from(bw);
                Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
            }
            _ => Duration::ZERO,
        }
    }

    /// The instant at which a message sent *now* with `payload_bytes` of
    /// payload becomes visible to the receiver.
    pub fn deliver_at(&self, now: Instant, payload_bytes: usize) -> Instant {
        now + self.delivery_latency + self.serialization_delay(payload_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::free()
    }
}

/// Waits until `deadline` without monopolizing a core.
///
/// The modelled latencies are single-digit microseconds; OS sleep
/// granularity is far coarser, so short waits spin and long waits sleep.
/// The spin window covers every built-in model's crossing latency on
/// purpose: yielding instead would hand the core to another thread for a
/// full scheduling quantum (milliseconds under load — a 100×+ overshoot
/// of the modelled cost), which both distorts the model and makes
/// forwarding throughput hostage to scheduler luck on small machines.
pub fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else if remaining > Duration::from_micros(25) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_adds_nothing() {
        let m = CostModel::free();
        let now = Instant::now();
        assert_eq!(m.deliver_at(now, 1 << 20), now);
        assert_eq!(m.serialization_delay(usize::MAX), Duration::ZERO);
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let m = CostModel {
            bytes_per_sec: Some(1_000_000_000),
            ..CostModel::free()
        };
        assert_eq!(m.serialization_delay(0), Duration::ZERO);
        assert_eq!(m.serialization_delay(1_000_000), Duration::from_millis(1));
        assert!(m.serialization_delay(100) < m.serialization_delay(1_000_000));
    }

    #[test]
    fn paravirtual_is_cheaper_than_network() {
        let pv = CostModel::paravirtual();
        let net = CostModel::network();
        assert!(pv.delivery_latency < net.delivery_latency);
        assert!(pv.bytes_per_sec.unwrap() > net.bytes_per_sec.unwrap());
    }

    #[test]
    fn wait_until_blocks_roughly_right() {
        let start = Instant::now();
        wait_until(start + Duration::from_micros(200));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(200));
        assert!(
            elapsed < Duration::from_millis(50),
            "overslept: {elapsed:?}"
        );
    }

    #[test]
    fn zero_bandwidth_is_treated_as_unbounded() {
        let m = CostModel {
            bytes_per_sec: Some(0),
            ..CostModel::free()
        };
        assert_eq!(m.serialization_delay(1234), Duration::ZERO);
    }
}
