//! The invocation router (§4.1, §4.3).
//!
//! The router is the hypervisor-resident component that restores
//! *interposition* to API remoting: every forwarded call crosses a
//! hypervisor-owned transport, where the router verifies it, applies
//! resource policies (rate limiting, scheduling, quotas) and only then
//! hands it to the per-VM API server. Replies flow back the same way.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_spec::ApiDescriptor;
use ava_telemetry::{Counter, Gauge, Stage, Telemetry};
use ava_transport::{BoxedTransport, TransportError};
use ava_wire::{CallMode, CallReply, CallRequest, ControlMessage, Message, ReplyStatus, VmId};
use crossbeam::channel::{Receiver, Sender, TryRecvError};

use crate::policy::{SchedulerKind, VmPolicy};

/// Per-VM counters exposed by the router.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VmStats {
    /// Calls forwarded to the API server.
    pub forwarded: u64,
    /// Calls rejected by policy.
    pub rejected: u64,
    /// Replies returned to the guest.
    pub replies: u64,
    /// Guest→host payload bytes seen.
    pub bytes_in: u64,
    /// Host→guest payload bytes seen.
    pub bytes_out: u64,
    /// Guest→host payload bytes that never crossed the transport because
    /// the transfer cache elided them (`bytes_in` counts only what moved,
    /// so interposition-level accounting stays truthful).
    pub bytes_elided: u64,
    /// Buffer arguments that arrived as `CachedBytes` digests.
    pub cache_hits: u64,
    /// `CacheMiss` NACKs relayed back to the guest.
    pub cache_misses: u64,
    /// Estimated device time consumed, in microseconds (from the spec's
    /// `resource(device_time_us, ...)` annotations).
    pub est_device_time_us: f64,
    /// Estimated device memory allocated, in bytes (cumulative; §4.3's
    /// usage approximations are deliberately coarse).
    pub est_device_mem: f64,
    /// Calls currently forwarded but not yet answered.
    pub outstanding: u64,
    /// Sync calls answered with [`ReplyStatus::Unavailable`] because the
    /// lane's server is permanently gone.
    pub unavailable_replies: u64,
}

/// Registry-shareable storage behind [`VmStats`]: the router mutates these
/// shared atomics, and a telemetry [`ava_telemetry::Registry`] (when
/// attached) sees the very same cells under `router.vm<N>.*` names.
#[derive(Default)]
struct VmMetrics {
    forwarded: Counter,
    rejected: Counter,
    replies: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    bytes_elided: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    outstanding: Counter,
    unavailable_replies: Counter,
    est_device_time_us: Gauge,
    est_device_mem: Gauge,
}

impl VmMetrics {
    fn snapshot(&self) -> VmStats {
        VmStats {
            forwarded: self.forwarded.get(),
            rejected: self.rejected.get(),
            replies: self.replies.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            bytes_elided: self.bytes_elided.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            est_device_time_us: self.est_device_time_us.get(),
            est_device_mem: self.est_device_mem.get(),
            outstanding: self.outstanding.get(),
            unavailable_replies: self.unavailable_replies.get(),
        }
    }

    fn register_into(&self, telemetry: &Telemetry) {
        let Some(registry) = telemetry.registry() else {
            return;
        };
        let vm = telemetry.vm();
        let c = |name: &str, cell: &Counter| {
            registry.register_counter(&format!("router.vm{vm}.{name}"), cell);
        };
        c("forwarded", &self.forwarded);
        c("rejected", &self.rejected);
        c("replies", &self.replies);
        c("bytes_in", &self.bytes_in);
        c("bytes_out", &self.bytes_out);
        c("bytes_elided", &self.bytes_elided);
        c("cache_hits", &self.cache_hits);
        c("cache_misses", &self.cache_misses);
        c("outstanding", &self.outstanding);
        c("unavailable_replies", &self.unavailable_replies);
        registry.register_gauge(
            &format!("router.vm{vm}.est_device_time_us"),
            &self.est_device_time_us,
        );
        registry.register_gauge(
            &format!("router.vm{vm}.est_device_mem"),
            &self.est_device_mem,
        );
    }
}

/// Commands sent to the router thread.
pub enum RouterCmd {
    /// Attach a VM: its guest-side and server-side transports plus policy.
    AddVm {
        /// VM identifier.
        vm_id: VmId,
        /// Router end of the guest channel.
        guest: BoxedTransport,
        /// Router end of the server channel.
        server: BoxedTransport,
        /// Resource policy for this VM.
        policy: VmPolicy,
        /// Device-pool slot this VM's server is bound to, if the stack
        /// runs a shared pool. Lanes on the same slot share the slot's
        /// in-flight budget ([`RouterConfig::slot_inflight`]).
        slot: Option<usize>,
    },
    /// Stop forwarding guest→server traffic for a VM (replies still pump).
    Pause(VmId),
    /// Resume a paused VM.
    Resume(VmId),
    /// Remove a VM entirely.
    Remove(VmId),
    /// Replace a lane's server-side transport after the supervisor
    /// respawned a crashed API server. Clears any down/unavailable state;
    /// queued calls start flowing to the new server.
    ReattachServer {
        /// VM identifier.
        vm_id: VmId,
        /// Router end of the new server channel.
        server: BoxedTransport,
    },
    /// Declare a VM's server permanently gone: queued and future sync
    /// calls are answered with [`ReplyStatus::Unavailable`] immediately
    /// instead of waiting on a reply that can never come.
    MarkUnavailable(VmId),
    /// Rebind a lane to a different device-pool slot (used by live
    /// rebalancing, after the VM's server was migrated onto the
    /// destination slot's device).
    SetSlot {
        /// VM identifier.
        vm_id: VmId,
        /// New slot, or `None` to detach the lane from pool accounting.
        slot: Option<usize>,
    },
    /// Query statistics.
    Stats(VmId, Sender<Option<VmStats>>),
    /// Attach a telemetry registry: per-VM counters register under
    /// `router.vm<N>.*` and sync calls get Queued/Forwarded/Replied span
    /// stamps. Applies to existing lanes and any added later.
    SetTelemetry(Telemetry),
    /// Stop the router.
    Shutdown,
}

/// Shared scheduling state for one device-pool slot, maintained
/// incrementally on the ingest/forward/reply paths. Admission checks and
/// the `pool.slot<N>.queue_depth` gauge are O(1) atomic reads — the
/// pre-overhaul router instead rebuilt a HashMap of slot budgets on every
/// scheduling pick and rescanned every lane per loop iteration to refresh
/// the gauges.
#[derive(Default)]
struct SlotEntry {
    /// Sync calls forwarded and unanswered across the slot's lanes (the
    /// quantity [`RouterConfig::slot_inflight`] bounds).
    outstanding: Counter,
    /// Queued (ingested, not yet forwarded) calls across the slot's
    /// lanes; registered directly as the slot's queue-depth gauge, so
    /// there is no separate refresh pass.
    depth: Gauge,
}

#[derive(Default)]
struct SlotTable {
    slots: Vec<SlotEntry>,
}

impl SlotTable {
    /// The entry for `slot`, growing the table (and registering new
    /// gauges) on first sight of a slot index.
    fn entry(&mut self, slot: usize, telemetry: &Telemetry) -> &SlotEntry {
        while self.slots.len() <= slot {
            let e = SlotEntry::default();
            if let Some(registry) = telemetry.registry() {
                registry.register_gauge(
                    &format!("pool.slot{}.queue_depth", self.slots.len()),
                    &e.depth,
                );
            }
            self.slots.push(e);
        }
        &self.slots[slot]
    }

    fn get(&self, slot: usize) -> Option<&SlotEntry> {
        self.slots.get(slot)
    }

    /// Re-registers every slot gauge (after telemetry attaches late).
    fn register_all(&self, telemetry: &Telemetry) {
        if let Some(registry) = telemetry.registry() {
            for (s, e) in self.slots.iter().enumerate() {
                registry.register_gauge(&format!("pool.slot{s}.queue_depth"), &e.depth);
            }
        }
    }

    /// Adjusts a slot's queued-call depth by `delta`.
    fn add_depth(&mut self, slot: Option<usize>, delta: f64, telemetry: &Telemetry) {
        if let Some(s) = slot {
            self.entry(s, telemetry).depth.add(delta);
        }
    }

    /// Removes `n` from a slot's outstanding count (server reattach or
    /// give-up: the lane's in-flight calls died with the old server).
    fn release_outstanding(&mut self, slot: Option<usize>, n: u64, telemetry: &Telemetry) {
        if let Some(s) = slot {
            let entry = self.entry(s, telemetry);
            for _ in 0..n {
                entry.outstanding.dec_saturating();
            }
        }
    }
}

struct Lane {
    vm_id: VmId,
    guest: BoxedTransport,
    server: BoxedTransport,
    policy: VmPolicy,
    queue: VecDeque<CallRequest>,
    /// Device-pool slot the lane's server is bound to; `None` when the VM
    /// has a private device (the pre-pool topology).
    slot: Option<usize>,
    paused: bool,
    closed: bool,
    /// The server transport failed; forwarding is suspended until the
    /// supervisor either reattaches a respawned server or gives up.
    server_down: bool,
    /// The supervisor gave up on this lane's server: answer sync calls
    /// with `Unavailable` instead of queueing them.
    unavailable: bool,
    metrics: VmMetrics,
    telemetry: Telemetry,
}

/// Router configuration.
pub struct RouterConfig {
    /// Scheduling algorithm across VMs.
    pub scheduler: SchedulerKind,
    /// Descriptor used to evaluate resource-cost annotations; `None`
    /// disables cost estimation (all calls cost 1).
    pub descriptor: Option<Arc<ApiDescriptor>>,
    /// Maximum calls forwarded per scheduling round (keeps reply pumping
    /// responsive under load).
    pub max_forward_per_round: usize,
    /// Maximum sync calls in flight per device-pool slot, across every
    /// lane bound to that slot. Small values keep the scheduler in
    /// control (a slot's device serializes anyway — deep server-side
    /// queues would just launder scheduling decisions made early); must
    /// be ≥ 1 or a pooled slot could never forward at all.
    pub slot_inflight: usize,
    /// Maximum consecutive same-lane calls coalesced into one
    /// router→server frame. Async calls coalesce freely; sync calls stay
    /// bounded by the slot in-flight budget. 1 restores call-at-a-time
    /// forwarding.
    pub forward_batch_max: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            scheduler: SchedulerKind::Fifo,
            descriptor: None,
            max_forward_per_round: 64,
            slot_inflight: 2,
            forward_batch_max: 32,
        }
    }
}

/// Runs the router loop until [`RouterCmd::Shutdown`].
pub fn run_router(config: RouterConfig, cmds: Receiver<RouterCmd>) {
    let mut lanes: Vec<Lane> = Vec::new();
    let mut telemetry = Telemetry::disabled();
    let mut rr_cursor = 0usize; // round-robin start position
    let mut idle_spins = 0u32;
    // Shared per-slot scheduling state: in-flight budgets and the
    // router-owned `pool.slot<N>.queue_depth` gauges, both maintained
    // incrementally instead of recomputed by scans.
    let mut slots = SlotTable::default();

    loop {
        let mut progressed = false;

        // 1. Process control-plane commands.
        loop {
            let cmd = match cmds.try_recv() {
                Ok(cmd) => cmd,
                Err(TryRecvError::Empty) => break,
                // The command sender was dropped without an explicit
                // Shutdown (the owning stack died): exit instead of
                // routing for nobody, forever.
                Err(TryRecvError::Disconnected) => return,
            };
            progressed = true;
            match cmd {
                RouterCmd::AddVm {
                    vm_id,
                    guest,
                    server,
                    policy,
                    slot,
                } => {
                    let metrics = VmMetrics::default();
                    let lane_telemetry = telemetry.with_vm(vm_id);
                    metrics.register_into(&lane_telemetry);
                    if let Some(s) = slot {
                        // Materialize the slot entry (and its gauge) up
                        // front so an idle slot still reads zero.
                        let _ = slots.entry(s, &telemetry);
                    }
                    lanes.push(Lane {
                        vm_id,
                        guest,
                        server,
                        policy,
                        queue: VecDeque::new(),
                        slot,
                        paused: false,
                        closed: false,
                        server_down: false,
                        unavailable: false,
                        metrics,
                        telemetry: lane_telemetry,
                    });
                }
                RouterCmd::Pause(id) => {
                    if let Some(lane) = lanes.iter_mut().find(|l| l.vm_id == id) {
                        lane.paused = true;
                    }
                }
                RouterCmd::Resume(id) => {
                    if let Some(lane) = lanes.iter_mut().find(|l| l.vm_id == id) {
                        lane.paused = false;
                    }
                }
                RouterCmd::Remove(id) => {
                    if let Some(lane) = lanes.iter().find(|l| l.vm_id == id) {
                        slots.add_depth(lane.slot, -(lane.queue.len() as f64), &telemetry);
                        slots.release_outstanding(
                            lane.slot,
                            lane.metrics.outstanding.get(),
                            &telemetry,
                        );
                    }
                    lanes.retain(|l| l.vm_id != id);
                }
                RouterCmd::ReattachServer { vm_id, server } => {
                    if let Some(lane) = lanes.iter_mut().find(|l| l.vm_id == vm_id) {
                        lane.server = server;
                        lane.server_down = false;
                        lane.unavailable = false;
                        // In-flight replies died with the old server. Reset
                        // the outstanding count or the lane's slot would be
                        // charged for calls that can never complete —
                        // starving its slot-mates under the in-flight cap.
                        let stale = lane.metrics.outstanding.take();
                        slots.release_outstanding(lane.slot, stale, &telemetry);
                    }
                }
                RouterCmd::MarkUnavailable(id) => {
                    if let Some(lane) = lanes.iter_mut().find(|l| l.vm_id == id) {
                        lane.unavailable = true;
                        lane.server_down = true;
                        let stale = lane.metrics.outstanding.take();
                        slots.release_outstanding(lane.slot, stale, &telemetry);
                        fail_queued_unavailable(lane, &mut slots, &telemetry);
                    }
                }
                RouterCmd::SetSlot { vm_id, slot } => {
                    if let Some(lane) = lanes.iter_mut().find(|l| l.vm_id == vm_id) {
                        // Move the lane's queued and in-flight charges to
                        // the destination slot's cells.
                        let depth = lane.queue.len() as f64;
                        let outstanding = lane.metrics.outstanding.get();
                        slots.add_depth(lane.slot, -depth, &telemetry);
                        slots.release_outstanding(lane.slot, outstanding, &telemetry);
                        lane.slot = slot;
                        slots.add_depth(lane.slot, depth, &telemetry);
                        if let Some(s) = lane.slot {
                            slots.entry(s, &telemetry).outstanding.add(outstanding);
                        }
                    }
                }
                RouterCmd::Stats(id, reply) => {
                    let stats = lanes
                        .iter()
                        .find(|l| l.vm_id == id)
                        .map(|l| l.metrics.snapshot());
                    let _ = reply.send(stats);
                }
                RouterCmd::SetTelemetry(t) => {
                    telemetry = t;
                    for lane in lanes.iter_mut() {
                        lane.telemetry = telemetry.with_vm(lane.vm_id);
                        lane.metrics.register_into(&lane.telemetry);
                    }
                    slots.register_all(&telemetry);
                }
                RouterCmd::Shutdown => return,
            }
        }

        // 2. Ingest guest traffic into per-lane queues.
        for lane in lanes.iter_mut() {
            if lane.closed {
                continue;
            }
            loop {
                match lane.guest.try_recv() {
                    Ok(Some(Message::Call(req))) => {
                        ingest_request(lane, req, &mut slots, &telemetry);
                        progressed = true;
                    }
                    Ok(Some(Message::Batch(reqs))) => {
                        // Batched calls get the same per-call accounting
                        // and span stamps as singly-sent ones: the batch is
                        // a transport framing detail, not a different kind
                        // of traffic.
                        for req in reqs {
                            ingest_request(lane, req, &mut slots, &telemetry);
                        }
                        progressed = true;
                    }
                    Ok(Some(Message::Control(ControlMessage::Ping(v)))) => {
                        // The router itself answers liveness probes — a
                        // visible demonstration of interposition.
                        let _ = lane.guest.send(&Message::Control(ControlMessage::Pong(v)));
                        progressed = true;
                    }
                    Ok(Some(Message::Control(hb @ ControlMessage::Heartbeat(_)))) => {
                        // Heartbeats probe the *server*, not the router:
                        // forward them through so the ack round-trips the
                        // whole lane (the reply pump relays the ack back).
                        if lane.server.send(&Message::Control(hb)).is_err() {
                            lane.server_down = true;
                        }
                        progressed = true;
                    }
                    Ok(Some(Message::Control(ControlMessage::Shutdown))) => {
                        lane.closed = true;
                        let _ = lane
                            .server
                            .send(&Message::Control(ControlMessage::Shutdown));
                        progressed = true;
                        break;
                    }
                    Ok(Some(other)) => {
                        // Unexpected traffic from a guest (e.g. a Reply) is
                        // dropped after note-taking; guests cannot inject
                        // server-bound control this way.
                        let _ = other;
                        progressed = true;
                    }
                    Ok(None) => break,
                    Err(TransportError::Closed) => {
                        lane.closed = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }

        // 3. Scheduling rounds: pick an admissible lane, then forward a
        // run of consecutive calls from its queue as ONE router→server
        // frame. Async calls coalesce freely; sync calls are bounded by
        // the slot's in-flight budget and the lane's rate limit admits
        // each member individually. One frame per run means one modelled
        // doorbell (sender overhead) per run instead of per call.
        let config_sched = config.scheduler;
        let slot_inflight = config.slot_inflight.max(1);
        let run_max = config.forward_batch_max.max(1);
        let mut forwarded_round = 0usize;
        while forwarded_round < config.max_forward_per_round {
            let now = Instant::now();
            let candidate = pick_lane(
                &mut lanes,
                config_sched,
                rr_cursor,
                now,
                slot_inflight,
                &slots,
            );
            let Some(idx) = candidate else { break };
            rr_cursor = (idx + 1).max(1) % lanes.len().max(1);
            let lane = &mut lanes[idx];
            progressed = true;

            // Sync calls admitted into this run beyond what the slot's
            // in-flight budget already allows would launder the cap.
            let mut sync_budget = match lane.slot {
                Some(s) => (slot_inflight as u64)
                    .saturating_sub(slots.entry(s, &telemetry).outstanding.get()),
                None => u64::MAX,
            };
            let take_cap = run_max.min(config.max_forward_per_round - forwarded_round);
            let mut outgoing: Vec<CallRequest> = Vec::new();
            while outgoing.len() < take_cap {
                let Some(front) = lane.queue.front() else {
                    break;
                };
                let is_sync = front.mode == CallMode::Sync;
                if is_sync && sync_budget == 0 {
                    break;
                }
                // The first member was admitted by pick_lane; each
                // additional one spends its own rate-limit token.
                if !outgoing.is_empty() {
                    if let Some(rl) = &mut lane.policy.rate_limit {
                        if !rl.try_admit_at(now) {
                            break;
                        }
                    }
                }
                let req = lane.queue.pop_front().expect("front checked");
                slots.add_depth(lane.slot, -1.0, &telemetry);

                // Verify and cost-account against the API descriptor.
                let mut reject = false;
                if let Some(desc) = &config.descriptor {
                    match desc.by_id(req.fn_id) {
                        Some(func) if func.resources.is_empty() => {}
                        Some(func) => {
                            let env = desc.env_for(func, &req.args);
                            for res in &func.resources {
                                if let Ok(v) = res.amount.eval(&env, &desc.types) {
                                    match res.resource.as_str() {
                                        "device_time_us" => {
                                            lane.metrics.est_device_time_us.add(v as f64)
                                        }
                                        "device_mem" => lane.metrics.est_device_mem.add(v as f64),
                                        _ => {}
                                    }
                                }
                            }
                            // Device-memory quotas are enforced at the
                            // server (it owns the authoritative residency
                            // accounting, including swapped bytes); the
                            // router only keeps the cost estimates.
                        }
                        None => reject = true, // unknown function id: refuse
                    }
                }

                if reject {
                    lane.metrics.rejected.inc();
                    if req.mode == CallMode::Sync {
                        lane.telemetry
                            .span_stage_deferred(req.call_id, Stage::Replied, None);
                    }
                    let reply = CallReply {
                        call_id: req.call_id,
                        status: ReplyStatus::PolicyRejected,
                        ret: ava_wire::Value::Unit,
                        outputs: vec![],
                    };
                    let _ = lane.guest.send(&Message::Reply(reply));
                    continue;
                }
                if is_sync {
                    sync_budget -= 1;
                }
                outgoing.push(req);
            }
            if outgoing.is_empty() {
                // Everything popped this pick was rejected by policy.
                continue;
            }
            forwarded_round += outgoing.len();

            // Stamp Forwarded before the send: the modelled sender
            // overhead means the server could otherwise execute (and
            // stamp) before this thread resumes. A failed send leaves a
            // harmless early stamp — the requeued call overwrites it when
            // it is actually forwarded. Stamps ride the lock-free
            // deferred intake: no mutex on the forwarding path.
            let mut sync_count = 0u64;
            for req in &outgoing {
                if req.mode == CallMode::Sync {
                    sync_count += 1;
                    lane.telemetry
                        .span_stage_deferred(req.call_id, Stage::Forwarded, None);
                }
            }
            let msg = if outgoing.len() == 1 {
                Message::Call(outgoing.pop().expect("len checked"))
            } else {
                Message::Batch(outgoing)
            };
            match lane.server.send(&msg) {
                Ok(()) => {
                    let n = match &msg {
                        Message::Batch(reqs) => reqs.len() as u64,
                        _ => 1,
                    };
                    lane.metrics.forwarded.add(n);
                    // Async calls are fire-and-forget: the server only
                    // replies on failure, so they are not tracked as
                    // outstanding.
                    lane.metrics.outstanding.add(sync_count);
                    if let Some(s) = lane.slot {
                        slots.entry(s, &telemetry).outstanding.add(sync_count);
                    }
                }
                Err(_) => {
                    // The run never reached the server: requeue it at the
                    // front in order (nothing newer was forwarded, so
                    // order is preserved) and suspend the lane for the
                    // supervisor to reattach or fail it.
                    lane.server_down = true;
                    let reqs = match msg {
                        Message::Call(req) => vec![req],
                        Message::Batch(reqs) => reqs,
                        _ => unreachable!("runs are Call or Batch frames"),
                    };
                    for req in reqs.into_iter().rev() {
                        slots.add_depth(lane.slot, 1.0, &telemetry);
                        lane.queue.push_front(req);
                    }
                }
            }
        }

        // 4. Pump replies server→guest.
        for lane in lanes.iter_mut() {
            if lane.server_down {
                // Nothing to pump, and re-polling a dead transport would
                // re-report the failure every round (a busy spin).
                continue;
            }
            loop {
                match lane.server.try_recv() {
                    Ok(Some(Message::Reply(rep))) => {
                        lane.metrics.replies.inc();
                        let prev = lane.metrics.outstanding.get();
                        lane.metrics.outstanding.dec_saturating();
                        if prev > 0 {
                            if let Some(s) = lane.slot {
                                slots.entry(s, &telemetry).outstanding.dec_saturating();
                            }
                        }
                        lane.metrics.bytes_out.add(rep.payload_bytes() as u64);
                        if rep.status == ReplyStatus::CacheMiss {
                            lane.metrics.cache_misses.inc();
                        }
                        // Deferred stamp, pushed before the relay below:
                        // the guest's GuestEnd fold is therefore
                        // guaranteed to see it.
                        lane.telemetry
                            .span_stage_deferred(rep.call_id, Stage::Replied, None);
                        let _ = lane.guest.send(&Message::Reply(rep));
                        progressed = true;
                    }
                    Ok(Some(other)) => {
                        let _ = lane.guest.send(&other);
                        progressed = true;
                    }
                    Ok(None) => break,
                    Err(e) if e.is_failure() => {
                        // The server vanished abruptly; any in-flight
                        // replies are gone. Suspend forwarding and let the
                        // supervisor decide between reattach and giving up.
                        lane.server_down = true;
                        progressed = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }

        // (Per-slot queue-depth gauges need no refresh pass: the slot
        // table's depth cells ARE the registered gauges, updated at each
        // ingest and forward.)

        // 5. Idle backoff: escalate toward 1 ms sleeps so an idle router
        // does not burn a core (which would perturb co-located work), at
        // the price of up to ~1 ms extra latency on the first call after
        // an idle period.
        if progressed {
            idle_spins = 0;
        } else {
            idle_spins = (idle_spins + 1).min(30);
            if idle_spins > 3 {
                std::thread::sleep(Duration::from_micros(u64::from(idle_spins) * 10));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Ingests one guest call into a lane's queue with uniform per-call
/// accounting: moved and elided byte counts, cache-hit counting, and the
/// `Queued` span stamp for sync calls (batched or not). Only sync calls
/// carry spans: async successes are reply-suppressed, so their spans could
/// never complete.
fn ingest_request(lane: &mut Lane, req: CallRequest, slots: &mut SlotTable, telemetry: &Telemetry) {
    if lane.unavailable {
        // The server is permanently gone. Answering immediately — rather
        // than queueing toward a reply that can never come — is what
        // bounds the guest's failure latency to its own deadline instead
        // of a full retry budget.
        fail_unavailable(lane, &req);
        return;
    }
    lane.metrics.bytes_in.add(req.payload_bytes() as u64);
    lane.metrics.bytes_elided.add(req.elided_bytes() as u64);
    lane.metrics.cache_hits.add(req.cached_count() as u64);
    if req.mode == CallMode::Sync {
        lane.telemetry
            .span_stage_deferred(req.call_id, Stage::Queued, None);
    }
    slots.add_depth(lane.slot, 1.0, telemetry);
    lane.queue.push_back(req);
}

/// Answers one call with [`ReplyStatus::Unavailable`] (sync calls only —
/// async calls are fire-and-forget and simply dropped; the guest learns of
/// the failure on its next sync call at the latest).
fn fail_unavailable(lane: &mut Lane, req: &CallRequest) {
    if req.mode != CallMode::Sync {
        return;
    }
    lane.metrics.unavailable_replies.inc();
    lane.telemetry
        .span_stage_deferred(req.call_id, Stage::Replied, None);
    let reply = CallReply {
        call_id: req.call_id,
        status: ReplyStatus::Unavailable,
        ret: ava_wire::Value::Unit,
        outputs: vec![],
    };
    let _ = lane.guest.send(&Message::Reply(reply));
}

/// Fails every queued call on a lane whose server was declared gone.
fn fail_queued_unavailable(lane: &mut Lane, slots: &mut SlotTable, telemetry: &Telemetry) {
    while let Some(req) = lane.queue.pop_front() {
        slots.add_depth(lane.slot, -1.0, telemetry);
        fail_unavailable(lane, &req);
    }
}

/// Picks the next lane to service, honouring pause state, rate limits,
/// per-slot in-flight budgets and the configured scheduler. Returns an
/// index into `lanes`. Slot budgets are O(1) atomic reads against the
/// incrementally-maintained slot table — no per-pick scan.
fn pick_lane(
    lanes: &mut [Lane],
    scheduler: SchedulerKind,
    rr_cursor: usize,
    now: Instant,
    slot_inflight: usize,
    slots: &SlotTable,
) -> Option<usize> {
    let n = lanes.len();
    if n == 0 {
        return None;
    }
    let slot_free = |slot: Option<usize>| -> bool {
        slot.is_none_or(|s| {
            slots
                .get(s)
                .map(|e| e.outstanding.get() < slot_inflight as u64)
                .unwrap_or(true)
        })
    };
    let ready = |lane: &Lane| -> bool {
        !lane.paused
            && !lane.closed
            && !lane.server_down
            && !lane.queue.is_empty()
            && slot_free(lane.slot)
    };
    let admissible = |lane: &mut Lane, now: Instant| -> bool {
        if !(!lane.paused
            && !lane.closed
            && !lane.server_down
            && !lane.queue.is_empty()
            && slot_free(lane.slot))
        {
            return false;
        }
        match &mut lane.policy.rate_limit {
            Some(rl) => rl.try_admit_at(now),
            None => true,
        }
    };
    match scheduler {
        SchedulerKind::Fifo => {
            // Round-robin across lanes; FIFO within a lane.
            for off in 0..n {
                let idx = (rr_cursor + off) % n;
                if admissible(&mut lanes[idx], now) {
                    return Some(idx);
                }
            }
            None
        }
        SchedulerKind::FairShare => {
            // Least weighted estimated device time first. Device-time
            // estimates accumulate per lane, so on a shared slot this
            // arbitrates real device occupancy between slot-mates.
            let mut best: Option<(usize, f64)> = None;
            for (idx, lane) in lanes.iter().enumerate() {
                if !ready(lane) {
                    continue;
                }
                let score =
                    lane.metrics.est_device_time_us.get() / f64::from(lane.policy.weight.max(1));
                if best.map(|(_, s)| score < s).unwrap_or(true) {
                    best = Some((idx, score));
                }
            }
            let (idx, _) = best?;
            if admissible(&mut lanes[idx], now) {
                Some(idx)
            } else {
                None
            }
        }
        SchedulerKind::Priority => {
            let mut best: Option<(usize, u8)> = None;
            for (idx, lane) in lanes.iter().enumerate() {
                if !ready(lane) {
                    continue;
                }
                let p = lane.policy.priority;
                if best.map(|(_, bp)| p > bp).unwrap_or(true) {
                    best = Some((idx, p));
                }
            }
            let (idx, _) = best?;
            if admissible(&mut lanes[idx], now) {
                Some(idx)
            } else {
                None
            }
        }
    }
}
