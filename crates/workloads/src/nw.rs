//! `nw` — Rodinia's Needleman-Wunsch sequence alignment. The scoring
//! matrix is filled along anti-diagonals, one kernel launch per diagonal:
//! `2N - 1` launches of small kernels, the classic chatty-GPU pattern.

use simcl::kernels::KernelRegistry;
use simcl::mem::{as_i32, as_i32_mut};
use simcl::types::KernelArg;
use simcl::ClApi;

use crate::harness::{ClWorkload, Result, Scale, Session, WorkloadError, XorShift};

/// OpenCL C source.
pub const SOURCE: &str = r#"
__kernel void nw_diagonal(__global int *score,
                          __global const int *reference,
                          const int n, const int diag, const int penalty) {
    int k = get_global_id(0);
    int i = (diag < n) ? (diag - k) : (n - 1 - k);
    int j = (diag < n) ? k : (diag - n + 1 + k);
    if (i >= 1 && i < n && j >= 1 && j < n) {
        int up = score[(i - 1) * n + j] - penalty;
        int left = score[i * n + (j - 1)] - penalty;
        int upleft = score[(i - 1) * n + (j - 1)] + reference[i * n + j];
        int best = upleft > up ? upleft : up;
        score[i * n + j] = best > left ? best : left;
    }
}
"#;

/// The Needleman-Wunsch workload.
pub struct Nw {
    n: usize,
    penalty: i32,
}

impl Nw {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Nw { n: 48, penalty: 10 },
            Scale::Bench => Nw {
                n: 2048,
                penalty: 10,
            },
        }
    }

    fn reference_matrix(&self) -> Vec<i32> {
        let n = self.n;
        let mut rng = XorShift::new(0x9999);
        // BLOSUM-like random similarity scores in [-4, 6].
        (0..n * n)
            .map(|_| (rng.next_below(11) as i32) - 4)
            .collect()
    }

    fn initial_score(&self) -> Vec<i32> {
        let n = self.n;
        let mut score = vec![0i32; n * n];
        for i in 0..n {
            score[i * n] = -(i as i32) * self.penalty;
            score[i] = -(i as i32) * self.penalty;
        }
        score
    }

    fn cpu_solve(&self, reference: &[i32]) -> Vec<i32> {
        let n = self.n;
        let mut score = self.initial_score();
        for i in 1..n {
            for j in 1..n {
                let up = score[(i - 1) * n + j] - self.penalty;
                let left = score[i * n + (j - 1)] - self.penalty;
                let upleft = score[(i - 1) * n + (j - 1)] + reference[i * n + j];
                score[i * n + j] = upleft.max(up).max(left);
            }
        }
        score
    }
}

impl ClWorkload for Nw {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn register(&self, registry: &KernelRegistry) {
        registry.register_fn("nw_diagonal", |inv| {
            let n = inv.scalar_i32(2)? as usize;
            let diag = inv.scalar_i32(3)? as i64;
            let penalty = inv.scalar_i32(4)?;
            let work_items = inv.global[0];
            let [score, reference] = inv.bufs([0, 1])?;
            let reference = as_i32(reference);
            let score = as_i32_mut(score);
            for k in 0..work_items {
                let (i, j) = if diag < n as i64 {
                    (diag - k as i64, k as i64)
                } else {
                    (n as i64 - 1 - k as i64, diag - n as i64 + 1 + k as i64)
                };
                if i >= 1 && (i as usize) < n && j >= 1 && (j as usize) < n {
                    let (i, j) = (i as usize, j as usize);
                    let up = score[(i - 1) * n + j] - penalty;
                    let left = score[i * n + (j - 1)] - penalty;
                    let upleft = score[(i - 1) * n + (j - 1)] + reference[i * n + j];
                    score[i * n + j] = upleft.max(up).max(left);
                }
            }
            Ok(())
        });
    }

    fn run(&self, api: &dyn ClApi) -> Result<f64> {
        let n = self.n;
        let reference = self.reference_matrix();
        let mut session = Session::open(api)?;
        session.build(SOURCE)?;
        let kernel = session.kernel("nw_diagonal")?;

        let b_score = session.buffer_i32(&self.initial_score())?;
        let b_ref = session.buffer_i32(&reference)?;

        // One launch per anti-diagonal.
        for diag in 1..(2 * n - 1) {
            let work = if diag < n { diag + 1 } else { 2 * n - 1 - diag };
            session.set_args(
                kernel,
                &[
                    KernelArg::Mem(b_score),
                    KernelArg::Mem(b_ref),
                    KernelArg::from_i32(n as i32),
                    KernelArg::from_i32(diag as i32),
                    KernelArg::from_i32(self.penalty),
                ],
            )?;
            session.run_1d(kernel, work)?;
        }
        session.finish()?;

        let score = session.read_i32(b_score, n * n)?;
        let expected = self.cpu_solve(&reference);
        if score != expected {
            return Err(WorkloadError::Validation("score matrix mismatch".into()));
        }
        let checksum = f64::from(score[n * n - 1]);

        session.release(b_score)?;
        session.release(b_ref)?;
        session.close()?;
        Ok(checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn nw_matches_cpu_dp() {
        let wl = Nw::new(Scale::Test);
        let registry = Arc::new(KernelRegistry::new());
        wl.register(&registry);
        let cl =
            simcl::SimCl::with_devices_and_registry(vec![simcl::DeviceConfig::default()], registry);
        assert!(wl.run(&cl).unwrap().is_finite());
    }
}
