//! The OpenCL guest library: a CAvA-generated client that implements the
//! same [`ClApi`] trait as the native silo, but forwards every call through
//! the AvA stack. Swapping `SimCl` for [`OpenClClient`] is all it takes to
//! virtualize an application — the property Figure 5 relies on.

use std::sync::Arc;

use ava_guest::{CallResult, GuestLibrary};
use ava_wire::Value;
use simcl::status::{ClError, ClResult, CL_OUT_OF_RESOURCES, CL_SUCCESS};
use simcl::types::*;
use simcl::ClApi;

/// Info-query parameter codes (mirrors `specs/CL/cl.h`).
mod code {
    pub const CL_PLATFORM_VERSION: u32 = 0x0901;
    pub const CL_PLATFORM_NAME: u32 = 0x0902;
    pub const CL_PLATFORM_VENDOR: u32 = 0x0903;
    pub const CL_DEVICE_NAME: u32 = 0x102B;
    pub const CL_DEVICE_VENDOR: u32 = 0x102C;
    pub const CL_DEVICE_MAX_COMPUTE_UNITS: u32 = 0x1002;
    pub const CL_DEVICE_MAX_WORK_GROUP_SIZE: u32 = 0x1004;
    pub const CL_DEVICE_GLOBAL_MEM_SIZE: u32 = 0x101F;
    pub const CL_DEVICE_LOCAL_MEM_SIZE: u32 = 0x1023;
    pub const CL_DEVICE_TYPE_INFO: u32 = 0x1000;
    pub const CL_DEVICE_TYPE_GPU: u64 = 1 << 2;
    pub const CL_DEVICE_TYPE_ACCELERATOR: u64 = 1 << 3;
    pub const CL_DEVICE_TYPE_ALL: u64 = 0xFFFF_FFFF;
    pub const CL_PROFILING_COMMAND_QUEUED: u32 = 0x1280;
    pub const CL_PROFILING_COMMAND_SUBMIT: u32 = 0x1281;
    pub const CL_PROFILING_COMMAND_START: u32 = 0x1282;
    pub const CL_PROFILING_COMMAND_END: u32 = 0x1283;
}

/// A placeholder that requests an out-parameter without carrying data.
const WANT: Value = Value::U64(1);

/// The remoting OpenCL client.
pub struct OpenClClient {
    lib: Arc<GuestLibrary>,
}

impl OpenClClient {
    /// Wraps a guest library configured with the OpenCL descriptor.
    pub fn new(lib: Arc<GuestLibrary>) -> Self {
        OpenClClient { lib }
    }

    /// The underlying guest library (for stats inspection).
    pub fn library(&self) -> &Arc<GuestLibrary> {
        &self.lib
    }

    fn call(&self, name: &str, args: Vec<Value>) -> ClResult<CallResult> {
        self.lib
            .call(name, args)
            .map_err(|_| ClError(CL_OUT_OF_RESOURCES))
    }

    /// Checks a status-returning call.
    fn status(result: &CallResult) -> ClResult<()> {
        match result.ret.as_i64() {
            Some(code) if code == i64::from(CL_SUCCESS) => Ok(()),
            Some(code) => Err(ClError(code as i32)),
            None => Err(ClError(CL_OUT_OF_RESOURCES)),
        }
    }

    /// Extracts a created handle from a create-style call.
    fn created(result: &CallResult, errcode_idx: u32) -> ClResult<u64> {
        match result.ret.as_handle() {
            Some(h) => Ok(h),
            None => {
                let code = result
                    .output(errcode_idx)
                    .and_then(Value::as_i64)
                    .unwrap_or(i64::from(CL_OUT_OF_RESOURCES));
                Err(ClError(code as i32))
            }
        }
    }

    fn out_handle(result: &CallResult, idx: u32) -> ClResult<u64> {
        result
            .output(idx)
            .and_then(Value::as_handle)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))
    }

    fn out_u64(result: &CallResult, idx: u32) -> ClResult<u64> {
        result
            .output(idx)
            .and_then(Value::as_u64)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))
    }

    fn out_bytes(result: &CallResult, idx: u32) -> ClResult<&[u8]> {
        result
            .output(idx)
            .and_then(Value::as_bytes)
            .map(|b| b.as_ref())
            .ok_or(ClError(CL_OUT_OF_RESOURCES))
    }

    /// The two-call info idiom shared by all Get*Info entry points.
    fn get_info_raw(&self, fn_name: &str, subject: u64, param: u32) -> ClResult<Vec<u8>> {
        // First call: ask for the value size.
        let r = self.call(
            fn_name,
            vec![
                Value::Handle(subject),
                Value::U32(param),
                Value::U64(0),
                Value::Null,
                WANT,
            ],
        )?;
        Self::status(&r)?;
        let size = Self::out_u64(&r, 4)?;
        // Second call: fetch the value.
        let r = self.call(
            fn_name,
            vec![
                Value::Handle(subject),
                Value::U32(param),
                Value::U64(size),
                WANT,
                Value::Null,
            ],
        )?;
        Self::status(&r)?;
        Ok(Self::out_bytes(&r, 3)?.to_vec())
    }

    fn event_list(wait: &[ClEvent]) -> (Value, Value) {
        if wait.is_empty() {
            (Value::U32(0), Value::Null)
        } else {
            (
                Value::U32(wait.len() as u32),
                Value::List(wait.iter().map(|e| Value::Handle(e.0)).collect()),
            )
        }
    }

    fn event_out(result: &CallResult, idx: u32, want_event: bool) -> Option<ClEvent> {
        if !want_event {
            return None;
        }
        result.output(idx).and_then(Value::as_handle).map(ClEvent)
    }
}

impl ClApi for OpenClClient {
    fn get_platform_ids(&self) -> ClResult<Vec<ClPlatform>> {
        let r = self.call("clGetPlatformIDs", vec![Value::U32(0), Value::Null, WANT])?;
        Self::status(&r)?;
        let count = Self::out_u64(&r, 2)?;
        let r = self.call(
            "clGetPlatformIDs",
            vec![Value::U32(count as u32), WANT, Value::Null],
        )?;
        Self::status(&r)?;
        let list = r
            .output(1)
            .and_then(Value::as_list)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))?;
        Ok(list
            .iter()
            .filter_map(Value::as_handle)
            .map(ClPlatform)
            .collect())
    }

    fn get_platform_info(&self, platform: ClPlatform, info: PlatformInfo) -> ClResult<String> {
        let param = match info {
            PlatformInfo::Name => code::CL_PLATFORM_NAME,
            PlatformInfo::Vendor => code::CL_PLATFORM_VENDOR,
            PlatformInfo::Version => code::CL_PLATFORM_VERSION,
        };
        let raw = self.get_info_raw("clGetPlatformInfo", platform.0, param)?;
        String::from_utf8(raw).map_err(|_| ClError(CL_OUT_OF_RESOURCES))
    }

    fn get_device_ids(&self, platform: ClPlatform, ty: DeviceType) -> ClResult<Vec<ClDevice>> {
        let ty_bits = match ty {
            DeviceType::All => code::CL_DEVICE_TYPE_ALL,
            DeviceType::Gpu => code::CL_DEVICE_TYPE_GPU,
            DeviceType::Accelerator => code::CL_DEVICE_TYPE_ACCELERATOR,
        };
        let r = self.call(
            "clGetDeviceIDs",
            vec![
                Value::Handle(platform.0),
                Value::U64(ty_bits),
                Value::U32(0),
                Value::Null,
                WANT,
            ],
        )?;
        Self::status(&r)?;
        let count = Self::out_u64(&r, 4)?;
        let r = self.call(
            "clGetDeviceIDs",
            vec![
                Value::Handle(platform.0),
                Value::U64(ty_bits),
                Value::U32(count as u32),
                WANT,
                Value::Null,
            ],
        )?;
        Self::status(&r)?;
        let list = r
            .output(3)
            .and_then(Value::as_list)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))?;
        Ok(list
            .iter()
            .filter_map(Value::as_handle)
            .map(ClDevice)
            .collect())
    }

    fn get_device_info(&self, device: ClDevice, info: DeviceInfo) -> ClResult<InfoValue> {
        let (param, is_string) = match info {
            DeviceInfo::Name => (code::CL_DEVICE_NAME, true),
            DeviceInfo::Vendor => (code::CL_DEVICE_VENDOR, true),
            DeviceInfo::MaxComputeUnits => (code::CL_DEVICE_MAX_COMPUTE_UNITS, false),
            DeviceInfo::MaxWorkGroupSize => (code::CL_DEVICE_MAX_WORK_GROUP_SIZE, false),
            DeviceInfo::GlobalMemSize => (code::CL_DEVICE_GLOBAL_MEM_SIZE, false),
            DeviceInfo::LocalMemSize => (code::CL_DEVICE_LOCAL_MEM_SIZE, false),
            DeviceInfo::Type => (code::CL_DEVICE_TYPE_INFO, false),
        };
        let raw = self.get_info_raw("clGetDeviceInfo", device.0, param)?;
        if is_string {
            Ok(InfoValue::Str(
                String::from_utf8(raw).map_err(|_| ClError(CL_OUT_OF_RESOURCES))?,
            ))
        } else {
            let arr: [u8; 8] = raw.try_into().map_err(|_| ClError(CL_OUT_OF_RESOURCES))?;
            Ok(InfoValue::UInt(u64::from_le_bytes(arr)))
        }
    }

    fn create_context(&self, device: ClDevice) -> ClResult<ClContext> {
        let r = self.call(
            "clCreateContext",
            vec![
                Value::U32(1),
                Value::List(vec![Value::Handle(device.0)]),
                Value::Null,   // pfn_notify
                Value::U64(0), // user_data (opaque)
                WANT,          // errcode_ret
            ],
        )?;
        Self::created(&r, 4).map(ClContext)
    }

    fn retain_context(&self, context: ClContext) -> ClResult<()> {
        Self::status(&self.call("clRetainContext", vec![Value::Handle(context.0)])?)
    }

    fn release_context(&self, context: ClContext) -> ClResult<()> {
        Self::status(&self.call("clReleaseContext", vec![Value::Handle(context.0)])?)
    }

    fn get_context_info(&self, context: ClContext) -> ClResult<ClDevice> {
        let r = self.call("clGetContextInfo", vec![Value::Handle(context.0), WANT])?;
        Self::status(&r)?;
        Self::out_handle(&r, 1).map(ClDevice)
    }

    fn create_command_queue(
        &self,
        context: ClContext,
        device: ClDevice,
        props: QueueProps,
    ) -> ClResult<ClQueue> {
        let r = self.call(
            "clCreateCommandQueue",
            vec![
                Value::Handle(context.0),
                Value::Handle(device.0),
                Value::U64(props.to_bits()),
                WANT,
            ],
        )?;
        Self::created(&r, 3).map(ClQueue)
    }

    fn retain_command_queue(&self, queue: ClQueue) -> ClResult<()> {
        Self::status(&self.call("clRetainCommandQueue", vec![Value::Handle(queue.0)])?)
    }

    fn release_command_queue(&self, queue: ClQueue) -> ClResult<()> {
        Self::status(&self.call("clReleaseCommandQueue", vec![Value::Handle(queue.0)])?)
    }

    fn create_buffer(
        &self,
        context: ClContext,
        flags: MemFlags,
        size: usize,
        host_data: Option<&[u8]>,
    ) -> ClResult<ClMem> {
        let host = match host_data {
            Some(data) => Value::Bytes(data.to_vec().into()),
            None => Value::Null,
        };
        let r = self.call(
            "clCreateBuffer",
            vec![
                Value::Handle(context.0),
                Value::U64(flags.to_bits()),
                Value::U64(size as u64),
                host,
                WANT,
            ],
        )?;
        Self::created(&r, 4).map(ClMem)
    }

    fn create_image(
        &self,
        context: ClContext,
        flags: MemFlags,
        desc: ImageDesc,
        host_data: Option<&[u8]>,
    ) -> ClResult<ClMem> {
        let host = match host_data {
            Some(data) => Value::Bytes(data.to_vec().into()),
            None => Value::Null,
        };
        let r = self.call(
            "clCreateImage",
            vec![
                Value::Handle(context.0),
                Value::U64(flags.to_bits()),
                Value::U64(desc.width as u64),
                Value::U64(desc.height as u64),
                Value::U64(desc.elem_size as u64),
                host,
                WANT,
            ],
        )?;
        Self::created(&r, 6).map(ClMem)
    }

    fn retain_mem_object(&self, mem: ClMem) -> ClResult<()> {
        Self::status(&self.call("clRetainMemObject", vec![Value::Handle(mem.0)])?)
    }

    fn release_mem_object(&self, mem: ClMem) -> ClResult<()> {
        Self::status(&self.call("clReleaseMemObject", vec![Value::Handle(mem.0)])?)
    }

    fn get_mem_object_info(&self, mem: ClMem) -> ClResult<usize> {
        let r = self.call("clGetMemObjectInfo", vec![Value::Handle(mem.0), WANT])?;
        Self::status(&r)?;
        Ok(Self::out_u64(&r, 1)? as usize)
    }

    fn create_program_with_source(&self, context: ClContext, source: &str) -> ClResult<ClProgram> {
        let r = self.call(
            "clCreateProgramWithSource",
            vec![
                Value::Handle(context.0),
                Value::Str(source.to_string()),
                WANT,
            ],
        )?;
        Self::created(&r, 2).map(ClProgram)
    }

    fn build_program(&self, program: ClProgram, options: &str) -> ClResult<()> {
        Self::status(&self.call(
            "clBuildProgram",
            vec![Value::Handle(program.0), Value::Str(options.to_string())],
        )?)
    }

    fn compile_program(&self, program: ClProgram, options: &str) -> ClResult<()> {
        Self::status(&self.call(
            "clCompileProgram",
            vec![Value::Handle(program.0), Value::Str(options.to_string())],
        )?)
    }

    fn get_program_build_info(&self, program: ClProgram) -> ClResult<String> {
        let r = self.call(
            "clGetProgramBuildInfo",
            vec![Value::Handle(program.0), Value::U64(0), Value::Null, WANT],
        )?;
        Self::status(&r)?;
        let size = Self::out_u64(&r, 3)?;
        let r = self.call(
            "clGetProgramBuildInfo",
            vec![
                Value::Handle(program.0),
                Value::U64(size),
                WANT,
                Value::Null,
            ],
        )?;
        Self::status(&r)?;
        String::from_utf8(Self::out_bytes(&r, 2)?.to_vec())
            .map_err(|_| ClError(CL_OUT_OF_RESOURCES))
    }

    fn retain_program(&self, program: ClProgram) -> ClResult<()> {
        Self::status(&self.call("clRetainProgram", vec![Value::Handle(program.0)])?)
    }

    fn release_program(&self, program: ClProgram) -> ClResult<()> {
        Self::status(&self.call("clReleaseProgram", vec![Value::Handle(program.0)])?)
    }

    fn create_kernel(&self, program: ClProgram, name: &str) -> ClResult<ClKernel> {
        let r = self.call(
            "clCreateKernel",
            vec![Value::Handle(program.0), Value::Str(name.to_string()), WANT],
        )?;
        Self::created(&r, 2).map(ClKernel)
    }

    fn create_kernels_in_program(&self, program: ClProgram) -> ClResult<Vec<ClKernel>> {
        let r = self.call(
            "clCreateKernelsInProgram",
            vec![Value::Handle(program.0), Value::U32(0), Value::Null, WANT],
        )?;
        Self::status(&r)?;
        let count = Self::out_u64(&r, 3)?;
        let r = self.call(
            "clCreateKernelsInProgram",
            vec![
                Value::Handle(program.0),
                Value::U32(count as u32),
                WANT,
                Value::Null,
            ],
        )?;
        Self::status(&r)?;
        let list = r
            .output(2)
            .and_then(Value::as_list)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))?;
        Ok(list
            .iter()
            .filter_map(Value::as_handle)
            .map(ClKernel)
            .collect())
    }

    fn set_kernel_arg(&self, kernel: ClKernel, index: u32, arg: KernelArg) -> ClResult<()> {
        let r = match arg {
            KernelArg::Mem(mem) => self.call(
                "clSetKernelArgMem",
                vec![
                    Value::Handle(kernel.0),
                    Value::U32(index),
                    Value::Handle(mem.0),
                ],
            )?,
            KernelArg::Local(size) => self.call(
                "clSetKernelArgLocal",
                vec![
                    Value::Handle(kernel.0),
                    Value::U32(index),
                    Value::U64(size as u64),
                ],
            )?,
            KernelArg::Scalar(bytes) => self.call(
                "clSetKernelArg",
                vec![
                    Value::Handle(kernel.0),
                    Value::U32(index),
                    Value::U64(bytes.len() as u64),
                    Value::Bytes(bytes.into()),
                ],
            )?,
        };
        Self::status(&r)
    }

    fn get_kernel_work_group_info(&self, kernel: ClKernel, device: ClDevice) -> ClResult<usize> {
        let r = self.call(
            "clGetKernelWorkGroupInfo",
            vec![Value::Handle(kernel.0), Value::Handle(device.0), WANT],
        )?;
        Self::status(&r)?;
        Ok(Self::out_u64(&r, 2)? as usize)
    }

    fn retain_kernel(&self, kernel: ClKernel) -> ClResult<()> {
        Self::status(&self.call("clRetainKernel", vec![Value::Handle(kernel.0)])?)
    }

    fn release_kernel(&self, kernel: ClKernel) -> ClResult<()> {
        Self::status(&self.call("clReleaseKernel", vec![Value::Handle(kernel.0)])?)
    }

    fn enqueue_nd_range_kernel(
        &self,
        queue: ClQueue,
        kernel: ClKernel,
        global: [usize; 3],
        local: Option<[usize; 3]>,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let sizes = |dims: [usize; 3]| {
            let mut bytes = Vec::with_capacity(24);
            for d in dims {
                bytes.extend_from_slice(&(d as u64).to_le_bytes());
            }
            Value::Bytes(bytes.into())
        };
        let (n, list) = Self::event_list(wait);
        let r = self.call(
            "clEnqueueNDRangeKernel",
            vec![
                Value::Handle(queue.0),
                Value::Handle(kernel.0),
                Value::U32(3),
                Value::Null,
                sizes(global),
                local.map(sizes).unwrap_or(Value::Null),
                n,
                list,
                if want_event { WANT } else { Value::Null },
            ],
        )?;
        Self::status(&r)?;
        Ok(Self::event_out(&r, 8, want_event))
    }

    fn enqueue_task(
        &self,
        queue: ClQueue,
        kernel: ClKernel,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let (n, list) = Self::event_list(wait);
        let r = self.call(
            "clEnqueueTask",
            vec![
                Value::Handle(queue.0),
                Value::Handle(kernel.0),
                n,
                list,
                if want_event { WANT } else { Value::Null },
            ],
        )?;
        Self::status(&r)?;
        Ok(Self::event_out(&r, 4, want_event))
    }

    fn enqueue_read_buffer(
        &self,
        queue: ClQueue,
        mem: ClMem,
        blocking: bool,
        offset: usize,
        out: &mut [u8],
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let (n, list) = Self::event_list(wait);
        let r = self.call(
            "clEnqueueReadBuffer",
            vec![
                Value::Handle(queue.0),
                Value::Handle(mem.0),
                Value::U32(u32::from(blocking)),
                Value::U64(offset as u64),
                Value::U64(out.len() as u64),
                WANT,
                n,
                list,
                if want_event { WANT } else { Value::Null },
            ],
        )?;
        Self::status(&r)?;
        let data = Self::out_bytes(&r, 5)?;
        if data.len() != out.len() {
            return Err(ClError(CL_OUT_OF_RESOURCES));
        }
        out.copy_from_slice(data);
        Ok(Self::event_out(&r, 8, want_event))
    }

    fn enqueue_write_buffer(
        &self,
        queue: ClQueue,
        mem: ClMem,
        blocking: bool,
        offset: usize,
        data: &[u8],
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let (n, list) = Self::event_list(wait);
        let r = self.call(
            "clEnqueueWriteBuffer",
            vec![
                Value::Handle(queue.0),
                Value::Handle(mem.0),
                Value::U32(u32::from(blocking)),
                Value::U64(offset as u64),
                Value::U64(data.len() as u64),
                Value::Bytes(data.to_vec().into()),
                n,
                list,
                if want_event { WANT } else { Value::Null },
            ],
        )?;
        Self::status(&r)?;
        Ok(Self::event_out(&r, 8, want_event))
    }

    fn enqueue_copy_buffer(
        &self,
        queue: ClQueue,
        src: ClMem,
        dst: ClMem,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let (n, list) = Self::event_list(wait);
        let r = self.call(
            "clEnqueueCopyBuffer",
            vec![
                Value::Handle(queue.0),
                Value::Handle(src.0),
                Value::Handle(dst.0),
                Value::U64(src_offset as u64),
                Value::U64(dst_offset as u64),
                Value::U64(len as u64),
                n,
                list,
                if want_event { WANT } else { Value::Null },
            ],
        )?;
        Self::status(&r)?;
        Ok(Self::event_out(&r, 8, want_event))
    }

    fn flush(&self, queue: ClQueue) -> ClResult<()> {
        Self::status(&self.call("clFlush", vec![Value::Handle(queue.0)])?)
    }

    fn finish(&self, queue: ClQueue) -> ClResult<()> {
        Self::status(&self.call("clFinish", vec![Value::Handle(queue.0)])?)
    }

    fn wait_for_events(&self, events: &[ClEvent]) -> ClResult<()> {
        let (n, list) = Self::event_list(events);
        Self::status(&self.call("clWaitForEvents", vec![n, list])?)
    }

    fn get_event_info(&self, event: ClEvent) -> ClResult<EventStatus> {
        let r = self.call("clGetEventInfo", vec![Value::Handle(event.0), WANT])?;
        Self::status(&r)?;
        let raw = r
            .output(1)
            .and_then(Value::as_i64)
            .ok_or(ClError(CL_OUT_OF_RESOURCES))?;
        Ok(EventStatus::from_cl(raw as i32))
    }

    fn get_event_profiling_info(&self, event: ClEvent) -> ClResult<ProfilingInfo> {
        let fetch = |param: u32| -> ClResult<u64> {
            let r = self.call(
                "clGetEventProfilingInfo",
                vec![Value::Handle(event.0), Value::U32(param), WANT],
            )?;
            Self::status(&r)?;
            Self::out_u64(&r, 2)
        };
        Ok(ProfilingInfo {
            queued: fetch(code::CL_PROFILING_COMMAND_QUEUED)?,
            submitted: fetch(code::CL_PROFILING_COMMAND_SUBMIT)?,
            started: fetch(code::CL_PROFILING_COMMAND_START)?,
            ended: fetch(code::CL_PROFILING_COMMAND_END)?,
        })
    }

    fn retain_event(&self, event: ClEvent) -> ClResult<()> {
        Self::status(&self.call("clRetainEvent", vec![Value::Handle(event.0)])?)
    }

    fn release_event(&self, event: ClEvent) -> ClResult<()> {
        Self::status(&self.call("clReleaseEvent", vec![Value::Handle(event.0)])?)
    }
}
