//! Content-addressed transfer-cache primitives.
//!
//! The guest library and the API server each keep a small LRU keyed by a
//! 64-bit content digest of buffer payloads that have already crossed the
//! transport. When the guest is about to resend a payload whose digest is
//! cached, it marshals [`crate::Value::CachedBytes`] — digest plus length —
//! instead of the bytes, and the server rematerializes the payload from its
//! mirror cache. Both sides apply the same insert/touch sequence in transport
//! order over the same capacity, so the caches evolve in lockstep on an
//! ordered, reliable transport; any divergence (migration, forced eviction,
//! mismatched configuration) is healed by the `ReplyStatus::CacheMiss` NACK
//! and a full resend.
//!
//! The digest is [`digest64`] — a four-lane multiply-fold hash (wyhash-style
//! mixing) that runs well above memcpy speed, with a reference FNV-1a
//! fallback for sub-block payloads. It is collision-safe enough for a
//! cooperative cache where a collision costs correctness only within one
//! guest's own traffic. This is a transfer-elision cache, not an integrity
//! check.

use std::collections::HashMap;

/// 64-bit FNV-1a content digest.
///
/// Offset basis `0xcbf29ce484222325`, prime `0x100000001b3` — the standard
/// parameters, so test vectors from the FNV reference implementation apply.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Folds a full 64x64 -> 128 multiply back to 64 bits (the wyhash mixing
/// primitive): one `mul` instruction on 64-bit targets, with every input
/// bit influencing every output bit.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let r = u128::from(a) * u128::from(b);
    (r as u64) ^ ((r >> 64) as u64)
}

/// Fast 64-bit content digest for the transfer-cache hot path.
///
/// FNV-1a is byte-serial — one dependent multiply per byte — which put the
/// whole digest cost on the marshaling critical path and made cache-on a
/// wall-time *loss* on low-latency transports despite the byte elision.
/// The break-even point is the memcpy the elision avoids: on an in-process
/// transport a cache hit saves only one payload copy, so the digest must
/// run well above memcpy speed to leave a margin. `digest64` consumes
/// 64 bytes per step across four independent lanes, each folding 16 bytes
/// through a single widening multiply ([`mix`], the wyhash primitive) —
/// one multiply per 16 bytes instead of FNV's one per byte — then combines
/// the lanes with the input length. Buffers shorter than one block fall
/// back to reference FNV-1a, so tiny payloads pay no setup.
///
/// Guest and server mirrors must agree on the digest function, not on any
/// particular one — both sides call this. Like FNV it is a transfer-elision
/// digest, not an integrity check.
pub fn digest64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    if data.len() < 64 {
        return fnv1a64(data);
    }
    // Distinct odd constants per lane (from the golden ratio / FNV basis
    // family) so equal 16-byte chunks land differently in each lane.
    const SECRET: [u64; 4] = [
        0xa076_1d64_78bd_642f,
        0xe703_7ed1_a0b4_28db,
        0x8ebc_6af0_9c88_c6e3,
        0x5899_65cc_7537_4cc3,
    ];
    let mut lanes = [
        BASIS,
        BASIS ^ 0x9e37_79b9_7f4a_7c15,
        BASIS.rotate_left(17),
        BASIS.rotate_left(43),
    ];
    let mut chunks = data.chunks_exact(64);
    for chunk in chunks.by_ref() {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w0 = u64::from_le_bytes(chunk[i * 16..i * 16 + 8].try_into().expect("8-byte word"));
            let w1 = u64::from_le_bytes(
                chunk[i * 16 + 8..i * 16 + 16]
                    .try_into()
                    .expect("8-byte word"),
            );
            *lane = mix(w0 ^ SECRET[i], w1 ^ *lane);
        }
    }
    let mut acc = BASIS ^ (data.len() as u64);
    for lane in lanes {
        acc = (acc ^ lane).wrapping_mul(PRIME).rotate_left(29);
    }
    for &b in chunks.remainder() {
        acc = (acc ^ u64::from(b)).wrapping_mul(PRIME);
    }
    acc
}

/// A fixed-capacity LRU map from content digest to `V`.
///
/// Eviction is strict least-recently-used over *entry count* (not bytes), so
/// two caches configured with the same capacity that observe the same
/// insert/touch sequence hold exactly the same digests — the property the
/// guest/server mirror-cache protocol relies on. Recency is tracked with a
/// monotonic tick; lookup of the victim is `O(n)` in the capacity, which is
/// small (tens of entries) and off the byte-moving hot path.
#[derive(Debug)]
pub struct DigestLru<V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (u64, V)>,
}

impl<V> DigestLru<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables the cache (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        DigestLru {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `digest`, marking it most-recently-used on hit.
    pub fn get(&mut self, digest: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&digest) {
            Some((used, value)) => {
                *used = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// True when `digest` is cached; does not touch recency.
    pub fn contains(&self, digest: u64) -> bool {
        self.entries.contains_key(&digest)
    }

    /// Inserts (or refreshes) `digest`, evicting the least-recently-used
    /// entry if the cache is full. Inserting an existing digest only
    /// refreshes its recency and replaces its value.
    pub fn insert(&mut self, digest: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.entries.get_mut(&digest) {
            *slot = (tick, value);
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(d, _)| *d)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(digest, (tick, value));
    }

    /// Removes `digest`, returning its value if present. Used by tests to
    /// force a guest/server desync.
    pub fn remove(&mut self, digest: u64) -> Option<V> {
        self.entries.remove(&digest).map(|(_, v)| v)
    }

    /// Drops every entry (epoch change: reconnect or migration).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Vectors from the FNV reference implementation.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest64_is_deterministic_and_length_aware() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 131 % 251) as u8).collect();
        assert_eq!(digest64(&data), digest64(&data));
        // Prefixes straddling the 64-byte block boundary all digest
        // differently (the fold mixes in the length, so even a
        // zero-padded tail cannot collide with its prefix).
        let lens = [0usize, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1024];
        let digests: Vec<u64> = lens.iter().map(|&n| digest64(&data[..n])).collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "lens {} vs {}", lens[i], lens[j]);
            }
        }
    }

    #[test]
    fn digest64_short_inputs_match_fnv1a() {
        for n in 0..64usize {
            let data: Vec<u8> = (0..n as u32).map(|i| i as u8).collect();
            assert_eq!(digest64(&data), fnv1a64(&data));
        }
    }

    #[test]
    fn digest64_sees_single_byte_changes() {
        let mut data = vec![7u8; 4096];
        let base = digest64(&data);
        for pos in [0usize, 31, 32, 1000, 4095] {
            data[pos] ^= 1;
            assert_ne!(digest64(&data), base, "flip at {pos} undetected");
            data[pos] ^= 1;
        }
        assert_eq!(digest64(&data), base);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = DigestLru::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.get(1), Some(&"one")); // 1 is now freshest
        lru.insert(3, "three"); // evicts 2
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_recency_without_evicting() {
        let mut lru = DigestLru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // refresh, not a new entry
        assert_eq!(lru.len(), 2);
        lru.insert(3, 30); // evicts 2, the stale one
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert_eq!(lru.get(1), Some(&11));
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut lru = DigestLru::new(0);
        lru.insert(1, ());
        assert!(lru.is_empty());
        assert_eq!(lru.get(1), None);
    }

    #[test]
    fn mirrored_caches_stay_in_lockstep() {
        // The protocol invariant: same capacity + same operation sequence
        // (insert on send == insert on receive, get on hit) => same digests.
        let mut guest = DigestLru::new(3);
        let mut server = DigestLru::new(3);
        let ops: &[u64] = &[5, 6, 7, 5, 8, 9, 6, 5, 10];
        for &d in ops {
            let g_hit = guest.get(d).is_some();
            let s_hit = server.get(d).is_some();
            assert_eq!(g_hit, s_hit, "caches diverged at digest {d}");
            if !g_hit {
                guest.insert(d, ());
                server.insert(d, ());
            }
        }
    }

    #[test]
    fn clear_and_remove() {
        let mut lru = DigestLru::new(4);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.remove(1), Some("a"));
        assert_eq!(lru.remove(1), None);
        lru.clear();
        assert!(lru.is_empty());
    }
}
