//! Property tests: every well-formed message survives an encode/decode cycle,
//! and the decoder never panics on arbitrary input.

use ava_wire::{
    CallMode, CallReply, CallRequest, ControlMessage, Message, ReplyStatus, Value, WireError,
    MAX_BATCH_CALLS,
};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::I32),
        any::<i64>().prop_map(Value::I64),
        any::<u32>().prop_map(Value::U32),
        any::<u64>().prop_map(Value::U64),
        any::<f32>()
            .prop_filter("NaN != NaN", |f| !f.is_nan())
            .prop_map(Value::F32),
        any::<f64>()
            .prop_filter("NaN != NaN", |f| !f.is_nan())
            .prop_map(Value::F64),
        any::<u64>().prop_map(Value::Handle),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|v| Value::Bytes(Bytes::from(v))),
        "[a-zA-Z0-9 _:/.-]{0,64}".prop_map(Value::Str),
        (any::<u64>(), 0u64..=u32::MAX as u64)
            .prop_map(|(digest, len)| Value::CachedBytes { digest, len }),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(Value::List)
    })
}

/// Deadline budgets weighted toward the interesting edges: no deadline,
/// tiny/zero-adjacent budgets, and overflow-sized values.
fn arb_budget() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        1u64..10_000_000,
        Just(u64::MAX - 1),
        Just(u64::MAX),
    ]
}

fn arb_call() -> impl Strategy<Value = CallRequest> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(arb_value(), 0..6),
        arb_budget(),
    )
        .prop_map(|(call_id, fn_id, is_async, args, budget_us)| CallRequest {
            call_id,
            fn_id,
            mode: if is_async {
                CallMode::Async
            } else {
                CallMode::Sync
            },
            args,
            budget_us,
        })
}

fn arb_reply() -> impl Strategy<Value = CallReply> {
    (
        any::<u64>(),
        0u8..7,
        arb_value(),
        proptest::collection::vec((any::<u32>(), arb_value()), 0..4),
    )
        .prop_map(|(call_id, status, ret, outputs)| CallReply {
            call_id,
            status: match status {
                0 => ReplyStatus::Ok,
                1 => ReplyStatus::TransportError,
                2 => ReplyStatus::PolicyRejected,
                3 => ReplyStatus::CacheMiss,
                4 => ReplyStatus::Unavailable,
                5 => ReplyStatus::QuotaExceeded,
                _ => ReplyStatus::Overloaded,
            },
            ret,
            outputs,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_call().prop_map(Message::Call),
        arb_reply().prop_map(Message::Reply),
        proptest::collection::vec(arb_call(), 0..4).prop_map(Message::Batch),
        prop_oneof![
            any::<u64>().prop_map(ControlMessage::Ping),
            any::<u64>().prop_map(ControlMessage::Pong),
            Just(ControlMessage::Shutdown),
            Just(ControlMessage::Suspend),
            Just(ControlMessage::Resume),
            "[ -~]{0,32}".prop_map(ControlMessage::Error),
            any::<u64>().prop_map(ControlMessage::CacheEpoch),
            any::<u64>().prop_map(ControlMessage::Heartbeat),
            any::<u64>().prop_map(ControlMessage::HeartbeatAck),
        ]
        .prop_map(Message::Control),
    ]
}

/// Batch-shaped calls with the transfer-cache value mix the adaptive
/// batcher actually produces: plain payloads, cache references, and
/// nested lists containing `CachedBytes` members.
fn arb_cachey_call() -> impl Strategy<Value = CallRequest> {
    let cachey_value = prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(|v| Value::Bytes(Bytes::from(v))),
        (any::<u64>(), 0u64..=u32::MAX as u64)
            .prop_map(|(digest, len)| Value::CachedBytes { digest, len }),
        proptest::collection::vec(
            (any::<u64>(), 0u64..1024).prop_map(|(digest, len)| Value::CachedBytes { digest, len }),
            0..4
        )
        .prop_map(Value::List),
    ];
    (
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        proptest::collection::vec(cachey_value, 0..5),
        arb_budget(),
    )
        .prop_map(|(call_id, fn_id, is_async, args, budget_us)| CallRequest {
            call_id,
            fn_id,
            mode: if is_async {
                CallMode::Async
            } else {
                CallMode::Sync
            },
            args,
            budget_us,
        })
}

proptest! {
    #[test]
    fn message_round_trips(msg in arb_message()) {
        let encoded = msg.encode();
        let decoded = Message::decode(encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Either outcome is fine; the property is "no panic, no hang".
        let _ = Message::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_frames_never_panic(msg in arb_message(), cut in 0usize..64) {
        // Model a corrupting link that chops a frame: the decoder must fail
        // cleanly (no panic, no partial message accepted as a longer one).
        let encoded = msg.encode();
        if cut < encoded.len() {
            let truncated = encoded.slice(0..encoded.len() - cut - 1);
            let _ = Message::decode(truncated);
        }
    }

    #[test]
    fn flipped_byte_never_panics(msg in arb_message(), pos in any::<prop::sample::Index>(), mask in 1u8..=255) {
        // Model single-byte corruption: decode either fails or yields some
        // well-formed message, but never panics.
        let encoded = msg.encode();
        let mut raw = encoded.to_vec();
        let idx = pos.index(raw.len());
        raw[idx] ^= mask;
        let _ = Message::decode(Bytes::from(raw));
    }

    #[test]
    fn large_cachey_batches_round_trip(calls in proptest::collection::vec(arb_cachey_call(), 0..96)) {
        let msg = Message::Batch(calls);
        let encoded = msg.encode();
        let decoded = Message::decode(encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_batches_error_cleanly(
        calls in proptest::collection::vec(arb_cachey_call(), 1..32),
        frac in 0.0f64..1.0,
    ) {
        // Any strict prefix of a batch frame must decode to an error —
        // never to a panic, and never to a successfully decoded batch
        // (a partially applied batch would break retry-as-a-unit).
        let msg = Message::Batch(calls);
        let encoded = msg.encode();
        let keep = ((encoded.len() as f64) * frac) as usize;
        if keep < encoded.len() {
            prop_assert!(Message::decode(encoded.slice(0..keep)).is_err());
        }
    }

    #[test]
    fn oversized_batch_counts_rejected(extra in 1u64..1_000_000, garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        // A frame claiming more member calls than MAX_BATCH_CALLS must be
        // refused by the cap (when enough bytes follow to defeat the EOF
        // guard) or fail some other way — never allocate or decode.
        let count = MAX_BATCH_CALLS as u64 + extra;
        let mut raw = vec![0x12u8]; // BATCH kind
        let mut v = count;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                raw.push(byte);
                break;
            }
            raw.push(byte | 0x80);
        }
        let body = count.min(MAX_BATCH_CALLS as u64 + 2) as usize + garbage.len();
        raw.extend(std::iter::repeat_n(0u8, body));
        match Message::decode(Bytes::from(raw)) {
            Err(WireError::BatchTooLarge(n)) => prop_assert_eq!(n as u64, count),
            Err(_) => {}
            Ok(msg) => prop_assert!(false, "oversized batch decoded: {:?}", msg),
        }
    }

    #[test]
    fn value_round_trips(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        v.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = Value::decode(&mut bytes).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert!(bytes.is_empty());
    }
}
