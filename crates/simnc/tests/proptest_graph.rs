//! Property tests: graph blobs round-trip for arbitrary layer stacks, and
//! the decoder never panics on mutated blobs.

use proptest::prelude::*;
use simnc::{Layer, Network};

fn arb_network() -> impl Strategy<Value = Network> {
    (2usize..6, 2usize..8, 1usize..4).prop_map(|(c, hw, convs)| {
        let mut layers = vec![Layer::Input { c, h: hw, w: hw }];
        for i in 0..convs {
            let last_c = c + i;
            layers.push(Layer::Conv {
                input: i,
                out_c: last_c + 1,
                k: 1,
                stride: 1,
                pad: 0,
                relu: i % 2 == 0,
                weights: vec![0.5; (last_c + 1) * last_c],
                bias: vec![0.0; last_c + 1],
            });
        }
        Network {
            name: format!("n{c}x{hw}"),
            layers,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blobs_round_trip(net in arb_network()) {
        let blob = net.to_blob();
        let back = Network::from_blob(&blob).unwrap();
        prop_assert_eq!(back, net);
    }

    #[test]
    fn decoder_never_panics_on_mutation(
        net in arb_network(),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut blob = net.to_blob();
        for (idx, byte) in flips {
            let i = idx.index(blob.len());
            blob[i] = byte;
        }
        // Either outcome is fine; the property is "no panic".
        let _ = Network::from_blob(&blob);
    }

    #[test]
    fn forward_output_is_finite(net in arb_network()) {
        let (c, h, w) = net.input_shape().unwrap();
        let input = simnc::Tensor::zeros(c, h, w);
        let out = net.forward(&input).unwrap();
        prop_assert!(out.data.iter().all(|v| v.is_finite()));
    }
}
