//! The OpenCL API-server binding: what CAvA generates to execute forwarded
//! `cl*` calls against the native silo (`simcl`).
//!
//! The binding owns the API-specific knowledge the generic server runtime
//! cannot have: how to unpack each function's arguments, which silo entry
//! point to invoke, how to mirror retain/release reference counts, and how
//! to snapshot/restore/drop `cl_mem` payloads for migration and swapping.

use std::collections::HashMap;

use ava_server::{ApiHandler, HandlerOutput, Result, ServerError};
use ava_spec::FunctionDesc;
use ava_wire::Value;
use simcl::status::{CL_INVALID_VALUE, CL_MEM_OBJECT_ALLOCATION_FAILURE, CL_SUCCESS};
use simcl::types::*;
use simcl::{ClApi, ClError, SimCl};

/// Info-query parameter codes (mirrors `specs/CL/cl.h`).
mod code {
    pub const CL_PLATFORM_VERSION: u32 = 0x0901;
    pub const CL_PLATFORM_NAME: u32 = 0x0902;
    pub const CL_PLATFORM_VENDOR: u32 = 0x0903;
    pub const CL_DEVICE_NAME: u32 = 0x102B;
    pub const CL_DEVICE_VENDOR: u32 = 0x102C;
    pub const CL_DEVICE_MAX_COMPUTE_UNITS: u32 = 0x1002;
    pub const CL_DEVICE_MAX_WORK_GROUP_SIZE: u32 = 0x1004;
    pub const CL_DEVICE_GLOBAL_MEM_SIZE: u32 = 0x101F;
    pub const CL_DEVICE_LOCAL_MEM_SIZE: u32 = 0x1023;
    pub const CL_DEVICE_TYPE_INFO: u32 = 0x1000;
    pub const CL_PROFILING_COMMAND_QUEUED: u32 = 0x1280;
    pub const CL_PROFILING_COMMAND_SUBMIT: u32 = 0x1281;
    pub const CL_PROFILING_COMMAND_START: u32 = 0x1282;
    pub const CL_PROFILING_COMMAND_END: u32 = 0x1283;
    pub const CL_DEVICE_TYPE_GPU: u64 = 1 << 2;
    pub const CL_DEVICE_TYPE_ACCELERATOR: u64 = 1 << 3;
}

/// The OpenCL handler bound to one `SimCl` instance.
pub struct OpenClHandler {
    cl: SimCl,
    /// Mirrored reference counts, silo handle → count. The wire handle
    /// table must only retire entries when the object actually dies.
    refs: HashMap<u64, u32>,
    /// `cl_mem` silo handle → (owning context silo, byte size); needed to
    /// snapshot/restore payloads through an internal queue.
    mem_info: HashMap<u64, (u64, usize)>,
    /// Internal (non-guest-visible) queue per context, for snapshots.
    internal_queues: HashMap<u64, ClQueue>,
    /// Status of the most recent create-style call, for OOM detection.
    last_create_status: i32,
}

impl OpenClHandler {
    /// Creates a handler executing against `cl`.
    pub fn new(cl: SimCl) -> Self {
        OpenClHandler {
            cl,
            refs: HashMap::new(),
            mem_info: HashMap::new(),
            internal_queues: HashMap::new(),
            last_create_status: CL_SUCCESS,
        }
    }

    fn track_new(&mut self, silo: u64) {
        self.refs.insert(silo, 1);
    }

    fn retain(&mut self, silo: u64) {
        *self.refs.entry(silo).or_insert(1) += 1;
    }

    /// Returns true when the object died.
    fn release(&mut self, silo: u64) -> bool {
        match self.refs.get_mut(&silo) {
            Some(count) if *count > 1 => {
                *count -= 1;
                false
            }
            _ => {
                self.refs.remove(&silo);
                true
            }
        }
    }

    fn internal_queue(&mut self, ctx_silo: u64) -> Result<ClQueue> {
        if let Some(q) = self.internal_queues.get(&ctx_silo) {
            return Ok(*q);
        }
        let device = self
            .cl
            .get_context_info(ClContext(ctx_silo))
            .map_err(|e| ServerError::Handler(e.to_string()))?;
        let q = self
            .cl
            .create_command_queue(ClContext(ctx_silo), device, QueueProps::default())
            .map_err(|e| ServerError::Handler(e.to_string()))?;
        self.internal_queues.insert(ctx_silo, q);
        Ok(q)
    }
}

// ---- Argument accessors --------------------------------------------------

fn arg(args: &[Value], i: usize) -> Result<&Value> {
    args.get(i)
        .ok_or_else(|| ServerError::BadArguments(format!("missing argument {i}")))
}

fn handle(args: &[Value], i: usize) -> Result<u64> {
    arg(args, i)?
        .as_handle()
        .ok_or_else(|| ServerError::BadArguments(format!("argument {i} is not a handle")))
}

fn uint(args: &[Value], i: usize) -> Result<u64> {
    arg(args, i)?
        .as_u64()
        .ok_or_else(|| ServerError::BadArguments(format!("argument {i} is not an integer")))
}

fn bytes(args: &[Value], i: usize) -> Result<&[u8]> {
    match arg(args, i)? {
        Value::Bytes(b) => Ok(b),
        other => Err(ServerError::BadArguments(format!(
            "argument {i} is not a buffer: {other:?}"
        ))),
    }
}

fn opt_bytes(args: &[Value], i: usize) -> Result<Option<&[u8]>> {
    match arg(args, i)? {
        Value::Bytes(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(ServerError::BadArguments(format!(
            "argument {i} is not a buffer or NULL: {other:?}"
        ))),
    }
}

fn string(args: &[Value], i: usize) -> Result<&str> {
    arg(args, i)?
        .as_str()
        .ok_or_else(|| ServerError::BadArguments(format!("argument {i} is not a string")))
}

fn opt_string(args: &[Value], i: usize) -> Result<&str> {
    match arg(args, i)? {
        Value::Str(s) => Ok(s),
        Value::Null => Ok(""),
        other => Err(ServerError::BadArguments(format!(
            "argument {i} is not a string or NULL: {other:?}"
        ))),
    }
}

fn wants(args: &[Value], i: usize) -> bool {
    args.get(i).map(|v| !v.is_null()).unwrap_or(false)
}

fn events(args: &[Value], i: usize) -> Result<Vec<ClEvent>> {
    match arg(args, i)? {
        Value::Null => Ok(Vec::new()),
        Value::List(items) => items
            .iter()
            .map(|v| {
                v.as_handle()
                    .map(ClEvent)
                    .ok_or_else(|| ServerError::BadArguments("event list holds non-handle".into()))
            })
            .collect(),
        other => Err(ServerError::BadArguments(format!(
            "argument {i} is not an event list: {other:?}"
        ))),
    }
}

fn size_list(args: &[Value], i: usize) -> Result<Option<Vec<usize>>> {
    match arg(args, i)? {
        Value::Null => Ok(None),
        Value::Bytes(b) => {
            if b.len() % 8 != 0 {
                return Err(ServerError::BadArguments(
                    "size_t array has ragged byte length".into(),
                ));
            }
            Ok(Some(
                b.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")) as usize)
                    .collect(),
            ))
        }
        other => Err(ServerError::BadArguments(format!(
            "argument {i} is not a size_t array: {other:?}"
        ))),
    }
}

fn dims(list: &[usize]) -> [usize; 3] {
    let mut out = [1usize; 3];
    for (slot, v) in out.iter_mut().zip(list.iter()) {
        *slot = *v;
    }
    out
}

fn status_ret(code: i32) -> HandlerOutput {
    HandlerOutput::ret(Value::I32(code))
}

fn err_code(e: ClError) -> i32 {
    e.0
}

/// Builds the three standard outputs of a create-style call: the handle
/// return plus an optional errcode output.
fn create_ret(
    result: std::result::Result<u64, ClError>,
    errcode_idx: usize,
    args: &[Value],
) -> (HandlerOutput, i32) {
    let (ret, code) = match result {
        Ok(silo) => (Value::Handle(silo), CL_SUCCESS),
        Err(e) => (Value::Null, err_code(e)),
    };
    let mut out = HandlerOutput::ret(ret);
    if wants(args, errcode_idx) {
        out.outputs.push((errcode_idx as u32, Value::I32(code)));
    }
    (out, code)
}

impl ApiHandler for OpenClHandler {
    fn dispatch(&mut self, func: &FunctionDesc, args: &[Value]) -> Result<HandlerOutput> {
        let cl = self.cl.clone();
        match func.name.as_str() {
            "clGetPlatformIDs" => {
                let num_entries = uint(args, 0)? as usize;
                match cl.get_platform_ids() {
                    Ok(platforms) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 1) {
                            let list: Vec<Value> = platforms
                                .iter()
                                .take(num_entries)
                                .map(|p| Value::Handle(p.0))
                                .collect();
                            out.outputs.push((1, Value::List(list)));
                        }
                        if wants(args, 2) {
                            out.outputs.push((2, Value::U32(platforms.len() as u32)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clGetPlatformInfo" => {
                let platform = ClPlatform(handle(args, 0)?);
                let param = uint(args, 1)? as u32;
                let cap = uint(args, 2)? as usize;
                let info = match param {
                    code::CL_PLATFORM_NAME => PlatformInfo::Name,
                    code::CL_PLATFORM_VENDOR => PlatformInfo::Vendor,
                    code::CL_PLATFORM_VERSION => PlatformInfo::Version,
                    _ => return Ok(status_ret(CL_INVALID_VALUE)),
                };
                match cl.get_platform_info(platform, info) {
                    Ok(text) => {
                        let mut out = status_ret(CL_SUCCESS);
                        let raw = text.into_bytes();
                        if wants(args, 3) {
                            let n = raw.len().min(cap);
                            out.outputs
                                .push((3, Value::Bytes(raw[..n].to_vec().into())));
                        }
                        if wants(args, 4) {
                            out.outputs.push((4, Value::U64(raw.len() as u64)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clGetDeviceIDs" => {
                let platform = ClPlatform(handle(args, 0)?);
                let ty = match uint(args, 1)? {
                    code::CL_DEVICE_TYPE_GPU => DeviceType::Gpu,
                    code::CL_DEVICE_TYPE_ACCELERATOR => DeviceType::Accelerator,
                    _ => DeviceType::All,
                };
                let num_entries = uint(args, 2)? as usize;
                match cl.get_device_ids(platform, ty) {
                    Ok(devices) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 3) {
                            let list: Vec<Value> = devices
                                .iter()
                                .take(num_entries)
                                .map(|d| Value::Handle(d.0))
                                .collect();
                            out.outputs.push((3, Value::List(list)));
                        }
                        if wants(args, 4) {
                            out.outputs.push((4, Value::U32(devices.len() as u32)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clGetDeviceInfo" => {
                let device = ClDevice(handle(args, 0)?);
                let param = uint(args, 1)? as u32;
                let cap = uint(args, 2)? as usize;
                let info = match param {
                    code::CL_DEVICE_NAME => DeviceInfo::Name,
                    code::CL_DEVICE_VENDOR => DeviceInfo::Vendor,
                    code::CL_DEVICE_MAX_COMPUTE_UNITS => DeviceInfo::MaxComputeUnits,
                    code::CL_DEVICE_MAX_WORK_GROUP_SIZE => DeviceInfo::MaxWorkGroupSize,
                    code::CL_DEVICE_GLOBAL_MEM_SIZE => DeviceInfo::GlobalMemSize,
                    code::CL_DEVICE_LOCAL_MEM_SIZE => DeviceInfo::LocalMemSize,
                    code::CL_DEVICE_TYPE_INFO => DeviceInfo::Type,
                    _ => return Ok(status_ret(CL_INVALID_VALUE)),
                };
                match cl.get_device_info(device, info) {
                    Ok(value) => {
                        let raw = match value {
                            InfoValue::Str(s) => s.into_bytes(),
                            InfoValue::UInt(v) => v.to_le_bytes().to_vec(),
                        };
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 3) {
                            let n = raw.len().min(cap);
                            out.outputs
                                .push((3, Value::Bytes(raw[..n].to_vec().into())));
                        }
                        if wants(args, 4) {
                            out.outputs.push((4, Value::U64(raw.len() as u64)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clCreateContext" => {
                let devices = match arg(args, 1)? {
                    Value::List(items) => items
                        .iter()
                        .filter_map(Value::as_handle)
                        .map(ClDevice)
                        .collect::<Vec<_>>(),
                    _ => Vec::new(),
                };
                let result = match devices.first() {
                    Some(device) => cl.create_context(*device).map(|c| c.0),
                    None => Err(ClError(CL_INVALID_VALUE)),
                };
                if let Ok(silo) = result {
                    self.track_new(silo);
                }
                let (out, code) = create_ret(result, 4, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clRetainContext" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_context(ClContext(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseContext" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_context(ClContext(silo));
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                if died {
                    if let Some(q) = self.internal_queues.remove(&silo) {
                        let _ = cl.release_command_queue(q);
                    }
                }
                Ok(out)
            }
            "clGetContextInfo" => {
                let ctx = ClContext(handle(args, 0)?);
                match cl.get_context_info(ctx) {
                    Ok(device) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 1) {
                            out.outputs.push((1, Value::Handle(device.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clCreateCommandQueue" => {
                let ctx = ClContext(handle(args, 0)?);
                let device = ClDevice(handle(args, 1)?);
                let props = QueueProps::from_bits(uint(args, 2)?);
                let result = cl.create_command_queue(ctx, device, props).map(|q| q.0);
                if let Ok(silo) = result {
                    self.track_new(silo);
                }
                let (out, code) = create_ret(result, 3, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clRetainCommandQueue" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_command_queue(ClQueue(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseCommandQueue" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_command_queue(ClQueue(silo));
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                Ok(out)
            }
            "clCreateBuffer" => {
                let ctx = ClContext(handle(args, 0)?);
                let flags = MemFlags::from_bits(uint(args, 1)?);
                let size = uint(args, 2)? as usize;
                let host = opt_bytes(args, 3)?;
                let result = cl.create_buffer(ctx, flags, size, host).map(|m| m.0);
                if let Ok(silo) = result {
                    self.track_new(silo);
                    self.mem_info.insert(silo, (ctx.0, size));
                }
                let (out, code) = create_ret(result, 4, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clCreateImage" => {
                let ctx = ClContext(handle(args, 0)?);
                let flags = MemFlags::from_bits(uint(args, 1)?);
                let desc = ImageDesc {
                    width: uint(args, 2)? as usize,
                    height: uint(args, 3)? as usize,
                    elem_size: uint(args, 4)? as usize,
                };
                let host = opt_bytes(args, 5)?;
                let result = cl.create_image(ctx, flags, desc, host).map(|m| m.0);
                if let Ok(silo) = result {
                    self.track_new(silo);
                    self.mem_info.insert(silo, (ctx.0, desc.byte_len()));
                }
                let (out, code) = create_ret(result, 6, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clRetainMemObject" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_mem_object(ClMem(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseMemObject" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_mem_object(ClMem(silo));
                if died {
                    self.mem_info.remove(&silo);
                }
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                Ok(out)
            }
            "clGetMemObjectInfo" => {
                let mem = ClMem(handle(args, 0)?);
                match cl.get_mem_object_info(mem) {
                    Ok(size) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 1) {
                            out.outputs.push((1, Value::U64(size as u64)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clCreateProgramWithSource" => {
                let ctx = ClContext(handle(args, 0)?);
                let source = string(args, 1)?;
                let result = cl.create_program_with_source(ctx, source).map(|p| p.0);
                if let Ok(silo) = result {
                    self.track_new(silo);
                }
                let (out, code) = create_ret(result, 2, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clBuildProgram" | "clCompileProgram" => {
                let program = ClProgram(handle(args, 0)?);
                let options = opt_string(args, 1)?;
                let r = if func.name == "clBuildProgram" {
                    cl.build_program(program, options)
                } else {
                    cl.compile_program(program, options)
                };
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clGetProgramBuildInfo" => {
                let program = ClProgram(handle(args, 0)?);
                let cap = uint(args, 1)? as usize;
                match cl.get_program_build_info(program) {
                    Ok(log) => {
                        let raw = log.into_bytes();
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 2) {
                            let n = raw.len().min(cap);
                            out.outputs
                                .push((2, Value::Bytes(raw[..n].to_vec().into())));
                        }
                        if wants(args, 3) {
                            out.outputs.push((3, Value::U64(raw.len() as u64)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clRetainProgram" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_program(ClProgram(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseProgram" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_program(ClProgram(silo));
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                Ok(out)
            }
            "clCreateKernel" => {
                let program = ClProgram(handle(args, 0)?);
                let name = string(args, 1)?;
                let result = cl.create_kernel(program, name).map(|k| k.0);
                if let Ok(silo) = result {
                    self.track_new(silo);
                }
                let (out, code) = create_ret(result, 2, args);
                self.last_create_status = code;
                Ok(out)
            }
            "clCreateKernelsInProgram" => {
                let program = ClProgram(handle(args, 0)?);
                let cap = uint(args, 1)? as usize;
                match cl.create_kernels_in_program(program) {
                    Ok(kernels) => {
                        for k in &kernels {
                            self.track_new(k.0);
                        }
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 2) {
                            let list: Vec<Value> = kernels
                                .iter()
                                .take(cap)
                                .map(|k| Value::Handle(k.0))
                                .collect();
                            out.outputs.push((2, Value::List(list)));
                        }
                        if wants(args, 3) {
                            out.outputs.push((3, Value::U32(kernels.len() as u32)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clRetainKernel" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_kernel(ClKernel(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseKernel" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_kernel(ClKernel(silo));
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                Ok(out)
            }
            "clSetKernelArg" => {
                let kernel = ClKernel(handle(args, 0)?);
                let index = uint(args, 1)? as u32;
                let value = bytes(args, 3)?;
                let r = cl.set_kernel_arg(kernel, index, KernelArg::Scalar(value.to_vec()));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clSetKernelArgMem" => {
                let kernel = ClKernel(handle(args, 0)?);
                let index = uint(args, 1)? as u32;
                let mem = ClMem(handle(args, 2)?);
                let r = cl.set_kernel_arg(kernel, index, KernelArg::Mem(mem));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clSetKernelArgLocal" => {
                let kernel = ClKernel(handle(args, 0)?);
                let index = uint(args, 1)? as u32;
                let size = uint(args, 2)? as usize;
                let r = cl.set_kernel_arg(kernel, index, KernelArg::Local(size));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clGetKernelWorkGroupInfo" => {
                let kernel = ClKernel(handle(args, 0)?);
                let device = ClDevice(handle(args, 1)?);
                match cl.get_kernel_work_group_info(kernel, device) {
                    Ok(size) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 2) {
                            out.outputs.push((2, Value::U64(size as u64)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clEnqueueNDRangeKernel" => {
                let queue = ClQueue(handle(args, 0)?);
                let kernel = ClKernel(handle(args, 1)?);
                let global = size_list(args, 4)?
                    .ok_or_else(|| ServerError::BadArguments("global_work_size is NULL".into()))?;
                let local = size_list(args, 5)?;
                let wait = events(args, 7)?;
                let want_event = wants(args, 8);
                let r = cl.enqueue_nd_range_kernel(
                    queue,
                    kernel,
                    dims(&global),
                    local.as_deref().map(dims),
                    &wait,
                    want_event,
                );
                match r {
                    Ok(ev) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if let Some(ev) = ev {
                            self.track_new(ev.0);
                            out.outputs.push((8, Value::Handle(ev.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clEnqueueTask" => {
                let queue = ClQueue(handle(args, 0)?);
                let kernel = ClKernel(handle(args, 1)?);
                let wait = events(args, 3)?;
                let want_event = wants(args, 4);
                match cl.enqueue_task(queue, kernel, &wait, want_event) {
                    Ok(ev) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if let Some(ev) = ev {
                            self.track_new(ev.0);
                            out.outputs.push((4, Value::Handle(ev.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clEnqueueReadBuffer" => {
                let queue = ClQueue(handle(args, 0)?);
                let mem = ClMem(handle(args, 1)?);
                let blocking = uint(args, 2)? != 0;
                let offset = uint(args, 3)? as usize;
                let size = uint(args, 4)? as usize;
                let wait = events(args, 7)?;
                let want_event = wants(args, 8);
                let mut data = vec![0u8; size];
                match cl
                    .enqueue_read_buffer(queue, mem, blocking, offset, &mut data, &wait, want_event)
                {
                    Ok(ev) => {
                        let mut out = status_ret(CL_SUCCESS);
                        out.outputs.push((5, Value::Bytes(data.into())));
                        if let Some(ev) = ev {
                            self.track_new(ev.0);
                            out.outputs.push((8, Value::Handle(ev.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clEnqueueWriteBuffer" => {
                let queue = ClQueue(handle(args, 0)?);
                let mem = ClMem(handle(args, 1)?);
                let blocking = uint(args, 2)? != 0;
                let offset = uint(args, 3)? as usize;
                let data = bytes(args, 5)?;
                let wait = events(args, 7)?;
                let want_event = wants(args, 8);
                match cl.enqueue_write_buffer(queue, mem, blocking, offset, data, &wait, want_event)
                {
                    Ok(ev) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if let Some(ev) = ev {
                            self.track_new(ev.0);
                            out.outputs.push((8, Value::Handle(ev.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clEnqueueCopyBuffer" => {
                let queue = ClQueue(handle(args, 0)?);
                let src = ClMem(handle(args, 1)?);
                let dst = ClMem(handle(args, 2)?);
                let src_offset = uint(args, 3)? as usize;
                let dst_offset = uint(args, 4)? as usize;
                let size = uint(args, 5)? as usize;
                let wait = events(args, 7)?;
                let want_event = wants(args, 8);
                match cl.enqueue_copy_buffer(
                    queue, src, dst, src_offset, dst_offset, size, &wait, want_event,
                ) {
                    Ok(ev) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if let Some(ev) = ev {
                            self.track_new(ev.0);
                            out.outputs.push((8, Value::Handle(ev.0)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clFlush" => {
                let r = cl.flush(ClQueue(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clFinish" => {
                let r = cl.finish(ClQueue(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clWaitForEvents" => {
                let list = events(args, 1)?;
                let r = cl.wait_for_events(&list);
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clGetEventInfo" => {
                let event = ClEvent(handle(args, 0)?);
                match cl.get_event_info(event) {
                    Ok(status) => {
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 1) {
                            out.outputs.push((1, Value::I32(status.to_cl())));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clGetEventProfilingInfo" => {
                let event = ClEvent(handle(args, 0)?);
                let param = uint(args, 1)? as u32;
                match cl.get_event_profiling_info(event) {
                    Ok(prof) => {
                        let value = match param {
                            code::CL_PROFILING_COMMAND_QUEUED => prof.queued,
                            code::CL_PROFILING_COMMAND_SUBMIT => prof.submitted,
                            code::CL_PROFILING_COMMAND_START => prof.started,
                            code::CL_PROFILING_COMMAND_END => prof.ended,
                            _ => return Ok(status_ret(CL_INVALID_VALUE)),
                        };
                        let mut out = status_ret(CL_SUCCESS);
                        if wants(args, 2) {
                            out.outputs.push((2, Value::U64(value)));
                        }
                        Ok(out)
                    }
                    Err(e) => Ok(status_ret(err_code(e))),
                }
            }
            "clRetainEvent" => {
                self.retain(handle(args, 0)?);
                let r = cl.retain_event(ClEvent(handle(args, 0)?));
                Ok(status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS)))
            }
            "clReleaseEvent" => {
                let silo = handle(args, 0)?;
                let died = self.release(silo);
                let r = cl.release_event(ClEvent(silo));
                let mut out = status_ret(r.err().map(err_code).unwrap_or(CL_SUCCESS));
                out.destroyed = Some(died);
                Ok(out)
            }
            other => Err(ServerError::Handler(format!(
                "unhandled function `{other}`"
            ))),
        }
    }

    fn swappable_kinds(&self) -> &[&str] {
        &["cl_mem"]
    }

    fn snapshot_object(&mut self, kind: &str, silo: u64) -> Option<Vec<u8>> {
        if kind != "cl_mem" {
            return None;
        }
        let (ctx, size) = *self.mem_info.get(&silo)?;
        let queue = self.internal_queue(ctx).ok()?;
        let mut data = vec![0u8; size];
        self.cl
            .enqueue_read_buffer(queue, ClMem(silo), true, 0, &mut data, &[], false)
            .ok()?;
        Some(data)
    }

    fn restore_object(&mut self, kind: &str, silo: u64, data: &[u8]) -> bool {
        if kind != "cl_mem" {
            return false;
        }
        let Some((ctx, size)) = self.mem_info.get(&silo).copied() else {
            return false;
        };
        if data.len() != size {
            return false;
        }
        let Ok(queue) = self.internal_queue(ctx) else {
            return false;
        };
        self.cl
            .enqueue_write_buffer(queue, ClMem(silo), true, 0, data, &[], false)
            .is_ok()
    }

    fn drop_object(&mut self, kind: &str, silo: u64) -> bool {
        let ok = match kind {
            "cl_mem" => {
                self.mem_info.remove(&silo);
                self.cl.release_mem_object(ClMem(silo)).is_ok()
            }
            "cl_context" => {
                if let Some(q) = self.internal_queues.remove(&silo) {
                    let _ = self.cl.release_command_queue(q);
                }
                self.cl.release_context(ClContext(silo)).is_ok()
            }
            "cl_command_queue" => self.cl.release_command_queue(ClQueue(silo)).is_ok(),
            "cl_program" => self.cl.release_program(ClProgram(silo)).is_ok(),
            "cl_kernel" => self.cl.release_kernel(ClKernel(silo)).is_ok(),
            "cl_event" => self.cl.release_event(ClEvent(silo)).is_ok(),
            _ => false,
        };
        if ok {
            self.refs.remove(&silo);
        }
        ok
    }

    fn ret_indicates_oom(&self, func: &FunctionDesc, ret: &Value) -> bool {
        matches!(func.name.as_str(), "clCreateBuffer" | "clCreateImage")
            && ret.is_null()
            && self.last_create_status == CL_MEM_OBJECT_ALLOCATION_FAILURE
    }
}
