//! Sliding-window SLO evaluation over the registry.
//!
//! An [`SloMonitor`] is driven periodically (the stack's supervisor
//! thread calls [`SloMonitor::evaluate`] each sweep). Every evaluation
//! scrapes the cumulative registry and differences it against the
//! previous scrape, so each window covers exactly the traffic between
//! two sweeps — windowed p99 comes from histogram *bucket deltas*,
//! windowed retry rate from counter deltas, and queue depth is read
//! directly from the live gauges. Objectives come from [`SloConfig`];
//! a breach produces an [`SloViolation`], bumps the subject's burn
//! gauge (`slo.vm<N>.*` / `slo.slot<N>.*` — consecutive violating
//! windows), and emits an [`EventKind::SloViolation`] flight-recorder
//! event so the timeline shows *when* service quality degraded.
//!
//! Violations are evaluated per **VM** (the guest's contractual view)
//! and per **slot** (aggregated over the VMs placed there) — the slot
//! view is what the rebalance watchdog consults before migrating.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::histogram::{HistogramSnapshot, BUCKETS};
use crate::recorder::{Event, EventKind, Tier};
use crate::registry::Registry;

/// SLO targets; `None` disables the corresponding objective.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SloConfig {
    /// Per-VM and per-slot p99 end-to-end latency target (nanoseconds),
    /// evaluated over each window's `guest.vm<N>.e2e_ns` bucket deltas.
    pub p99_e2e_ns: Option<u64>,
    /// Maximum retries per issued call over a window (e.g. `0.05`).
    pub max_retry_rate: Option<f64>,
    /// Maximum instantaneous per-slot queue depth.
    pub max_queue_depth: Option<f64>,
    /// Minimum calls in a window before latency/rate objectives are
    /// judged — tiny samples produce garbage percentiles.
    pub min_window_calls: u64,
}

impl SloConfig {
    /// A config with the given p99 target and a sane minimum sample size.
    pub fn p99(p99_e2e_ns: u64) -> Self {
        SloConfig {
            p99_e2e_ns: Some(p99_e2e_ns),
            min_window_calls: 16,
            ..Default::default()
        }
    }

    /// True if at least one objective is set.
    pub fn any_enabled(&self) -> bool {
        self.p99_e2e_ns.is_some() || self.max_retry_rate.is_some() || self.max_queue_depth.is_some()
    }
}

/// What entity breached an objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloSubject {
    /// A guest VM, by id.
    Vm(u32),
    /// A pool slot, by index.
    Slot(usize),
}

/// Which objective was breached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloObjective {
    /// Windowed p99 end-to-end latency above target.
    P99Latency,
    /// Windowed retry rate above target.
    RetryRate,
    /// Instantaneous queue depth above target.
    QueueDepth,
}

impl SloObjective {
    /// Stable snake_case name (used in burn gauge names).
    pub fn name(self) -> &'static str {
        match self {
            SloObjective::P99Latency => "p99_e2e",
            SloObjective::RetryRate => "retry_rate",
            SloObjective::QueueDepth => "queue_depth",
        }
    }

    fn discriminant(self) -> u64 {
        match self {
            SloObjective::P99Latency => 0,
            SloObjective::RetryRate => 1,
            SloObjective::QueueDepth => 2,
        }
    }
}

/// One objective breach observed in the latest window.
#[derive(Clone, Debug, PartialEq)]
pub struct SloViolation {
    /// Breaching entity.
    pub subject: SloSubject,
    /// Breached objective.
    pub objective: SloObjective,
    /// Observed value (ns for latency, ratio for rates, depth for
    /// queues).
    pub observed: f64,
    /// Configured target.
    pub target: f64,
    /// Consecutive windows (including this one) the breach has held.
    pub burn: u64,
}

#[derive(Default)]
struct WindowState {
    /// Previous cumulative per-VM e2e histograms.
    prev_hists: BTreeMap<u32, HistogramSnapshot>,
    /// Previous cumulative per-VM (retries, calls).
    prev_counts: BTreeMap<u32, (u64, u64)>,
    /// Consecutive violating windows per (subject, objective).
    burn: BTreeMap<(SloSubject, SloObjective), u64>,
    /// Latest evaluation's violations.
    violations: Vec<SloViolation>,
    /// Windows evaluated so far.
    windows: u64,
}

/// Evaluates SLO objectives over consecutive registry scrapes.
pub struct SloMonitor {
    registry: Registry,
    config: SloConfig,
    state: Mutex<WindowState>,
}

/// Bucket-wise difference `now - prev` of two cumulative histogram
/// snapshots; `max` is clamped to the cumulative max (exact windowed max
/// is unknowable from deltas, and the clamp only tightens percentiles).
fn hist_delta(now: &HistogramSnapshot, prev: Option<&HistogramSnapshot>) -> HistogramSnapshot {
    match prev {
        None => now.clone(),
        Some(p) => HistogramSnapshot {
            buckets: std::array::from_fn(|i| now.buckets[i].saturating_sub(p.buckets[i])),
            count: now.count.saturating_sub(p.count),
            sum: now.sum.saturating_sub(p.sum),
            max: now.max,
        },
    }
}

fn merge_into(acc: &mut HistogramSnapshot, h: &HistogramSnapshot) {
    for i in 0..BUCKETS {
        acc.buckets[i] += h.buckets[i];
    }
    acc.count += h.count;
    acc.sum += h.sum;
    acc.max = acc.max.max(h.max);
}

fn empty_hist() -> HistogramSnapshot {
    HistogramSnapshot {
        buckets: [0; BUCKETS],
        count: 0,
        sum: 0,
        max: 0,
    }
}

/// Parses the `<N>` out of `guest.vm<N>.e2e_ns`.
fn e2e_vm(name: &str) -> Option<u32> {
    name.strip_prefix("guest.vm")?
        .strip_suffix(".e2e_ns")?
        .parse()
        .ok()
}

impl SloMonitor {
    /// Creates a monitor over `registry` with the given targets.
    pub fn new(registry: Registry, config: SloConfig) -> Self {
        SloMonitor {
            registry,
            config,
            state: Mutex::new(WindowState::default()),
        }
    }

    /// The configured targets.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Latest window's violations (empty until the first breach).
    pub fn violations(&self) -> Vec<SloViolation> {
        self.state
            .lock()
            .expect("slo monitor poisoned")
            .violations
            .clone()
    }

    /// Number of windows evaluated so far.
    pub fn windows_evaluated(&self) -> u64 {
        self.state.lock().expect("slo monitor poisoned").windows
    }

    /// Evaluates one window. `placements` maps each live VM to its pool
    /// slot (empty when the stack runs without a pool) — it scopes the
    /// per-slot aggregation. Returns the violations found this window.
    pub fn evaluate(&self, placements: &[(u32, usize)]) -> Vec<SloViolation> {
        let snapshot = self.registry.snapshot();
        let mut state = self.state.lock().expect("slo monitor poisoned");
        state.windows += 1;
        let mut breaches: Vec<(SloSubject, SloObjective, f64, f64)> = Vec::new();

        // Windowed per-VM e2e latency histograms, and their per-slot
        // aggregates.
        let mut slot_hists: BTreeMap<usize, HistogramSnapshot> = BTreeMap::new();
        for (name, hist) in &snapshot.histograms {
            let Some(vm) = e2e_vm(name) else { continue };
            let window = hist_delta(hist, state.prev_hists.get(&vm));
            state.prev_hists.insert(vm, hist.clone());
            if let Some(slot) = placements.iter().find(|(v, _)| *v == vm).map(|(_, s)| *s) {
                merge_into(slot_hists.entry(slot).or_insert_with(empty_hist), &window);
            }
            if let Some(target) = self.config.p99_e2e_ns {
                if window.count >= self.config.min_window_calls.max(1) {
                    let p99 = window.percentile(0.99);
                    if p99 > target {
                        breaches.push((
                            SloSubject::Vm(vm),
                            SloObjective::P99Latency,
                            p99 as f64,
                            target as f64,
                        ));
                    }
                }
            }
        }
        if let Some(target) = self.config.p99_e2e_ns {
            for (slot, window) in &slot_hists {
                if window.count >= self.config.min_window_calls.max(1) {
                    let p99 = window.percentile(0.99);
                    if p99 > target {
                        breaches.push((
                            SloSubject::Slot(*slot),
                            SloObjective::P99Latency,
                            p99 as f64,
                            target as f64,
                        ));
                    }
                }
            }
        }

        // Windowed per-VM retry rate.
        if let Some(target) = self.config.max_retry_rate {
            for (vm, _) in placements {
                let retries = snapshot
                    .counters
                    .get(&format!("guest.vm{vm}.retries"))
                    .copied()
                    .unwrap_or(0);
                let calls = snapshot
                    .counters
                    .get(&format!("guest.vm{vm}.sync_calls"))
                    .copied()
                    .unwrap_or(0)
                    + snapshot
                        .counters
                        .get(&format!("guest.vm{vm}.async_calls"))
                        .copied()
                        .unwrap_or(0);
                let (prev_retries, prev_calls) =
                    state.prev_counts.get(vm).copied().unwrap_or((0, 0));
                state.prev_counts.insert(*vm, (retries, calls));
                let d_calls = calls.saturating_sub(prev_calls);
                let d_retries = retries.saturating_sub(prev_retries);
                if d_calls >= self.config.min_window_calls.max(1) {
                    let rate = d_retries as f64 / d_calls as f64;
                    if rate > target {
                        breaches.push((SloSubject::Vm(*vm), SloObjective::RetryRate, rate, target));
                    }
                }
            }
        }

        // Instantaneous per-slot queue depth.
        if let Some(target) = self.config.max_queue_depth {
            for (name, depth) in &snapshot.gauges {
                let Some(slot) = name
                    .strip_prefix("pool.slot")
                    .and_then(|r| r.strip_suffix(".queue_depth"))
                    .and_then(|r| r.parse::<usize>().ok())
                else {
                    continue;
                };
                if *depth > target {
                    breaches.push((
                        SloSubject::Slot(slot),
                        SloObjective::QueueDepth,
                        *depth,
                        target,
                    ));
                }
            }
        }

        // Burn accounting: consecutive violating windows per objective.
        // Subjects that stopped violating reset to zero (and clear their
        // gauge); new breaches bump and emit a recorder event.
        let breached_keys: Vec<(SloSubject, SloObjective)> =
            breaches.iter().map(|(s, o, _, _)| (*s, *o)).collect();
        let cleared: Vec<(SloSubject, SloObjective)> = state
            .burn
            .keys()
            .filter(|k| !breached_keys.contains(k))
            .copied()
            .collect();
        for key in cleared {
            state.burn.remove(&key);
            self.registry
                .gauge(&Self::burn_gauge_name(key.0, key.1))
                .set(0.0);
        }
        let mut violations = Vec::with_capacity(breaches.len());
        for (subject, objective, observed, target) in breaches {
            let burn = state.burn.entry((subject, objective)).or_insert(0);
            *burn += 1;
            self.registry
                .gauge(&Self::burn_gauge_name(subject, objective))
                .set(*burn as f64);
            let (vm, arg_slot) = match subject {
                SloSubject::Vm(v) => (v, 0u64),
                SloSubject::Slot(s) => (0, s as u64),
            };
            self.registry.recorder().record(Event {
                nanos: self.registry.now_nanos(),
                tier: Tier::Supervisor,
                kind: EventKind::SloViolation,
                vm,
                call_id: arg_slot,
                arg: objective.discriminant(),
            });
            violations.push(SloViolation {
                subject,
                objective,
                observed,
                target,
                burn: *burn,
            });
        }
        state.violations = violations.clone();
        violations
    }

    fn burn_gauge_name(subject: SloSubject, objective: SloObjective) -> String {
        match subject {
            SloSubject::Vm(v) => format!("slo.vm{v}.{}_burn", objective.name()),
            SloSubject::Slot(s) => format!("slo.slot{s}.{}_burn", objective.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_e2e(r: &Registry, vm: u32, value_ns: u64, n: usize) {
        let h = r.histogram(&format!("guest.vm{vm}.e2e_ns"));
        for _ in 0..n {
            h.record(value_ns);
        }
    }

    #[test]
    fn quiet_stack_has_no_violations() {
        let r = Registry::new();
        let m = SloMonitor::new(r.clone(), SloConfig::p99(1_000_000));
        record_e2e(&r, 1, 10_000, 64);
        assert!(m.evaluate(&[(1, 0)]).is_empty());
        assert!(m.violations().is_empty());
    }

    #[test]
    fn slow_window_flips_vm_and_slot_p99() {
        let r = Registry::new();
        let m = SloMonitor::new(r.clone(), SloConfig::p99(100_000));
        // Fast first window establishes the baseline scrape.
        record_e2e(&r, 1, 10_000, 64);
        assert!(m.evaluate(&[(1, 0)]).is_empty());
        // Slow second window: deltas are all 8ms samples.
        record_e2e(&r, 1, 8_000_000, 64);
        let v = m.evaluate(&[(1, 0)]);
        assert!(
            v.iter()
                .any(|x| x.subject == SloSubject::Vm(1) && x.objective == SloObjective::P99Latency),
            "vm violation expected: {v:?}"
        );
        assert!(
            v.iter().any(|x| x.subject == SloSubject::Slot(0)),
            "slot violation expected: {v:?}"
        );
        // Burn gauge is live in the registry and the recorder saw it.
        let snap = r.snapshot();
        assert_eq!(snap.gauges["slo.vm1.p99_e2e_burn"], 1.0);
        assert!(snap
            .events
            .iter()
            .any(|e| e.kind == EventKind::SloViolation));
        // A fast third window clears the burn.
        record_e2e(&r, 1, 10_000, 64);
        assert!(m.evaluate(&[(1, 0)]).is_empty());
        assert_eq!(r.snapshot().gauges["slo.vm1.p99_e2e_burn"], 0.0);
    }

    #[test]
    fn small_windows_are_not_judged() {
        let r = Registry::new();
        let mut config = SloConfig::p99(100);
        config.min_window_calls = 32;
        let m = SloMonitor::new(r.clone(), config);
        record_e2e(&r, 2, 1_000_000, 8); // violating values, tiny sample
        assert!(m.evaluate(&[(2, 0)]).is_empty());
    }

    #[test]
    fn queue_depth_is_instantaneous() {
        let r = Registry::new();
        let config = SloConfig {
            max_queue_depth: Some(4.0),
            ..Default::default()
        };
        let m = SloMonitor::new(r.clone(), config);
        r.gauge("pool.slot1.queue_depth").set(9.0);
        let v = m.evaluate(&[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].subject, SloSubject::Slot(1));
        assert_eq!(v[0].objective, SloObjective::QueueDepth);
        assert_eq!(v[0].observed, 9.0);
    }

    #[test]
    fn retry_rate_uses_window_deltas() {
        let r = Registry::new();
        let config = SloConfig {
            max_retry_rate: Some(0.1),
            min_window_calls: 10,
            ..Default::default()
        };
        let m = SloMonitor::new(r.clone(), config);
        r.counter("guest.vm3.sync_calls").add(100);
        r.counter("guest.vm3.retries").add(50);
        // First window: 50/100 over target.
        assert_eq!(m.evaluate(&[(3, 0)]).len(), 1);
        // Second window adds clean traffic only: delta rate is 0.
        r.counter("guest.vm3.sync_calls").add(100);
        assert!(m.evaluate(&[(3, 0)]).is_empty());
    }
}
