//! End-to-end tests for the shared device pool: placement policies,
//! slot-sharing correctness, live rebalancing, pooled crash recovery and
//! the load watchdog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_core::{
    opencl_pool_stack, opencl_stack, OpenClClient, PlacementPolicy, StackConfig, StackError,
};
use ava_hypervisor::VmPolicy;
use ava_transport::{CostModel, TransportKind};
use simcl::types::*;
use simcl::{ClApi, SimCl};

fn pool_config(placement: PlacementPolicy) -> StackConfig {
    StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        placement,
        ..StackConfig::default()
    }
}

fn silos(n: usize) -> Vec<SimCl> {
    (0..n).map(|_| SimCl::new()).collect()
}

/// The same saxpy pipeline as `virtualized_e2e`, against any ClApi.
fn run_saxpy(api: &dyn ClApi, n: usize) -> Vec<f32> {
    let platform = api.get_platform_ids().unwrap()[0];
    let device = api.get_device_ids(platform, DeviceType::Gpu).unwrap()[0];
    let ctx = api.create_context(device).unwrap();
    let queue = api
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let program = api
        .create_program_with_source(ctx, simcl::kernels::builtins::SOURCE)
        .unwrap();
    api.build_program(program, "").unwrap();
    let kernel = api.create_kernel(program, "saxpy").unwrap();

    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = vec![10.0; n];
    let bx = api
        .create_buffer(
            ctx,
            MemFlags::read_only(),
            4 * n,
            Some(&simcl::mem::f32_to_bytes(&x)),
        )
        .unwrap();
    let by = api
        .create_buffer(
            ctx,
            MemFlags::read_write(),
            4 * n,
            Some(&simcl::mem::f32_to_bytes(&y)),
        )
        .unwrap();
    api.set_kernel_arg(kernel, 0, KernelArg::Mem(bx)).unwrap();
    api.set_kernel_arg(kernel, 1, KernelArg::Mem(by)).unwrap();
    api.set_kernel_arg(kernel, 2, KernelArg::from_f32(3.0))
        .unwrap();
    api.set_kernel_arg(kernel, 3, KernelArg::from_u32(n as u32))
        .unwrap();
    api.enqueue_nd_range_kernel(queue, kernel, [n, 1, 1], None, &[], false)
        .unwrap();
    let mut out = vec![0u8; 4 * n];
    api.enqueue_read_buffer(queue, by, true, 0, &mut out, &[], false)
        .unwrap();
    api.release_kernel(kernel).unwrap();
    api.release_program(program).unwrap();
    api.release_mem_object(bx).unwrap();
    api.release_mem_object(by).unwrap();
    api.finish(queue).unwrap();
    api.release_command_queue(queue).unwrap();
    api.release_context(ctx).unwrap();
    simcl::mem::bytes_to_f32(&out)
}

#[test]
fn default_config_keeps_private_devices() {
    let stack = opencl_stack(SimCl::new(), pool_config(PlacementPolicy::RoundRobin)).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    assert_eq!(run_saxpy(&client, 64)[1], 13.0);
    // No pool: no slot binding, no pool stats, rebalance refuses.
    assert_eq!(stack.vm_slot(vm), None);
    assert!(stack.pool_stats().is_empty());
    assert!(matches!(
        stack.rebalance_vm(vm, 0),
        Err(StackError::NotPooled)
    ));
}

#[test]
fn two_vms_on_one_slot_match_solo_runs_bit_identically() {
    let n = 512;
    // Oracle: a solo run on a private, non-pooled stack.
    let solo = {
        let stack = opencl_stack(SimCl::new(), pool_config(PlacementPolicy::RoundRobin)).unwrap();
        let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        run_saxpy(&OpenClClient::new(lib), n)
    };

    // Two VMs pinned to the single slot of a one-device pool, running
    // concurrently: contention must never change results.
    let stack = opencl_pool_stack(silos(1), pool_config(PlacementPolicy::RoundRobin)).unwrap();
    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_a), Some(0));
    assert_eq!(stack.vm_slot(vm_b), Some(0));

    let ta = std::thread::spawn(move || run_saxpy(&OpenClClient::new(lib_a), n));
    let tb = std::thread::spawn(move || run_saxpy(&OpenClClient::new(lib_b), n));
    let ra = ta.join().unwrap();
    let rb = tb.join().unwrap();
    assert_eq!(ra, solo);
    assert_eq!(rb, solo);

    let stats = stack.pool_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].vms, 2);
    assert!(
        stats[0].device_time_ms > 0.0,
        "dispatches must be timed into the slot gauge: {stats:?}"
    );
}

#[test]
fn round_robin_placement_cycles_slots() {
    let stack = opencl_pool_stack(silos(3), pool_config(PlacementPolicy::RoundRobin)).unwrap();
    let mut slots = Vec::new();
    for _ in 0..5 {
        let (vm, _lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        slots.push(stack.vm_slot(vm).unwrap());
    }
    assert_eq!(slots, vec![0, 1, 2, 0, 1]);
    let stats = stack.pool_stats();
    assert_eq!(
        stats.iter().map(|s| s.vms).collect::<Vec<_>>(),
        vec![2, 2, 1]
    );
}

#[test]
fn packed_placement_fills_one_slot_first() {
    let stack = opencl_pool_stack(silos(2), pool_config(PlacementPolicy::Packed)).unwrap();
    for _ in 0..3 {
        let (vm, _lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        assert_eq!(stack.vm_slot(vm), Some(0));
    }
    assert_eq!(stack.pool_stats()[0].vms, 3);
    assert_eq!(stack.pool_stats()[1].vms, 0);
}

#[test]
fn least_loaded_placement_spreads_asymmetric_load() {
    let stack = opencl_pool_stack(silos(2), pool_config(PlacementPolicy::LeastLoaded)).unwrap();

    // First VM: everything idle, ties resolve to slot 0. Run heavy work
    // so the router accumulates estimated device time against slot 0.
    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_a), Some(0));
    let client_a = OpenClClient::new(lib_a);
    for _ in 0..4 {
        run_saxpy(&client_a, 2048);
    }

    // Second VM must land on the idle slot 1.
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_b), Some(1));

    // A little load on slot 1 — still far less than slot 0 — so the third
    // VM joins slot 1 too (least *load*, not least population).
    run_saxpy(&OpenClClient::new(lib_b), 64);
    let (vm_c, _lib_c) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_c), Some(1));
}

#[test]
fn rebalance_vm_mid_workload_preserves_results() {
    let iters = 24usize;
    let payload_len = 4096usize;

    // Oracle: the same write/mutate/read loop run locally.
    let oracle_checksum = {
        let mut payload: Vec<u8> = (0..payload_len).map(|i| (i * 131 % 251) as u8).collect();
        let mut checksum = 0u64;
        for epoch in 0..iters {
            payload[0] = payload[0].wrapping_add(epoch as u8);
            checksum = checksum.wrapping_add(payload.iter().map(|&b| u64::from(b)).sum::<u64>());
        }
        checksum
    };

    let stack =
        Arc::new(opencl_pool_stack(silos(2), pool_config(PlacementPolicy::RoundRobin)).unwrap());
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm), Some(0));
    let client = OpenClClient::new(lib);

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let buf = client
        .create_buffer(ctx, MemFlags::read_write(), payload_len, None)
        .unwrap();

    // The workload hammers write→read round trips while the main thread
    // live-migrates the VM to the other slot mid-stream. Every round trip
    // must read back exactly what it wrote, rebalance or not.
    let stack_ref = Arc::clone(&stack);
    let worker = std::thread::spawn(move || {
        let _ = &stack_ref;
        let mut payload: Vec<u8> = (0..payload_len).map(|i| (i * 131 % 251) as u8).collect();
        let mut checksum = 0u64;
        for epoch in 0..iters {
            payload[0] = payload[0].wrapping_add(epoch as u8);
            client
                .enqueue_write_buffer(queue, buf, true, 0, &payload, &[], false)
                .unwrap();
            let mut out = vec![0u8; payload_len];
            client
                .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
                .unwrap();
            assert_eq!(out, payload, "epoch {epoch} round trip corrupted");
            checksum = checksum.wrapping_add(out.iter().map(|&b| u64::from(b)).sum::<u64>());
        }
        checksum
    });

    // Let a few epochs land on slot 0, then move the VM to slot 1 while
    // the workload keeps issuing calls.
    std::thread::sleep(Duration::from_millis(20));
    stack.rebalance_vm(vm, 1).unwrap();
    assert_eq!(stack.vm_slot(vm), Some(1));

    let checksum = worker.join().unwrap();
    assert_eq!(checksum, oracle_checksum);

    let stats = stack.pool_stats();
    assert_eq!(stats[0].vms, 0);
    assert_eq!(stats[1].vms, 1);
    assert!(
        stats[1].device_time_ms > 0.0,
        "post-rebalance work must be billed to the destination slot"
    );

    // Rebalancing to the current slot is a no-op; out-of-range fails.
    stack.rebalance_vm(vm, 1).unwrap();
    assert!(matches!(
        stack.rebalance_vm(vm, 9),
        Err(StackError::UnknownSlot(9))
    ));
}

#[test]
fn pooled_vm_recovers_onto_its_slot_after_crash() {
    let mut config = pool_config(PlacementPolicy::RoundRobin);
    config.supervision_interval = Duration::from_millis(2);
    let stack = opencl_pool_stack(silos(1), config).unwrap();
    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (_vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    let a = OpenClClient::new(lib_a);
    let b = OpenClClient::new(lib_b);

    // Both slot-mates set up state on the shared device.
    let marker_a: Vec<u8> = (0..=255).rev().collect();
    let platform = a.get_platform_ids().unwrap()[0];
    let device = a.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx_a = a.create_context(device).unwrap();
    let queue_a = a
        .create_command_queue(ctx_a, device, QueueProps::default())
        .unwrap();
    let buf_a = a
        .create_buffer(ctx_a, MemFlags::read_write(), 256, Some(&marker_a))
        .unwrap();
    a.finish(queue_a).unwrap();
    assert_eq!(run_saxpy(&b, 64)[1], 13.0);

    // Kill A's API server mid-flight; the supervisor replays its journal
    // onto the *same* slot's device.
    stack.crash_vm_server(vm_a).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while stack.recovery_stats().respawns == 0 {
        assert!(Instant::now() < deadline, "supervisor never respawned");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        stack.vm_slot(vm_a),
        Some(0),
        "recovery must not move the VM"
    );
    assert!(stack.recovery_stats().replayed_calls > 0);

    // A's handles (minted pre-crash) still resolve, and its data survived.
    let mut out = vec![0u8; 256];
    a.enqueue_read_buffer(queue_a, buf_a, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(out, marker_a);
    // The slot-mate was never disturbed.
    assert_eq!(run_saxpy(&b, 64)[1], 13.0);
}

#[test]
fn load_watchdog_moves_a_vm_off_the_hot_slot() {
    let mut config = pool_config(PlacementPolicy::Packed);
    config.supervision_interval = Duration::from_millis(2);
    config.rebalance_interval = Duration::from_millis(25);
    config.rebalance_threshold_ms = Some(1.0);
    let stack = Arc::new(opencl_pool_stack(silos(2), config).unwrap());

    // Packed placement piles both VMs onto slot 0; slot 1 sits idle.
    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_a), Some(0));
    assert_eq!(stack.vm_slot(vm_b), Some(0));

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for lib in [lib_a, lib_b] {
        let stop = Arc::clone(&stop);
        let stack_ref = Arc::clone(&stack);
        workers.push(std::thread::spawn(move || {
            let _ = &stack_ref;
            let client = OpenClClient::new(lib);
            while !stop.load(Ordering::Acquire) {
                assert_eq!(run_saxpy(&client, 256)[1], 13.0);
            }
        }));
    }

    // The hot slot burns real device time every interval while the cold
    // one burns none, so the watchdog must split the pair.
    let deadline = Instant::now() + Duration::from_secs(20);
    let moved = loop {
        let a = stack.vm_slot(vm_a).unwrap();
        let b = stack.vm_slot(vm_b).unwrap();
        if a != b {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }
    assert!(moved, "watchdog never rebalanced the hot slot");
    let stats = stack.pool_stats();
    assert_eq!(stats[0].vms, 1);
    assert_eq!(stats[1].vms, 1);
}

#[test]
fn slo_violation_flips_api_and_watchdog_migrates_off_the_violating_slot() {
    use ava_telemetry::{Registry, SloConfig, SloObjective, SloSubject};

    let mut config = pool_config(PlacementPolicy::Packed);
    config.supervision_interval = Duration::from_millis(2);
    config.rebalance_interval = Duration::from_millis(25);
    // No device-time threshold: any migration must come from the SLO path.
    config.rebalance_threshold_ms = None;
    // A 1 ns p99 target no real call can meet — slot 0 (both VMs packed
    // onto it) enters violation as soon as one window carries traffic.
    config.slo = Some(SloConfig::p99(1));
    let stack = Arc::new(opencl_pool_stack(silos(2), config).unwrap());
    stack.set_telemetry(Registry::new()).unwrap();

    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_eq!(stack.vm_slot(vm_a), Some(0));
    assert_eq!(stack.vm_slot(vm_b), Some(0));
    // No windows evaluated yet: the API reports a clean slate.
    assert!(stack.slo_violations().is_empty());

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for lib in [lib_a, lib_b] {
        let stop = Arc::clone(&stop);
        let stack_ref = Arc::clone(&stack);
        workers.push(std::thread::spawn(move || {
            let _ = &stack_ref;
            let client = OpenClClient::new(lib);
            while !stop.load(Ordering::Acquire) {
                assert_eq!(run_saxpy(&client, 256)[1], 13.0);
            }
        }));
    }

    // First the monitor must flag slot 0's p99, then the watchdog must
    // treat the violating slot as hot and split the pair — with the
    // threshold disabled, the SLO verdict is the only migration trigger.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut violated = false;
    let moved = loop {
        violated |= stack
            .slo_violations()
            .iter()
            .any(|v| v.subject == SloSubject::Slot(0) && v.objective == SloObjective::P99Latency);
        let a = stack.vm_slot(vm_a).unwrap();
        let b = stack.vm_slot(vm_b).unwrap();
        if violated && a != b {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }
    assert!(
        violated,
        "SLO monitor never flagged the unmeetable p99 target"
    );
    assert!(moved, "watchdog never migrated a VM off the violating slot");
    let stats = stack.pool_stats();
    assert_eq!(stats[0].vms, 1);
    assert_eq!(stats[1].vms, 1);
}
