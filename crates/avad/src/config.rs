//! Schema-validated `avad` configuration.
//!
//! The daemon layer is deliberately thin: every semantic knob here maps
//! onto an existing engine type ([`StackConfig`], [`RouterConfig`]'s
//! admission fields, [`BrownoutConfig`], [`SloConfig`],
//! [`PolicyDefaults`]) — the config file adds *no* behaviour of its own.
//! Validation is mandatory and total: `AvadConfig::from_str` collects
//! **every** schema and cross-field violation instead of bailing at the
//! first, so `avad --check-config` prints the whole repair list at once.
//!
//! [`RouterConfig`]: ava_hypervisor::RouterConfig

use std::collections::BTreeMap;
use std::fmt;
use std::net::SocketAddr;
use std::time::Duration;

use ava_core::{BrownoutConfig, PolicyDefaults, StackConfig};
use ava_hypervisor::{BreakerConfig, PlacementPolicy, SchedulerKind};
use ava_telemetry::SloConfig;
use ava_transport::{CostModel, TransportKind};

use crate::toml::{self, TomlTable, TomlValue};

/// Maximum per-VM overcommit the config accepts: a quota may promise at
/// most this many times the device's resident capacity (the swap store
/// absorbs the difference; beyond this the fault-in path only thrashes).
pub const MAX_QUOTA_OVERCOMMIT: u64 = 8;

/// One config violation: the offending key path plus an actionable
/// message. `Display` renders `path: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Dotted config path (`stack.slot_inflight`).
    pub path: String,
    /// What is wrong and what would fix it.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Compares two secrets without short-circuiting on the first differing
/// byte: every byte position up to the longer length is visited and
/// folded into one accumulator, so match time does not reveal how long a
/// correct prefix the candidate had.
fn constant_time_eq(expected: &str, candidate: &str) -> bool {
    let a = expected.as_bytes();
    let b = candidate.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

fn violation(out: &mut Vec<Violation>, path: impl Into<String>, message: impl Into<String>) {
    out.push(Violation {
        path: path.into(),
        message: message.into(),
    });
}

/// `[daemon]` — the HTTP front door itself.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonSection {
    /// Listen address (`host:port`; port 0 binds a scratch port).
    pub listen: String,
    /// Where the flight-recorder trace is flushed on graceful shutdown
    /// (Chrome-trace JSON). `None` skips the flush.
    pub flight_record: Option<String>,
    /// Enables the test-only surface: `POST /vms/{id}/crash` and fault
    /// plans on VM creation. Production configs leave this off.
    pub enable_test_hooks: bool,
    /// How long shutdown waits for in-flight HTTP requests to finish
    /// before detaching VMs.
    pub drain_timeout_ms: u64,
}

impl Default for DaemonSection {
    fn default() -> Self {
        DaemonSection {
            listen: "127.0.0.1:7680".to_string(),
            flight_record: None,
            enable_test_hooks: false,
            drain_timeout_ms: 2_000,
        }
    }
}

/// `[stack]` — engine topology ([`StackConfig`] minus guest behaviour).
#[derive(Debug, Clone, PartialEq)]
pub struct StackSection {
    /// Which API the daemon serves (`opencl`).
    pub api: String,
    /// Guest↔hypervisor transport: `inproc`, `shmem`, or `tcp`.
    pub transport: String,
    /// Transport cost model: `free`, `paravirtual`, or `network`.
    pub cost_model: String,
    /// Cross-VM scheduler: `fifo`, `fair_share`, or `priority`.
    pub scheduler: String,
    /// Shared-device pool size; 0 = private device per VM.
    pub pool_size: u64,
    /// Placement policy: `round_robin`, `least_loaded`, or `packed`.
    pub placement: String,
    /// Per-slot sync in-flight budget.
    pub slot_inflight: u64,
    /// Supervisor respawn budget per VM.
    pub max_respawns: u64,
    /// Load-watchdog migration threshold (ms of device-time gap per
    /// interval); unset disables the watchdog.
    pub rebalance_threshold_ms: Option<f64>,
    /// Watchdog / SLO evaluation cadence.
    pub rebalance_interval_ms: u64,
    /// Soft per-device resident-memory ceiling in bytes.
    pub device_mem_capacity: Option<u64>,
    /// Stack-wide default per-VM device-memory quota in bytes.
    pub device_mem_quota: Option<u64>,
}

impl Default for StackSection {
    fn default() -> Self {
        let d = StackConfig::default();
        StackSection {
            api: "opencl".to_string(),
            transport: "shmem".to_string(),
            cost_model: "paravirtual".to_string(),
            scheduler: "fifo".to_string(),
            pool_size: 0,
            placement: "round_robin".to_string(),
            slot_inflight: d.slot_inflight as u64,
            max_respawns: u64::from(d.max_respawns),
            rebalance_threshold_ms: None,
            rebalance_interval_ms: d.rebalance_interval.as_millis() as u64,
            device_mem_capacity: None,
            device_mem_quota: None,
        }
    }
}

/// `[guest]` — guest-library behaviour ([`ava_core::GuestConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GuestSection {
    /// Adaptive-batching size limit (calls per frame); 0 disables.
    pub batch_max_calls: u64,
    /// Adaptive-batching age limit in µs; 0 disables age flushing.
    pub batch_max_delay_us: u64,
    /// Transfer-cache entries; 0 disables payload elision.
    pub payload_cache_entries: u64,
    /// Smallest payload eligible for elision, bytes.
    pub payload_cache_min_bytes: u64,
    /// Per-attempt sync-call deadline in ms; unset waits forever.
    pub call_deadline_ms: Option<u64>,
    /// Retry budget for timed-out calls.
    pub max_retries: u64,
    /// Initial retry backoff in ms (doubles per attempt).
    pub retry_backoff_ms: u64,
}

impl Default for GuestSection {
    fn default() -> Self {
        let d = ava_core::GuestConfig::default();
        GuestSection {
            batch_max_calls: d.batch_max_calls as u64,
            batch_max_delay_us: d.batch_max_delay_us,
            payload_cache_entries: d.payload_cache_entries as u64,
            payload_cache_min_bytes: d.payload_cache_min_bytes as u64,
            call_deadline_ms: None,
            max_retries: u64::from(d.max_retries),
            retry_backoff_ms: d.retry_backoff.as_millis() as u64,
        }
    }
}

/// `[admission]` — router overload protection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionSection {
    /// Per-VM queue-depth shed limit.
    pub max_queue_depth: Option<u64>,
    /// Per-slot aggregate queue-depth shed limit.
    pub max_slot_queue_depth: Option<u64>,
    /// Oldest a queued call may grow before being dropped, ms.
    pub max_queue_age_ms: Option<u64>,
}

/// `[breaker]` — per-tenant circuit breakers (present = enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSection {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u64,
    /// Open window before a half-open probe, ms.
    pub open_for_ms: u64,
    /// Consecutive probe successes that close it.
    pub probe_successes: u64,
}

impl Default for BreakerSection {
    fn default() -> Self {
        let d = BreakerConfig::default();
        BreakerSection {
            failure_threshold: u64::from(d.failure_threshold),
            open_for_ms: d.open_for.as_millis() as u64,
            probe_successes: u64::from(d.probe_successes),
        }
    }
}

/// `[slo]` — service-level objectives (present = monitored).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSection {
    /// p99 end-to-end latency target, µs.
    pub p99_e2e_us: Option<u64>,
    /// Maximum retries per issued call over a window (0..=1).
    pub max_retry_rate: Option<f64>,
    /// Maximum instantaneous per-slot queue depth.
    pub max_queue_depth: Option<f64>,
    /// Minimum calls per window before latency objectives are judged.
    pub min_window_calls: u64,
}

impl Default for SloSection {
    fn default() -> Self {
        SloSection {
            p99_e2e_us: None,
            max_retry_rate: None,
            max_queue_depth: None,
            min_window_calls: 16,
        }
    }
}

/// `[brownout]` — staged degradation (present = enabled; requires `[slo]`).
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutSection {
    /// Consecutive violating SLO windows before stage 1.
    pub stage1_burn: u64,
    /// Consecutive violating windows before stage 2.
    pub stage2_burn: u64,
    /// Most tenants stage 2 may shed.
    pub max_shed: u64,
}

impl Default for BrownoutSection {
    fn default() -> Self {
        let d = BrownoutConfig::default();
        BrownoutSection {
            stage1_burn: d.stage1_burn,
            stage2_burn: d.stage2_burn,
            max_shed: d.max_shed as u64,
        }
    }
}

/// Shared shape of `[policy]` (stack-wide defaults) and the policy
/// fields of `[tenants.*]` (per-tenant overrides).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicySection {
    /// Sustained call-rate limit, calls/sec.
    pub rate_limit: Option<f64>,
    /// Burst size for the rate limiter.
    pub rate_burst: Option<u64>,
    /// Fair-share weight.
    pub weight: Option<u64>,
    /// Priority level.
    pub priority: Option<u64>,
    /// Concurrency cap.
    pub max_inflight: Option<u64>,
    /// Device-memory quota, bytes.
    pub device_mem_quota: Option<u64>,
}

impl PolicySection {
    /// Lowers to the engine's layered-defaults type.
    pub fn defaults(&self) -> PolicyDefaults {
        PolicyDefaults {
            rate_limit: self.rate_limit.map(|rate| {
                (
                    rate,
                    self.rate_burst.unwrap_or(16).min(u64::from(u32::MAX)) as u32,
                )
            }),
            weight: self.weight.map(|w| w.min(u64::from(u32::MAX)) as u32),
            priority: self.priority.map(|p| p.min(u64::from(u8::MAX)) as u8),
            device_mem_quota: self.device_mem_quota,
            max_inflight: self.max_inflight.map(|n| n.min(u64::from(u32::MAX)) as u32),
        }
    }
}

/// `[tenants.<name>]` — one authenticated tenant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSection {
    /// Bearer token presented in `Authorization` headers.
    pub token: String,
    /// Admins may manage every VM and request shutdown.
    pub admin: bool,
    /// Per-tenant policy overrides (overlay the `[policy]` defaults).
    pub policy: PolicySection,
}

/// The whole validated configuration file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvadConfig {
    /// `[daemon]`.
    pub daemon: DaemonSection,
    /// `[stack]`.
    pub stack: StackSection,
    /// `[guest]`.
    pub guest: GuestSection,
    /// `[admission]`.
    pub admission: AdmissionSection,
    /// `[breaker]`, when present.
    pub breaker: Option<BreakerSection>,
    /// `[slo]`, when present.
    pub slo: Option<SloSection>,
    /// `[brownout]`, when present.
    pub brownout: Option<BrownoutSection>,
    /// `[policy]` stack-wide tenant-policy defaults.
    pub policy: PolicySection,
    /// `[tenants.*]`, by tenant name.
    pub tenants: BTreeMap<String, TenantSection>,
}

/// Typed field extraction over one table, collecting violations and
/// flagging unknown keys when finished.
struct Sect<'a> {
    path: String,
    table: TomlTable,
    out: &'a mut Vec<Violation>,
}

impl<'a> Sect<'a> {
    fn new(path: impl Into<String>, table: TomlTable, out: &'a mut Vec<Violation>) -> Self {
        Sect {
            path: path.into(),
            table,
            out,
        }
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn string(&mut self, key: &str) -> Option<String> {
        match self.table.remove(key)? {
            TomlValue::Str(s) => Some(s),
            other => {
                let path = self.key_path(key);
                violation(
                    self.out,
                    path,
                    format!("expected a string, got {}", other.type_name()),
                );
                None
            }
        }
    }

    fn u64(&mut self, key: &str) -> Option<u64> {
        match self.table.remove(key)? {
            TomlValue::Int(i) if i >= 0 => Some(i as u64),
            TomlValue::Int(i) => {
                let path = self.key_path(key);
                violation(self.out, path, format!("must be >= 0 (got {i})"));
                None
            }
            other => {
                let path = self.key_path(key);
                violation(
                    self.out,
                    path,
                    format!("expected an integer, got {}", other.type_name()),
                );
                None
            }
        }
    }

    fn f64(&mut self, key: &str) -> Option<f64> {
        match self.table.remove(key)? {
            TomlValue::Float(v) => Some(v),
            TomlValue::Int(i) => Some(i as f64),
            other => {
                let path = self.key_path(key);
                violation(
                    self.out,
                    path,
                    format!("expected a number, got {}", other.type_name()),
                );
                None
            }
        }
    }

    fn bool(&mut self, key: &str) -> Option<bool> {
        match self.table.remove(key)? {
            TomlValue::Bool(b) => Some(b),
            other => {
                let path = self.key_path(key);
                violation(
                    self.out,
                    path,
                    format!("expected a boolean, got {}", other.type_name()),
                );
                None
            }
        }
    }

    fn finish(self) {
        for key in self.table.keys() {
            let path = if self.path.is_empty() {
                key.clone()
            } else {
                format!("{}.{key}", self.path)
            };
            violation(
                self.out,
                path,
                format!("unknown key `{key}` (check the DESIGN.md §13 schema)"),
            );
        }
    }
}

fn read_policy_fields(sect: &mut Sect<'_>) -> PolicySection {
    PolicySection {
        rate_limit: sect.f64("rate_limit"),
        rate_burst: sect.u64("rate_burst"),
        weight: sect.u64("weight"),
        priority: sect.u64("priority"),
        max_inflight: sect.u64("max_inflight"),
        device_mem_quota: sect.u64("device_mem_quota"),
    }
}

impl AvadConfig {
    /// Parses and fully validates a config file's contents. On failure
    /// the error carries **every** violation found — TOML syntax, schema
    /// (types, unknown keys/sections), and cross-field rules.
    #[allow(clippy::should_implement_trait)] // error type is Vec<Violation>, not a FromStr Err
    pub fn from_str(src: &str) -> Result<AvadConfig, Vec<Violation>> {
        let (config, mut violations) = Self::parse_lenient(src)?;
        violations.extend(config.validate());
        if violations.is_empty() {
            Ok(config)
        } else {
            Err(violations)
        }
    }

    /// Reads and validates a config file from disk.
    pub fn load(path: &std::path::Path) -> Result<AvadConfig, Vec<Violation>> {
        let src = std::fs::read_to_string(path).map_err(|e| {
            vec![Violation {
                path: path.display().to_string(),
                message: format!("cannot read config file: {e}"),
            }]
        })?;
        Self::from_str(&src)
    }

    /// Schema extraction with best-effort recovery: bad fields fall back
    /// to their defaults so cross-field validation can still inspect the
    /// rest. A hard TOML syntax error is unrecoverable.
    fn parse_lenient(src: &str) -> Result<(AvadConfig, Vec<Violation>), Vec<Violation>> {
        let mut doc = toml::parse(src).map_err(|e| {
            vec![Violation {
                path: "toml".to_string(),
                message: e.to_string(),
            }]
        })?;
        let mut out = Vec::new();
        let mut config = AvadConfig::default();

        let top = doc.remove("").unwrap_or_default();
        Sect::new("", top, &mut out).finish(); // top-level keys are unknown by definition

        if let Some(table) = doc.remove("daemon") {
            let mut s = Sect::new("daemon", table, &mut out);
            let d = &mut config.daemon;
            if let Some(v) = s.string("listen") {
                d.listen = v;
            }
            d.flight_record = s.string("flight_record");
            if let Some(v) = s.bool("enable_test_hooks") {
                d.enable_test_hooks = v;
            }
            if let Some(v) = s.u64("drain_timeout_ms") {
                d.drain_timeout_ms = v;
            }
            s.finish();
        }

        if let Some(table) = doc.remove("stack") {
            let mut s = Sect::new("stack", table, &mut out);
            let t = &mut config.stack;
            if let Some(v) = s.string("api") {
                t.api = v;
            }
            if let Some(v) = s.string("transport") {
                t.transport = v;
            }
            if let Some(v) = s.string("cost_model") {
                t.cost_model = v;
            }
            if let Some(v) = s.string("scheduler") {
                t.scheduler = v;
            }
            if let Some(v) = s.u64("pool_size") {
                t.pool_size = v;
            }
            if let Some(v) = s.string("placement") {
                t.placement = v;
            }
            if let Some(v) = s.u64("slot_inflight") {
                t.slot_inflight = v;
            }
            if let Some(v) = s.u64("max_respawns") {
                t.max_respawns = v;
            }
            t.rebalance_threshold_ms = s.f64("rebalance_threshold_ms");
            if let Some(v) = s.u64("rebalance_interval_ms") {
                t.rebalance_interval_ms = v;
            }
            t.device_mem_capacity = s.u64("device_mem_capacity");
            t.device_mem_quota = s.u64("device_mem_quota");
            s.finish();
        }

        if let Some(table) = doc.remove("guest") {
            let mut s = Sect::new("guest", table, &mut out);
            let g = &mut config.guest;
            if let Some(v) = s.u64("batch_max_calls") {
                g.batch_max_calls = v;
            }
            if let Some(v) = s.u64("batch_max_delay_us") {
                g.batch_max_delay_us = v;
            }
            if let Some(v) = s.u64("payload_cache_entries") {
                g.payload_cache_entries = v;
            }
            if let Some(v) = s.u64("payload_cache_min_bytes") {
                g.payload_cache_min_bytes = v;
            }
            g.call_deadline_ms = s.u64("call_deadline_ms");
            if let Some(v) = s.u64("max_retries") {
                g.max_retries = v;
            }
            if let Some(v) = s.u64("retry_backoff_ms") {
                g.retry_backoff_ms = v;
            }
            s.finish();
        }

        if let Some(table) = doc.remove("admission") {
            let mut s = Sect::new("admission", table, &mut out);
            config.admission = AdmissionSection {
                max_queue_depth: s.u64("max_queue_depth"),
                max_slot_queue_depth: s.u64("max_slot_queue_depth"),
                max_queue_age_ms: s.u64("max_queue_age_ms"),
            };
            s.finish();
        }

        if let Some(table) = doc.remove("breaker") {
            let mut s = Sect::new("breaker", table, &mut out);
            let mut b = BreakerSection::default();
            if let Some(v) = s.u64("failure_threshold") {
                b.failure_threshold = v;
            }
            if let Some(v) = s.u64("open_for_ms") {
                b.open_for_ms = v;
            }
            if let Some(v) = s.u64("probe_successes") {
                b.probe_successes = v;
            }
            s.finish();
            config.breaker = Some(b);
        }

        if let Some(table) = doc.remove("slo") {
            let mut s = Sect::new("slo", table, &mut out);
            let mut slo = SloSection {
                p99_e2e_us: s.u64("p99_e2e_us"),
                max_retry_rate: s.f64("max_retry_rate"),
                max_queue_depth: s.f64("max_queue_depth"),
                ..SloSection::default()
            };
            if let Some(v) = s.u64("min_window_calls") {
                slo.min_window_calls = v;
            }
            s.finish();
            config.slo = Some(slo);
        }

        if let Some(table) = doc.remove("brownout") {
            let mut s = Sect::new("brownout", table, &mut out);
            let mut b = BrownoutSection::default();
            if let Some(v) = s.u64("stage1_burn") {
                b.stage1_burn = v;
            }
            if let Some(v) = s.u64("stage2_burn") {
                b.stage2_burn = v;
            }
            if let Some(v) = s.u64("max_shed") {
                b.max_shed = v;
            }
            s.finish();
            config.brownout = Some(b);
        }

        if let Some(table) = doc.remove("policy") {
            let mut s = Sect::new("policy", table, &mut out);
            config.policy = read_policy_fields(&mut s);
            s.finish();
        }

        // `[tenants]` itself holds no keys; each `[tenants.<name>]` is one
        // tenant. Any other leftover section is unknown.
        if let Some(table) = doc.remove("tenants") {
            Sect::new("tenants", table, &mut out).finish();
        }
        let tenant_names: Vec<String> = doc
            .keys()
            .filter_map(|k| k.strip_prefix("tenants.").map(str::to_string))
            .collect();
        for name in tenant_names {
            let table = doc.remove(&format!("tenants.{name}")).unwrap_or_default();
            let path = format!("tenants.{name}");
            let mut s = Sect::new(path.clone(), table, &mut out);
            let mut tenant = TenantSection {
                token: s.string("token").unwrap_or_default(),
                admin: s.bool("admin").unwrap_or(false),
                policy: PolicySection::default(),
            };
            tenant.policy = read_policy_fields(&mut s);
            s.finish();
            config.tenants.insert(name, tenant);
        }

        for section in doc.keys() {
            violation(
                &mut out,
                section.clone(),
                format!("unknown section `[{section}]`"),
            );
        }
        Ok((config, out))
    }

    /// Cross-field validation. Returns every broken rule (empty = valid).
    pub fn validate(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let check_enum = |out: &mut Vec<Violation>, path: &str, val: &str, allowed: &[&str]| {
            if !allowed.contains(&val) {
                violation(
                    out,
                    path,
                    format!("`{val}` is not one of {}", allowed.join(", ")),
                );
            }
        };
        check_enum(&mut out, "stack.api", &self.stack.api, &["opencl"]);
        check_enum(
            &mut out,
            "stack.transport",
            &self.stack.transport,
            &["inproc", "shmem", "tcp"],
        );
        check_enum(
            &mut out,
            "stack.cost_model",
            &self.stack.cost_model,
            &["free", "paravirtual", "network"],
        );
        check_enum(
            &mut out,
            "stack.scheduler",
            &self.stack.scheduler,
            &["fifo", "fair_share", "priority"],
        );
        check_enum(
            &mut out,
            "stack.placement",
            &self.stack.placement,
            &["round_robin", "least_loaded", "packed"],
        );

        if self.daemon.listen.parse::<SocketAddr>().is_err() {
            violation(
                &mut out,
                "daemon.listen",
                format!(
                    "`{}` is not a socket address (expected host:port, e.g. 127.0.0.1:7680)",
                    self.daemon.listen
                ),
            );
        }

        if self.stack.slot_inflight == 0 {
            violation(
                &mut out,
                "stack.slot_inflight",
                "must be >= 1 or a pooled slot can never forward a call",
            );
        }
        if let Some(depth) = self.admission.max_queue_depth {
            if depth < self.stack.slot_inflight {
                violation(
                    &mut out,
                    "admission.max_queue_depth",
                    format!(
                        "must be >= stack.slot_inflight ({} < {}): admission would shed calls \
                         before the slot's in-flight budget can even fill",
                        depth, self.stack.slot_inflight
                    ),
                );
            }
        }
        if let (Some(slot), Some(vm)) = (
            self.admission.max_slot_queue_depth,
            self.admission.max_queue_depth,
        ) {
            if slot < vm {
                violation(
                    &mut out,
                    "admission.max_slot_queue_depth",
                    format!(
                        "must be >= admission.max_queue_depth ({slot} < {vm}): the slot-wide cap \
                         would starve every lane below its own per-VM allowance"
                    ),
                );
            }
        }

        if let Some(capacity) = self.stack.device_mem_capacity {
            let limit = capacity.saturating_mul(MAX_QUOTA_OVERCOMMIT);
            let check_quota = |out: &mut Vec<Violation>, path: String, quota: u64| {
                if quota > limit {
                    violation(
                        out,
                        path,
                        format!(
                            "quota {quota} exceeds {MAX_QUOTA_OVERCOMMIT}x the device \
                             capacity ({capacity}): beyond {limit} bytes the swap path can \
                             only thrash; raise stack.device_mem_capacity or lower the quota"
                        ),
                    );
                }
            };
            if let Some(q) = self.stack.device_mem_quota {
                check_quota(&mut out, "stack.device_mem_quota".to_string(), q);
            }
            for (name, tenant) in &self.tenants {
                if let Some(q) = tenant.policy.device_mem_quota {
                    check_quota(&mut out, format!("tenants.{name}.device_mem_quota"), q);
                }
            }
        }

        if self.brownout.is_some() {
            let slo_live = self.slo.as_ref().is_some_and(|s| {
                s.p99_e2e_us.is_some() || s.max_retry_rate.is_some() || s.max_queue_depth.is_some()
            });
            if !slo_live {
                violation(
                    &mut out,
                    "brownout",
                    "brownout requires an [slo] section with at least one objective — \
                     the supervisor stages degradation off SLO burn, so without an SLO \
                     the brownout can never engage",
                );
            }
        }
        if let Some(b) = &self.brownout {
            if b.stage1_burn == 0 {
                violation(&mut out, "brownout.stage1_burn", "must be >= 1");
            }
            if b.stage2_burn < b.stage1_burn {
                violation(
                    &mut out,
                    "brownout.stage2_burn",
                    format!(
                        "must be >= brownout.stage1_burn ({} < {}): stage 2 escalates from \
                         stage 1, it cannot trigger first",
                        b.stage2_burn, b.stage1_burn
                    ),
                );
            }
            if b.max_shed == 0 {
                violation(
                    &mut out,
                    "brownout.max_shed",
                    "must be >= 1: a stage 2 that may shed nobody is stage 1",
                );
            }
        }

        if let Some(slo) = &self.slo {
            if let Some(rate) = slo.max_retry_rate {
                if !(0.0..=1.0).contains(&rate) {
                    violation(
                        &mut out,
                        "slo.max_retry_rate",
                        format!("must be within 0.0..=1.0 (got {rate})"),
                    );
                }
            }
        }

        if let Some(deadline_ms) = self.guest.call_deadline_ms {
            if deadline_ms == 0 {
                violation(
                    &mut out,
                    "guest.call_deadline_ms",
                    "must be >= 1 when set (0 would expire every call on arrival); \
                     omit the key to disable deadlines",
                );
            } else if self.guest.batch_max_delay_us >= deadline_ms * 1_000 {
                violation(
                    &mut out,
                    "guest.batch_max_delay_us",
                    format!(
                        "must be < guest.call_deadline_ms ({} us >= {} ms): a batch \
                         allowed to sit past the call deadline guarantees spurious retries",
                        self.guest.batch_max_delay_us, deadline_ms
                    ),
                );
            }
        }

        if self.stack.rebalance_threshold_ms.is_some() && self.stack.pool_size < 2 {
            violation(
                &mut out,
                "stack.rebalance_threshold_ms",
                format!(
                    "the load watchdog needs a pool of at least 2 slots to migrate \
                     between (stack.pool_size is {})",
                    self.stack.pool_size
                ),
            );
        }

        let mut seen_tokens: BTreeMap<&str, &str> = BTreeMap::new();
        for (name, tenant) in &self.tenants {
            if tenant.token.is_empty() {
                violation(
                    &mut out,
                    format!("tenants.{name}.token"),
                    "token must be a non-empty string",
                );
                continue;
            }
            if let Some(first) = seen_tokens.insert(&tenant.token, name) {
                violation(
                    &mut out,
                    format!("tenants.{name}.token"),
                    format!("token collides with tenants.{first} — tokens must be unique"),
                );
            }
            if let Some(rate) = tenant.policy.rate_limit {
                if rate <= 0.0 {
                    violation(
                        &mut out,
                        format!("tenants.{name}.rate_limit"),
                        format!("must be > 0 calls/sec (got {rate})"),
                    );
                }
            }
        }
        if let Some(rate) = self.policy.rate_limit {
            if rate <= 0.0 {
                violation(
                    &mut out,
                    "policy.rate_limit",
                    format!("must be > 0 calls/sec (got {rate})"),
                );
            }
        }

        out
    }

    /// Lowers to the engine's [`StackConfig`]. Only call on a validated
    /// config; unrecognized enum strings fall back to defaults here.
    pub fn stack_config(&self) -> StackConfig {
        let transport = match self.stack.transport.as_str() {
            "inproc" => TransportKind::InProcess,
            "tcp" => TransportKind::Tcp,
            _ => TransportKind::SharedMemory,
        };
        let cost_model = match self.stack.cost_model.as_str() {
            "free" => CostModel::free(),
            "network" => CostModel::network(),
            _ => CostModel::paravirtual(),
        };
        let scheduler = match self.stack.scheduler.as_str() {
            "fair_share" => SchedulerKind::FairShare,
            "priority" => SchedulerKind::Priority,
            _ => SchedulerKind::Fifo,
        };
        let placement = match self.stack.placement.as_str() {
            "least_loaded" => PlacementPolicy::LeastLoaded,
            "packed" => PlacementPolicy::Packed,
            _ => PlacementPolicy::RoundRobin,
        };
        let guest = ava_core::GuestConfig {
            batch_max: 0,
            batch_max_calls: self.guest.batch_max_calls as usize,
            batch_max_delay_us: self.guest.batch_max_delay_us,
            payload_cache_entries: self.guest.payload_cache_entries as usize,
            payload_cache_min_bytes: self.guest.payload_cache_min_bytes as usize,
            call_deadline: self.guest.call_deadline_ms.map(Duration::from_millis),
            max_retries: self.guest.max_retries.min(u64::from(u32::MAX)) as u32,
            retry_backoff: Duration::from_millis(self.guest.retry_backoff_ms),
        };
        let slo = self.slo.as_ref().map(|s| SloConfig {
            p99_e2e_ns: s.p99_e2e_us.map(|us| us.saturating_mul(1_000)),
            max_retry_rate: s.max_retry_rate,
            max_queue_depth: s.max_queue_depth,
            min_window_calls: s.min_window_calls,
        });
        StackConfig {
            transport,
            cost_model,
            scheduler,
            guest,
            max_respawns: self.stack.max_respawns.min(u64::from(u32::MAX)) as u32,
            pool_size: self.stack.pool_size as usize,
            placement,
            slot_inflight: self.stack.slot_inflight as usize,
            rebalance_threshold_ms: self.stack.rebalance_threshold_ms,
            rebalance_interval: Duration::from_millis(self.stack.rebalance_interval_ms),
            slo,
            device_mem_capacity: self.stack.device_mem_capacity,
            device_mem_quota: self.stack.device_mem_quota,
            max_queue_depth: self.admission.max_queue_depth.map(|v| v as usize),
            max_slot_queue_depth: self.admission.max_slot_queue_depth.map(|v| v as usize),
            max_queue_age: self.admission.max_queue_age_ms.map(Duration::from_millis),
            breaker: self.breaker.as_ref().map(|b| BreakerConfig {
                failure_threshold: b.failure_threshold.min(u64::from(u32::MAX)) as u32,
                open_for: Duration::from_millis(b.open_for_ms),
                probe_successes: b.probe_successes.min(u64::from(u32::MAX)) as u32,
            }),
            brownout: self.brownout.as_ref().map(|b| BrownoutConfig {
                stage1_burn: b.stage1_burn,
                stage2_burn: b.stage2_burn,
                max_shed: b.max_shed as usize,
            }),
            ..StackConfig::default()
        }
    }

    /// The effective policy defaults for `tenant`: tenant overrides
    /// overlaid on the stack-wide `[policy]` section, with the stack's
    /// default memory quota as the base layer.
    pub fn tenant_defaults(&self, tenant: &str) -> PolicyDefaults {
        let mut base = self.policy.defaults();
        base.device_mem_quota = base.device_mem_quota.or(self.stack.device_mem_quota);
        match self.tenants.get(tenant) {
            Some(t) => t.policy.defaults().overlay(&base),
            None => base,
        }
    }

    /// Resolves a bearer token to its tenant. Comparison is
    /// constant-time per candidate so a network attacker cannot guess a
    /// token byte-by-byte off the auth boundary's timing.
    pub fn tenant_by_token(&self, token: &str) -> Option<(&str, &TenantSection)> {
        self.tenants
            .iter()
            .find(|(_, t)| !t.token.is_empty() && constant_time_eq(&t.token, token))
            .map(|(name, t)| (name.as_str(), t))
    }

    /// Serializes back to TOML such that `from_str` reproduces `self`
    /// exactly (property-tested).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = |v: &str| toml::write_str(v);
        let f = |v: f64| toml::write_float(v);

        writeln!(out, "[daemon]").unwrap();
        writeln!(out, "listen = {}", s(&self.daemon.listen)).unwrap();
        if let Some(path) = &self.daemon.flight_record {
            writeln!(out, "flight_record = {}", s(path)).unwrap();
        }
        writeln!(out, "enable_test_hooks = {}", self.daemon.enable_test_hooks).unwrap();
        writeln!(out, "drain_timeout_ms = {}", self.daemon.drain_timeout_ms).unwrap();

        writeln!(out, "\n[stack]").unwrap();
        writeln!(out, "api = {}", s(&self.stack.api)).unwrap();
        writeln!(out, "transport = {}", s(&self.stack.transport)).unwrap();
        writeln!(out, "cost_model = {}", s(&self.stack.cost_model)).unwrap();
        writeln!(out, "scheduler = {}", s(&self.stack.scheduler)).unwrap();
        writeln!(out, "pool_size = {}", self.stack.pool_size).unwrap();
        writeln!(out, "placement = {}", s(&self.stack.placement)).unwrap();
        writeln!(out, "slot_inflight = {}", self.stack.slot_inflight).unwrap();
        writeln!(out, "max_respawns = {}", self.stack.max_respawns).unwrap();
        if let Some(v) = self.stack.rebalance_threshold_ms {
            writeln!(out, "rebalance_threshold_ms = {}", f(v)).unwrap();
        }
        writeln!(
            out,
            "rebalance_interval_ms = {}",
            self.stack.rebalance_interval_ms
        )
        .unwrap();
        if let Some(v) = self.stack.device_mem_capacity {
            writeln!(out, "device_mem_capacity = {v}").unwrap();
        }
        if let Some(v) = self.stack.device_mem_quota {
            writeln!(out, "device_mem_quota = {v}").unwrap();
        }

        writeln!(out, "\n[guest]").unwrap();
        writeln!(out, "batch_max_calls = {}", self.guest.batch_max_calls).unwrap();
        writeln!(
            out,
            "batch_max_delay_us = {}",
            self.guest.batch_max_delay_us
        )
        .unwrap();
        writeln!(
            out,
            "payload_cache_entries = {}",
            self.guest.payload_cache_entries
        )
        .unwrap();
        writeln!(
            out,
            "payload_cache_min_bytes = {}",
            self.guest.payload_cache_min_bytes
        )
        .unwrap();
        if let Some(v) = self.guest.call_deadline_ms {
            writeln!(out, "call_deadline_ms = {v}").unwrap();
        }
        writeln!(out, "max_retries = {}", self.guest.max_retries).unwrap();
        writeln!(out, "retry_backoff_ms = {}", self.guest.retry_backoff_ms).unwrap();

        let a = &self.admission;
        if a.max_queue_depth.is_some()
            || a.max_slot_queue_depth.is_some()
            || a.max_queue_age_ms.is_some()
        {
            writeln!(out, "\n[admission]").unwrap();
            if let Some(v) = a.max_queue_depth {
                writeln!(out, "max_queue_depth = {v}").unwrap();
            }
            if let Some(v) = a.max_slot_queue_depth {
                writeln!(out, "max_slot_queue_depth = {v}").unwrap();
            }
            if let Some(v) = a.max_queue_age_ms {
                writeln!(out, "max_queue_age_ms = {v}").unwrap();
            }
        }

        if let Some(b) = &self.breaker {
            writeln!(out, "\n[breaker]").unwrap();
            writeln!(out, "failure_threshold = {}", b.failure_threshold).unwrap();
            writeln!(out, "open_for_ms = {}", b.open_for_ms).unwrap();
            writeln!(out, "probe_successes = {}", b.probe_successes).unwrap();
        }

        if let Some(slo) = &self.slo {
            writeln!(out, "\n[slo]").unwrap();
            if let Some(v) = slo.p99_e2e_us {
                writeln!(out, "p99_e2e_us = {v}").unwrap();
            }
            if let Some(v) = slo.max_retry_rate {
                writeln!(out, "max_retry_rate = {}", f(v)).unwrap();
            }
            if let Some(v) = slo.max_queue_depth {
                writeln!(out, "max_queue_depth = {}", f(v)).unwrap();
            }
            writeln!(out, "min_window_calls = {}", slo.min_window_calls).unwrap();
        }

        if let Some(b) = &self.brownout {
            writeln!(out, "\n[brownout]").unwrap();
            writeln!(out, "stage1_burn = {}", b.stage1_burn).unwrap();
            writeln!(out, "stage2_burn = {}", b.stage2_burn).unwrap();
            writeln!(out, "max_shed = {}", b.max_shed).unwrap();
        }

        let write_policy = |out: &mut String, p: &PolicySection| {
            if let Some(v) = p.rate_limit {
                writeln!(out, "rate_limit = {}", f(v)).unwrap();
            }
            if let Some(v) = p.rate_burst {
                writeln!(out, "rate_burst = {v}").unwrap();
            }
            if let Some(v) = p.weight {
                writeln!(out, "weight = {v}").unwrap();
            }
            if let Some(v) = p.priority {
                writeln!(out, "priority = {v}").unwrap();
            }
            if let Some(v) = p.max_inflight {
                writeln!(out, "max_inflight = {v}").unwrap();
            }
            if let Some(v) = p.device_mem_quota {
                writeln!(out, "device_mem_quota = {v}").unwrap();
            }
        };

        if self.policy != PolicySection::default() {
            writeln!(out, "\n[policy]").unwrap();
            write_policy(&mut out, &self.policy);
        }

        for (name, tenant) in &self.tenants {
            writeln!(out, "\n[tenants.{name}]").unwrap();
            writeln!(out, "token = {}", s(&tenant.token)).unwrap();
            writeln!(out, "admin = {}", tenant.admin).unwrap();
            write_policy(&mut out, &tenant.policy);
        }

        out
    }
}
