//! End-to-end telemetry demonstration: runs a Rodinia-style OpenCL
//! workload through the full AvA stack with a registry attached, then
//! prints the per-function latency table and the cross-tier span
//! breakdown (guest-marshal / transport / router-queue / server-execute)
//! for both the in-process and the TCP transport.
//!
//! The segment sums telescope: for each completed sync span they add up
//! exactly to its guest-observed end-to-end latency, so the "sum /
//! total" column printed at the bottom is a built-in self-check (it must
//! be 1.000 up to floating-point rounding).
//!
//! Usage: `telemetry_report [--json]`

use ava_bench::row;
use ava_core::OpenClClient;
use ava_core::{opencl_stack_with, StackConfig};
use ava_hypervisor::VmPolicy;
use ava_spec::LowerOptions;
use ava_telemetry::Registry;
use ava_transport::{CostModel, TransportKind};
use ava_workloads::{opencl_workloads, silo_with_all_kernels, Scale};

fn run_with_transport(kind: TransportKind, json: bool) {
    let label = match kind {
        TransportKind::InProcess => "inproc",
        TransportKind::SharedMemory => "shmem",
        TransportKind::Tcp => "tcp",
    };
    let scale = Scale::Test;
    let config = StackConfig {
        transport: kind,
        cost_model: CostModel::free(),
        ..StackConfig::default()
    };
    let stack = opencl_stack_with(
        silo_with_all_kernels(scale),
        config,
        LowerOptions::default(),
    )
    .expect("stack builds");
    let registry = Registry::new();
    stack
        .set_telemetry(registry.clone())
        .expect("telemetry attaches");
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).expect("vm attaches");
    let client = OpenClClient::new(lib);

    for wl in opencl_workloads(scale) {
        wl.run(&client).expect("workload runs");
    }

    let snapshot = registry.snapshot();
    if json {
        println!("{}", snapshot.render_json());
        return;
    }

    println!("== transport: {label} ==");
    println!();

    // Per-function latency table from the guest-side histograms.
    let widths = [34, 8, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "function".into(),
                "count".into(),
                "p50_us".into(),
                "p95_us".into(),
                "p99_us".into(),
                "max_us".into(),
            ],
            &widths
        )
    );
    for (name, hist) in &snapshot.histograms {
        let Some(fn_name) = name.strip_prefix("guest.call.") else {
            continue;
        };
        let us = |n: u64| n as f64 / 1e3;
        println!(
            "{}",
            row(
                &[
                    fn_name.into(),
                    format!("{}", hist.count),
                    format!("{:.1}", us(hist.percentile(0.50))),
                    format!("{:.1}", us(hist.percentile(0.95))),
                    format!("{:.1}", us(hist.percentile(0.99))),
                    format!("{:.1}", us(hist.max)),
                ],
                &widths
            )
        );
    }
    println!();

    // Cross-tier breakdown over all completed sync spans.
    println!("cross-tier breakdown (mean over completed sync spans):");
    let breakdown = snapshot.segment_breakdown();
    let mut segment_sum = 0.0;
    for (segment, mean_ns) in &breakdown {
        segment_sum += mean_ns;
        println!("  {segment:<16} {:>10.1} us", mean_ns / 1e3);
    }
    let total = snapshot.span_total_mean().unwrap_or(0.0);
    println!("  {:<16} {:>10.1} us", "e2e total", total / 1e3);
    if total > 0.0 {
        println!("  sum / total      {:>10.3}", segment_sum / total);
    }
    println!();
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if !json {
        println!("# End-to-end telemetry report");
        println!("# Rodinia-style OpenCL suite, per-call spans across guest -> router -> server");
        println!();
    }
    for kind in [TransportKind::InProcess, TransportKind::Tcp] {
        run_with_transport(kind, json);
    }
}
