//! Multi-tenancy: the consolidation story from the paper's introduction.
//! Three guest VMs share one physical accelerator; the hypervisor router
//! enforces fair sharing and rate limits while every VM keeps its own
//! isolated handle namespace.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use std::sync::Arc;

use ava_core::{opencl_stack_with, OpenClClient, StackConfig};
use ava_hypervisor::{SchedulerKind, VmPolicy};
use ava_spec::LowerOptions;
use ava_transport::{CostModel, TransportKind};
use ava_workloads::{opencl_workloads, silo_with_all_kernels, Scale};

fn main() {
    let config = StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::paravirtual(),
        scheduler: SchedulerKind::FairShare,
        ..StackConfig::default()
    };
    let stack = Arc::new(
        opencl_stack_with(
            silo_with_all_kernels(Scale::Test),
            config,
            LowerOptions::default(),
        )
        .expect("stack"),
    );

    // Three tenants with different entitlements.
    let tenants = [
        ("tenant-gold (weight 4)", VmPolicy::with_weight(4)),
        ("tenant-silver (weight 1)", VmPolicy::with_weight(1)),
        (
            "tenant-capped (1000 calls/s)",
            VmPolicy::with_rate_limit(1000.0, 32),
        ),
    ];

    let mut threads = Vec::new();
    for (name, policy) in tenants {
        let (vm, lib) = stack.attach_vm(policy).expect("attach");
        let stack2 = Arc::clone(&stack);
        threads.push(std::thread::spawn(move || {
            let client = OpenClClient::new(lib);
            let wl = opencl_workloads(Scale::Test)
                .into_iter()
                .find(|w| w.name() == "hotspot")
                .expect("hotspot exists");
            let start = std::time::Instant::now();
            wl.run(&client).expect("workload");
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            let stats = stack2.vm_router_stats(vm).expect("stats");
            (name, elapsed, stats)
        }));
    }

    println!("three tenants running `hotspot` concurrently on one device:\n");
    for t in threads {
        let (name, elapsed, stats) = t.join().expect("tenant thread");
        println!(
            "{name:32} {elapsed:8.1} ms   forwarded {:5} calls   est device time {:8.0} us",
            stats.forwarded, stats.est_device_time_us
        );
    }
    println!("\nthe router (hypervisor) interposed every call of every tenant;");
    println!("handles never leak across VMs (each server owns its table).");
}
