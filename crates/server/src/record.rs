//! Record-and-replay support for VM migration (§4.3) and swap-in.
//!
//! Functions annotated `record(config|alloc|modify)` in the specification
//! are logged (in wire form, pre-translation) as they execute. To migrate,
//! AvA suspends invocations, synthesizes copies of extant device buffers,
//! and frees device resources; on arrival it replays the recorded calls to
//! reinitialize the device and reallocate objects, restores buffer
//! contents, and resumes — the Nooks-style object tracking the paper cites.

use ava_spec::RecordCategory;
use ava_wire::{CallId, CallReply, CallRequest, FnId, Value};

/// One recorded call.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedCall {
    /// Monotonic sequence number (replay order).
    pub seq: u64,
    /// Function id within the API descriptor.
    pub fn_id: FnId,
    /// Arguments in wire form (handles are wire handles).
    pub args: Vec<Value>,
    /// Record category.
    pub category: RecordCategory,
    /// Every wire handle this call produced, in canonical order (return
    /// value first, then outputs in parameter order, list elements in
    /// sequence), with its handle kind. Replay rebinds these to the
    /// freshly created silo objects.
    pub produced: Vec<(u64, String)>,
}

impl RecordedCall {
    /// The primary created handle (for alloc records).
    pub fn created_wire(&self) -> Option<u64> {
        self.produced.first().map(|(w, _)| *w)
    }
}

/// The ordered log of recorded calls.
#[derive(Debug, Default, Clone)]
pub struct RecordLog {
    next_seq: u64,
    calls: Vec<RecordedCall>,
}

impl RecordLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a recorded call.
    pub fn record(
        &mut self,
        fn_id: FnId,
        args: Vec<Value>,
        category: RecordCategory,
        produced: Vec<(u64, String)>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.calls.push(RecordedCall {
            seq,
            fn_id,
            args,
            category,
            produced,
        });
    }

    /// Cancels tracking for a deallocated object: removes its `alloc`
    /// record and every `modify` record that references its wire handle.
    pub fn cancel_for_handle(&mut self, wire: u64) {
        self.calls.retain(|c| {
            let creates = c.category == RecordCategory::Alloc && c.created_wire() == Some(wire);
            let modifies = c.category == RecordCategory::Modify
                && c.args.iter().any(|a| references_handle(a, wire));
            !(creates || modifies)
        });
    }

    /// The `alloc` record that created `wire`, if tracked.
    pub fn alloc_record_for(&self, wire: u64) -> Option<&RecordedCall> {
        self.calls
            .iter()
            .find(|c| c.category == RecordCategory::Alloc && c.created_wire() == Some(wire))
    }

    /// All records in replay (original temporal) order.
    pub fn replay_order(&self) -> impl Iterator<Item = &RecordedCall> {
        self.calls.iter()
    }

    /// Number of records currently tracked.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

fn references_handle(value: &Value, wire: u64) -> bool {
    match value {
        Value::Handle(h) => *h == wire,
        Value::List(items) => items.iter().any(|v| references_handle(v, wire)),
        _ => false,
    }
}

/// A complete migration image: everything needed to reconstruct a VM's API
/// state on another host.
#[derive(Debug, Clone, Default)]
pub struct MigrationImage {
    /// Recorded calls in replay order.
    pub records: Vec<RecordedCall>,
    /// Saved device-buffer payloads, as `(wire handle, bytes)`.
    pub buffers: Vec<(u64, Vec<u8>)>,
    /// Recently sent sync replies, so duplicate suppression keeps answering
    /// guest retries that straddle the migration.
    pub replies: Vec<CallReply>,
    /// At-most-once execution highwater mark (`None`: nothing executed).
    pub highwater: Option<CallId>,
}

/// One fully-executed call, journaled for crash recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The request exactly as executed (cache references materialized).
    pub request: CallRequest,
    /// The reply the server produced for it.
    pub reply: CallReply,
}

/// The complete execution journal for one VM's API server.
///
/// Unlike the [`RecordLog`] — which holds only `record`-annotated calls and
/// backs *planned* reconstruction (migration, swap-in) where device buffers
/// can still be snapshotted — the journal holds *every* executed call, so a
/// crashed server can be rebuilt by replay alone: after a crash there is no
/// opportunity to snapshot buffers, and kernel launches or writes that
/// mutated device state must be re-run, not restored. The supervisor owns
/// the journal, behind a mutex, because it must survive the server process
/// it describes.
#[derive(Debug, Default, Clone)]
pub struct CallJournal {
    entries: Vec<JournalEntry>,
}

impl CallJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one executed call.
    pub fn record(&mut self, request: CallRequest, reply: CallReply) {
        self.entries.push(JournalEntry { request, reply });
    }

    /// All entries in execution (and therefore replay) order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of journaled calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has executed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when every journaled call id is distinct — the at-most-once
    /// guarantee made observable: a duplicate frame that slipped past
    /// dedup and re-executed would journal its call id twice.
    pub fn call_ids_unique(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.entries.iter().all(|e| seen.insert(e.request.call_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(log: &mut RecordLog, fn_id: u32, wire: u64) {
        log.record(
            fn_id,
            vec![Value::U64(64)],
            RecordCategory::Alloc,
            vec![(wire, "buf".to_string())],
        );
    }

    #[test]
    fn records_keep_temporal_order() {
        let mut log = RecordLog::new();
        log.record(0, vec![], RecordCategory::Config, vec![]);
        alloc(&mut log, 1, 100);
        log.record(2, vec![Value::Handle(100)], RecordCategory::Modify, vec![]);
        let seqs: Vec<u64> = log.replay_order().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn cancel_removes_alloc_and_its_modifies() {
        let mut log = RecordLog::new();
        alloc(&mut log, 1, 100);
        alloc(&mut log, 1, 101);
        log.record(2, vec![Value::Handle(100)], RecordCategory::Modify, vec![]);
        log.record(2, vec![Value::Handle(101)], RecordCategory::Modify, vec![]);
        log.cancel_for_handle(100);
        assert_eq!(log.len(), 2);
        assert!(log.alloc_record_for(100).is_none());
        assert!(log.alloc_record_for(101).is_some());
    }

    #[test]
    fn cancel_finds_handles_inside_lists() {
        let mut log = RecordLog::new();
        alloc(&mut log, 1, 100);
        log.record(
            3,
            vec![Value::List(vec![Value::Handle(100), Value::Handle(200)])],
            RecordCategory::Modify,
            vec![],
        );
        log.cancel_for_handle(100);
        assert!(log.is_empty());
    }

    #[test]
    fn journal_detects_duplicate_call_ids() {
        use ava_wire::{CallMode, ReplyStatus};
        let req = |id: u64| CallRequest {
            call_id: id,
            fn_id: 0,
            mode: CallMode::Sync,
            args: vec![],
            budget_us: 0,
        };
        let rep = |id: u64| CallReply {
            call_id: id,
            status: ReplyStatus::Ok,
            ret: Value::Unit,
            outputs: vec![],
        };
        let mut journal = CallJournal::new();
        journal.record(req(1), rep(1));
        journal.record(req(2), rep(2));
        assert!(journal.call_ids_unique());
        assert_eq!(journal.len(), 2);
        journal.record(req(2), rep(2));
        assert!(!journal.call_ids_unique());
    }

    #[test]
    fn config_records_survive_cancellation() {
        let mut log = RecordLog::new();
        log.record(0, vec![Value::Handle(100)], RecordCategory::Config, vec![]);
        alloc(&mut log, 1, 100);
        log.cancel_for_handle(100);
        assert_eq!(log.len(), 1);
    }
}
