//! Device-memory virtualization, proven end-to-end against an oracle:
//! real workloads (kmeans, backprop) run under a resident-memory ceiling
//! tight enough that a large fraction of their working set is LRU-evicted
//! to the host-side swap store mid-run — and must still produce results
//! bit-identical to the same workload on an unconstrained stack. Swapping
//! may cost latency; it must never cost correctness.
//!
//! Also covered: the per-VM device-memory quota answers over-quota
//! allocations with a clean `QuotaExceeded` and leaves the lane healthy.

use ava_core::{opencl_stack, ApiStack, OpenClClient, StackConfig};
use ava_guest::GuestError;
use ava_hypervisor::VmPolicy;
use ava_server::MemoryStats;
use ava_transport::{CostModel, TransportKind};
use ava_workloads::{backprop::Backprop, kmeans::Kmeans, silo_with_all_kernels, ClWorkload, Scale};

fn stack_with_capacity(capacity: Option<u64>) -> ApiStack {
    opencl_stack(
        silo_with_all_kernels(Scale::Test),
        StackConfig {
            transport: TransportKind::SharedMemory,
            cost_model: CostModel::free(),
            device_mem_capacity: capacity,
            ..StackConfig::default()
        },
    )
    .expect("stack builds")
}

/// Runs `workload` once on a stack whose resident ceiling is `capacity`
/// (None = unconstrained) and returns the result plus memory statistics.
fn run_under_capacity(workload: &dyn ClWorkload, capacity: Option<u64>) -> (f64, MemoryStats) {
    let stack = stack_with_capacity(capacity);
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).expect("vm attaches");
    let client = OpenClClient::new(lib);
    let result = workload.run(&client).unwrap_or_else(|e| {
        panic!(
            "{} failed under capacity {capacity:?}: {e}",
            workload.name()
        )
    });
    let stats = stack.vm_memory_stats(vm).expect("memory stats");
    (result, stats)
}

/// The oracle property: a capacity tight enough to swap out a meaningful
/// fraction of the working set mid-run changes latencies, not results.
fn assert_swapped_run_matches_oracle(workload: &dyn ClWorkload, capacity: u64) {
    let (oracle, oracle_stats) = run_under_capacity(workload, None);
    assert_eq!(
        oracle_stats.evictions, 0,
        "unconstrained oracle must not swap"
    );

    let (constrained, stats) = run_under_capacity(workload, Some(capacity));
    assert_eq!(
        oracle.to_bits(),
        constrained.to_bits(),
        "{}: swapped run diverged from oracle ({oracle} vs {constrained})",
        workload.name()
    );
    assert!(
        stats.evictions > 0 && stats.faults > 0,
        "{}: capacity {capacity} B produced no swap traffic \
         (evictions {}, faults {})",
        workload.name(),
        stats.evictions,
        stats.faults
    );
    assert!(
        stats.peak_swapped_fraction >= 0.3,
        "{}: peak swapped fraction {:.2} below the 30% the test promises",
        workload.name(),
        stats.peak_swapped_fraction
    );
}

#[test]
fn kmeans_is_bit_identical_with_most_of_its_working_set_swapped() {
    // Test-scale kmeans owns ~10 KiB of buffers (8 KiB points, 2 KiB
    // membership, 64 B centroids); a 4 KiB ceiling keeps the points
    // buffer and the membership buffer fighting for residency all run.
    assert_swapped_run_matches_oracle(&Kmeans::new(Scale::Test), 4 << 10);
}

#[test]
fn backprop_is_bit_identical_with_most_of_its_working_set_swapped() {
    // Test-scale backprop owns ~9 KiB (8 KiB weights, 1 KiB input, two
    // tiny vectors); same 4 KiB ceiling, same property.
    assert_swapped_run_matches_oracle(&Backprop::new(Scale::Test), 4 << 10);
}

#[test]
fn over_quota_alloc_is_rejected_cleanly_and_lane_survives() {
    use simcl::ClApi;
    let stack = stack_with_capacity(None);
    let (vm, lib) = stack
        .attach_vm(VmPolicy::with_device_mem_quota(8 << 10))
        .expect("vm attaches");
    let client = OpenClClient::new(lib);

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client
        .get_device_ids(platform, simcl::DeviceType::All)
        .unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, simcl::QueueProps::default())
        .unwrap();

    // Within quota: fine.
    let payload = vec![7u8; 4 << 10];
    let ok = client
        .create_buffer(ctx, simcl::MemFlags::read_write(), 4 << 10, Some(&payload))
        .expect("within-quota allocation succeeds");

    // Over quota (4 KiB owned + 8 KiB requested > 8 KiB quota): a clean,
    // typed rejection — not a transport error, not a panic.
    let err = client
        .create_buffer(ctx, simcl::MemFlags::read_write(), 8 << 10, None)
        .expect_err("over-quota allocation must be refused");
    assert_eq!(
        err,
        simcl::ClError(simcl::status::CL_OUT_OF_RESOURCES),
        "guest-facing CL error should map from QuotaExceeded"
    );
    assert!(
        stack.vm_server_stats(vm).unwrap().quota_rejects >= 1,
        "server must count the quota rejection"
    );

    // The lane is not poisoned: the surviving buffer still reads back
    // intact and further within-quota work proceeds.
    let mut out = vec![0u8; 4 << 10];
    client
        .enqueue_read_buffer(queue, ok, true, 0, &mut out, &[], false)
        .expect("lane survives the rejection");
    assert!(out.iter().all(|&b| b == 7));
    client.release_mem_object(ok).unwrap();
    let again = client
        .create_buffer(ctx, simcl::MemFlags::read_write(), 6 << 10, None)
        .expect("freed quota is reusable");
    client.release_mem_object(again).unwrap();
}

#[test]
fn retain_release_keeps_residency_until_the_final_release() {
    use simcl::ClApi;
    let stack = stack_with_capacity(None);
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).expect("vm attaches");
    let client = OpenClClient::new(lib);

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client
        .get_device_ids(platform, simcl::DeviceType::All)
        .unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, simcl::QueueProps::default())
        .unwrap();

    let base = stack.vm_memory_stats(vm).unwrap().live_bytes;
    let payload = vec![42u8; 1024];
    let buf = client
        .create_buffer(ctx, simcl::MemFlags::read_write(), 1024, Some(&payload))
        .unwrap();
    assert_eq!(
        stack.vm_memory_stats(vm).unwrap().live_bytes,
        base + 1024,
        "allocation must enter residency accounting"
    );

    // Retain then release: the object survives (refcount 2 -> 1), so its
    // bytes must stay on the books — retiring them here would let a later
    // eviction pass skip a live buffer or double-free its accounting.
    client.retain_mem_object(buf).unwrap();
    client.release_mem_object(buf).unwrap();
    // Releases are async; a sync fence (FIFO transport) ensures they have
    // executed before the accounting is inspected.
    client.finish(queue).unwrap();
    assert_eq!(
        stack.vm_memory_stats(vm).unwrap().live_bytes,
        base + 1024,
        "refcounted release must not retire a surviving buffer's residency"
    );
    let mut out = vec![0u8; 1024];
    client
        .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
        .expect("buffer survives the refcounted release");
    assert_eq!(out, payload);

    // Final release: the object dies and its bytes leave the accounting.
    client.release_mem_object(buf).unwrap();
    client.finish(queue).unwrap();
    assert_eq!(
        stack.vm_memory_stats(vm).unwrap().live_bytes,
        base,
        "final release must retire residency exactly"
    );
}

#[test]
fn raw_guest_call_surfaces_quota_exceeded() {
    use ava_wire::Value;
    use simcl::ClApi;
    let stack = stack_with_capacity(None);
    let (_vm, lib) = stack
        .attach_vm(VmPolicy::with_device_mem_quota(1 << 10))
        .expect("vm attaches");
    let client = OpenClClient::new(lib);
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client
        .get_device_ids(platform, simcl::DeviceType::All)
        .unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    // Drive the guest library directly so the typed error is observable
    // before the OpenCL binding folds it into a CL status code.
    let err = client
        .library()
        .call(
            "clCreateBuffer",
            vec![
                Value::Handle(ctx.0),
                Value::U64(simcl::MemFlags::read_write().to_bits()),
                Value::U64(4 << 10),
                Value::Null,
                Value::U64(1),
            ],
        )
        .expect_err("over-quota raw call must fail");
    assert!(matches!(err, GuestError::QuotaExceeded), "{err}");
    assert!(!err.is_retryable(), "quota rejection is not retryable");
}
