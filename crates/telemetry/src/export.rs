//! Standard-format exporters over a [`Snapshot`].
//!
//! Two formats, both self-contained strings with no serde dependency:
//!
//! * **Chrome trace / Perfetto JSON** ([`trace_json`]): each completed
//!   span becomes complete (`"ph":"X"`) slices on per-tier tracks
//!   (guest / transport / router / server), and each flight-recorder
//!   event becomes an instant (`"ph":"i"`) on its tier's track — pool
//!   events land on a per-slot track. Load the file at `ui.perfetto.dev`
//!   or `chrome://tracing`.
//! * **Prometheus text exposition** ([`prometheus`]): every counter,
//!   gauge and histogram in the registry, with stable metric names —
//!   per-VM / per-slot / per-function path segments become labels, so
//!   `router.vm3.bytes_elided` exports as
//!   `ava_router_vm_bytes_elided_total{vm="3"}` and the family name is
//!   identical for every VM.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::{bucket_bounds, HistogramSnapshot, BUCKETS};
use crate::recorder::{unpack_slots, Event, EventKind, Tier};
use crate::registry::Snapshot;
use crate::span::SpanRecord;

/// Synthetic process id for the whole stack (one process, many tracks).
const TRACE_PID: u32 = 1;

/// Track (thread) ids per tier; pool slots get `POOL_TID_BASE + slot`.
fn tier_tid(tier: Tier) -> u64 {
    match tier {
        Tier::Guest => 1,
        Tier::Transport => 2,
        Tier::Router => 3,
        Tier::Server => 4,
        Tier::Supervisor => 5,
        Tier::Pool => POOL_TID_BASE, // refined per-slot by the caller
    }
}

/// Pool slot `s` renders on track `POOL_TID_BASE + s`.
const POOL_TID_BASE: u64 = 10;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Microseconds (Chrome trace unit) from registry nanoseconds, keeping
/// sub-microsecond resolution as a fraction.
fn micros(nanos: u64) -> f64 {
    nanos as f64 / 1000.0
}

struct TraceEvent {
    ts: f64,
    line: String,
}

fn complete_event(
    name: &str,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    args: &[(&str, String)],
) -> TraceEvent {
    let ts = micros(start_ns);
    let dur = micros(end_ns.saturating_sub(start_ns));
    let args_json = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
        .collect::<Vec<_>>()
        .join(",");
    TraceEvent {
        ts,
        line: format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{TRACE_PID},\"tid\":{tid},\"args\":{{{args_json}}}}}",
            esc(name)
        ),
    }
}

fn instant_event(name: &str, tid: u64, nanos: u64, args: &[(&str, String)]) -> TraceEvent {
    let ts = micros(nanos);
    let args_json = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
        .collect::<Vec<_>>()
        .join(",");
    TraceEvent {
        ts,
        line: format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":{TRACE_PID},\"tid\":{tid},\"args\":{{{args_json}}}}}",
            esc(name)
        ),
    }
}

fn metadata_event(tid: u64, track_name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        esc(track_name)
    )
}

fn span_slices(span: &SpanRecord, out: &mut Vec<TraceEvent>) {
    let label = match span.fn_id.or(span.server_fn_id) {
        Some(f) => format!("vm{} fn{}", span.vm, f),
        None => format!("vm{} call{}", span.vm, span.call_id),
    };
    let args = [
        ("vm", span.vm.to_string()),
        ("call_id", span.call_id.to_string()),
    ];
    if let (Some(a), Some(b)) = (span.guest_start, span.guest_end) {
        out.push(complete_event(&label, tier_tid(Tier::Guest), a, b, &args));
    }
    if let (Some(a), Some(b)) = (span.sent, span.queued) {
        out.push(complete_event(
            &format!("{label} out"),
            tier_tid(Tier::Transport),
            a,
            b,
            &args,
        ));
    }
    if let (Some(a), Some(b)) = (span.queued, span.forwarded) {
        out.push(complete_event(&label, tier_tid(Tier::Router), a, b, &args));
    }
    if let (Some(a), Some(b)) = (span.forwarded, span.executed) {
        out.push(complete_event(&label, tier_tid(Tier::Server), a, b, &args));
    }
    if let (Some(a), Some(b)) = (span.replied, span.guest_end) {
        out.push(complete_event(
            &format!("{label} back"),
            tier_tid(Tier::Transport),
            a,
            b,
            &args,
        ));
    }
}

/// The track an event renders on: pool events go to their slot's track.
fn event_tid(event: &Event) -> u64 {
    if event.tier == Tier::Pool {
        let slot = if event.kind == EventKind::Rebalance {
            unpack_slots(event.arg).1
        } else {
            (event.arg & 0xffff_ffff) as usize
        };
        POOL_TID_BASE + slot as u64
    } else {
        tier_tid(event.tier)
    }
}

fn event_instant(event: &Event) -> TraceEvent {
    let mut args = vec![("vm", event.vm.to_string()), ("arg", event.arg.to_string())];
    if event.call_id != 0 {
        args.push(("call_id", event.call_id.to_string()));
    }
    if event.kind == EventKind::Rebalance {
        let (src, dst) = unpack_slots(event.arg);
        args.push(("src_slot", src.to_string()));
        args.push(("dst_slot", dst.to_string()));
    }
    instant_event(event.kind.name(), event_tid(event), event.nanos, &args)
}

/// Renders `snapshot` as Chrome-trace JSON (`{"traceEvents":[...]}`),
/// time-ordered, one track per tier plus one per pool slot.
pub fn trace_json(snapshot: &Snapshot) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    for span in &snapshot.spans {
        span_slices(span, &mut events);
    }
    let mut pool_slots: Vec<u64> = Vec::new();
    for event in &snapshot.events {
        if event.tier == Tier::Pool {
            let tid = event_tid(event);
            if !pool_slots.contains(&tid) {
                pool_slots.push(tid);
            }
        }
        events.push(event_instant(event));
    }
    // Perfetto tolerates unsorted input but the CI checker (and humans
    // reading the raw JSON) expect time order per track.
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts));

    let mut lines: Vec<String> = vec![
        metadata_event(tier_tid(Tier::Guest), "guest"),
        metadata_event(tier_tid(Tier::Transport), "transport"),
        metadata_event(tier_tid(Tier::Router), "router"),
        metadata_event(tier_tid(Tier::Server), "server"),
        metadata_event(tier_tid(Tier::Supervisor), "supervisor"),
    ];
    pool_slots.sort_unstable();
    for tid in pool_slots {
        lines.push(metadata_event(
            tid,
            &format!("pool slot{}", tid - POOL_TID_BASE),
        ));
    }
    lines.extend(events.into_iter().map(|e| e.line));

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"");
    out.push_str(&format!(
        ",\"otherData\":{{\"spans\":{},\"events\":{},\"events_overwritten\":{},\"spans_dropped\":{}}}",
        snapshot.spans.len(),
        snapshot.events.len(),
        snapshot.events_overwritten,
        snapshot.spans_dropped
    ));
    out.push_str("}\n");
    out
}

/// A registry name mangled into a Prometheus family plus labels.
struct PromName {
    family: String,
    labels: Vec<(String, String)>,
}

fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Splits a `tier.subsystem.name` registry key into a stable family name
/// and labels: `vm<N>` / `slot<N>` segments become `vm` / `slot` labels,
/// and the per-function histogram families (`guest.call.<fn>`,
/// `server.execute.<fn>`) carry the function as an `fn` label.
fn mangle(name: &str) -> PromName {
    if let Some(f) = name.strip_prefix("guest.call.") {
        return PromName {
            family: "ava_guest_call_ns".into(),
            labels: vec![("fn".into(), f.to_string())],
        };
    }
    if let Some(f) = name.strip_prefix("server.execute.") {
        return PromName {
            family: "ava_server_execute_ns".into(),
            labels: vec![("fn".into(), f.to_string())],
        };
    }
    let mut parts: Vec<String> = Vec::new();
    let mut labels: Vec<(String, String)> = Vec::new();
    for seg in name.split('.') {
        let vm_id = seg
            .strip_prefix("vm")
            .filter(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
        let slot_id = seg
            .strip_prefix("slot")
            .filter(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()));
        if let Some(id) = vm_id {
            parts.push("vm".into());
            labels.push(("vm".into(), id.to_string()));
        } else if let Some(id) = slot_id {
            parts.push("slot".into());
            labels.push(("slot".into(), id.to_string()));
        } else {
            parts.push(sanitize(seg));
        }
    }
    PromName {
        family: format!("ava_{}", parts.join("_")),
        labels,
    }
}

fn label_str(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let body = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", esc(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

fn label_str_with(labels: &[(String, String)], extra_key: &str, extra_val: &str) -> String {
    let mut all = labels.to_vec();
    all.push((extra_key.to_string(), extra_val.to_string()));
    label_str(&all)
}

/// One Prometheus family: TYPE plus its sample lines, grouped so the
/// exposition emits `# HELP`/`# TYPE` once per family.
struct Family {
    kind: &'static str,
    samples: Vec<String>,
}

fn family_entry<'a>(
    families: &'a mut BTreeMap<String, Family>,
    name: &str,
    kind: &'static str,
) -> &'a mut Family {
    families.entry(name.to_string()).or_insert_with(|| Family {
        kind,
        samples: Vec::new(),
    })
}

fn histogram_samples(
    family: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut cumulative = 0u64;
    for i in 0..BUCKETS {
        let n = h.buckets[i];
        if n == 0 {
            continue;
        }
        cumulative += n;
        let (_, hi) = bucket_bounds(i);
        out.push(format!(
            "{family}_bucket{} {cumulative}",
            label_str_with(labels, "le", &hi.to_string())
        ));
    }
    out.push(format!(
        "{family}_bucket{} {}",
        label_str_with(labels, "le", "+Inf"),
        h.count
    ));
    out.push(format!("{family}_sum{} {}", label_str(labels), h.sum));
    out.push(format!("{family}_count{} {}", label_str(labels), h.count));
    out
}

/// Renders `snapshot` as Prometheus text exposition format, covering
/// every counter, gauge and histogram plus recorder/span meta-metrics.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();

    for (name, value) in &snapshot.counters {
        let m = mangle(name);
        let family = format!("{}_total", m.family);
        let sample = format!("{family}{} {value}", label_str(&m.labels));
        family_entry(&mut families, &family, "counter")
            .samples
            .push(sample);
    }
    for (name, value) in &snapshot.gauges {
        let m = mangle(name);
        let sample = format!("{}{} {value}", m.family, label_str(&m.labels));
        family_entry(&mut families, &m.family, "gauge")
            .samples
            .push(sample);
    }
    for (name, h) in &snapshot.histograms {
        let m = mangle(name);
        let samples = histogram_samples(&m.family, &m.labels, h);
        family_entry(&mut families, &m.family, "histogram")
            .samples
            .extend(samples);
    }

    // Observability-of-the-observability: shed history is itself visible.
    family_entry(
        &mut families,
        "ava_recorder_events_overwritten_total",
        "counter",
    )
    .samples
    .push(format!(
        "ava_recorder_events_overwritten_total {}",
        snapshot.events_overwritten
    ));
    family_entry(&mut families, "ava_recorder_events_retained", "gauge")
        .samples
        .push(format!(
            "ava_recorder_events_retained {}",
            snapshot.events.len()
        ));
    family_entry(&mut families, "ava_spans_dropped_total", "counter")
        .samples
        .push(format!(
            "ava_spans_dropped_total {}",
            snapshot.spans_dropped
        ));
    family_entry(&mut families, "ava_spans_completed", "gauge")
        .samples
        .push(format!("ava_spans_completed {}", snapshot.spans.len()));

    let mut out = String::new();
    for (name, family) in &families {
        let _ = writeln!(
            out,
            "# HELP {name} AvA {} exported from the telemetry registry.",
            family.kind
        );
        let _ = writeln!(out, "# TYPE {name} {}", family.kind);
        for sample in &family.samples {
            let _ = writeln!(out, "{sample}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::Stage;

    #[test]
    fn mangle_turns_vm_and_slot_into_labels() {
        let m = mangle("router.vm3.bytes_elided");
        assert_eq!(m.family, "ava_router_vm_bytes_elided");
        assert_eq!(m.labels, vec![("vm".to_string(), "3".to_string())]);
        let m = mangle("pool.slot0.queue_depth");
        assert_eq!(m.family, "ava_pool_slot_queue_depth");
        assert_eq!(m.labels, vec![("slot".to_string(), "0".to_string())]);
        let m = mangle("guest.call.clFinish");
        assert_eq!(m.family, "ava_guest_call_ns");
        assert_eq!(m.labels, vec![("fn".to_string(), "clFinish".to_string())]);
        // Non-numeric suffixes stay in the family name.
        let m = mangle("guest.vmx.thing");
        assert_eq!(m.family, "ava_guest_vmx_thing");
        assert!(m.labels.is_empty());
    }

    #[test]
    fn prometheus_counter_line_matches_issue_example() {
        let r = Registry::new();
        r.counter("router.vm3.bytes_elided").add(42);
        let text = prometheus(&r.snapshot());
        assert!(
            text.contains("ava_router_vm_bytes_elided_total{vm=\"3\"} 42"),
            "exposition:\n{text}"
        );
        assert!(text.contains("# TYPE ava_router_vm_bytes_elided_total counter"));
    }

    #[test]
    fn trace_json_has_tier_tracks_and_balanced_json() {
        let r = Registry::new();
        let key = (1, 5);
        let s = r.spans();
        s.stage(key, Stage::GuestStart, 1_000, Some(7));
        s.stage(key, Stage::Sent, 2_000, None);
        s.stage(key, Stage::Queued, 3_000, None);
        s.stage(key, Stage::Forwarded, 4_000, None);
        s.stage(key, Stage::Executed, 5_000, Some(7));
        s.stage(key, Stage::Replied, 6_000, None);
        s.stage(key, Stage::GuestEnd, 7_000, None);
        let json = trace_json(&r.snapshot());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"router\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
