//! Pluggable, interposable transports for AvA.
//!
//! Every forwarded API call flows through a [`Transport`] pair. The
//! hypervisor owns both ends of the guest-visible channel, which is what
//! restores interposition to API remoting (§2–3 of the paper): the router
//! sits between the guest's endpoint and the API server's endpoint and sees
//! every command.
//!
//! Three implementations are provided:
//!
//! * [`inproc`] — an in-process channel; the "ideal" transport used as the
//!   zero-overhead baseline and in unit tests.
//! * [`shmem`] — a virtio-style shared-memory ring: messages are actually
//!   serialized into a byte ring guarded by atomics, with a [`CostModel`]
//!   charging doorbell/exit and delivery costs. This is the default
//!   para-virtual transport.
//! * [`tcp`] — a socket transport for disaggregated accelerators (the
//!   LegoOS-style configuration mentioned in §4.1).

pub mod error;
pub mod fault;
pub mod inproc;
pub mod latency;
pub mod shmem;
pub mod stats;
pub mod tcp;

use std::time::Duration;

use ava_wire::Message;

pub use error::{Result, TransportError};
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultStats};
pub use latency::CostModel;
pub use stats::TransportStats;

/// A bidirectional, message-oriented channel endpoint.
///
/// All methods take `&self`: implementations are internally synchronized so
/// an endpoint can be shared between a sender thread and a receiver thread.
pub trait Transport: Send + Sync {
    /// Sends one message. Blocks if the channel is full.
    fn send(&self, msg: &Message) -> Result<()>;

    /// Receives the next message, blocking until one arrives or the peer
    /// closes.
    fn recv(&self) -> Result<Message>;

    /// Receives the next message if one is already available.
    fn try_recv(&self) -> Result<Option<Message>>;

    /// Receives the next message, waiting at most `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>>;

    /// Closes the endpoint; the peer's pending and future operations fail
    /// with [`TransportError::Closed`] once drained.
    fn close(&self);

    /// Traffic counters for this endpoint.
    fn stats(&self) -> TransportStats;

    /// Registers this endpoint's counters into `registry` under
    /// `transport.<prefix>.*`, sharing storage with [`Transport::stats`].
    /// Default: no-op, for transports without exposable counters.
    fn register_telemetry(&self, registry: &ava_telemetry::Registry, prefix: &str) {
        let _ = (registry, prefix);
    }
}

/// Boxed transport, the form the runtime components pass around.
pub type BoxedTransport = Box<dyn Transport>;

/// Which concrete transport to build; used by configuration surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channel (no modelled costs unless specified).
    InProcess,
    /// Shared-memory ring (para-virtual default).
    SharedMemory,
    /// TCP socket (disaggregated accelerators).
    Tcp,
}

/// Builds a connected transport pair of the given kind with `model` costs.
///
/// The first element is conventionally the guest/driver side and the second
/// the host/device side, but the endpoints are symmetric.
pub fn pair(kind: TransportKind, model: CostModel) -> Result<(BoxedTransport, BoxedTransport)> {
    match kind {
        TransportKind::InProcess => {
            let (a, b) = inproc::pair(model);
            Ok((Box::new(a), Box::new(b)))
        }
        TransportKind::SharedMemory => {
            let (a, b) = shmem::pair(shmem::RingConfig {
                model,
                ..Default::default()
            });
            Ok((Box::new(a), Box::new(b)))
        }
        TransportKind::Tcp => {
            let (a, b) = tcp::localhost_pair(model)?;
            Ok((Box::new(a), Box::new(b)))
        }
    }
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use ava_wire::ControlMessage;

    #[test]
    fn all_kinds_round_trip_a_message() {
        for kind in [
            TransportKind::InProcess,
            TransportKind::SharedMemory,
            TransportKind::Tcp,
        ] {
            let (a, b) = pair(kind, CostModel::free()).unwrap();
            let msg = Message::Control(ControlMessage::Ping(42));
            a.send(&msg).unwrap();
            assert_eq!(b.recv().unwrap(), msg, "{kind:?}");
            let reply = Message::Control(ControlMessage::Pong(42));
            b.send(&reply).unwrap();
            assert_eq!(a.recv().unwrap(), reply, "{kind:?}");
        }
    }
}
