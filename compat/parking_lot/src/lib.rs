//! Offline compatibility shim for the `parking_lot` API subset this
//! workspace uses, implemented over `std::sync`.
//!
//! The build environment for this repository is fully network-isolated
//! (no crates.io access), so external dependencies are satisfied by small
//! in-tree shims that reproduce the exact API surface the code relies on
//! (see `compat/README.md`). Semantics preserved from parking_lot:
//! locks are **not poisoned** by a panicking holder — a guard acquired
//! after a panic simply sees the data as the panicker left it. That
//! property is load-bearing for the device-pool layer, where one VM's
//! serving thread must not poison a slot handler shared with its
//! slot-mates.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, a panic while
/// the lock is held does not poison it.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a condvar wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; like [`Mutex`], never poisoned.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
