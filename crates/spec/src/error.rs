//! Errors for specification parsing, inference and lowering.

use std::fmt;

/// Location of an error within a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error raised while processing an API specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Where the problem was detected (line 0 means "no position").
    pub loc: Loc,
    /// What went wrong.
    pub kind: SpecErrorKind,
}

/// Classification of specification errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// Tokenizer failure (bad character, unterminated literal).
    Lex(String),
    /// Preprocessor failure (unknown directive, missing include).
    Preprocess(String),
    /// Grammar violation.
    Parse(String),
    /// A name was referenced but never declared.
    Unknown(String),
    /// An annotation conflicts with the declaration or another annotation.
    Conflict(String),
    /// Size/condition expression could not be evaluated.
    Eval(String),
    /// The spec is structurally valid but cannot be lowered to a runtime
    /// descriptor (e.g. a pointer parameter with no size information).
    Lowering(String),
}

impl SpecError {
    /// Creates an error at a specific location.
    pub fn at(loc: Loc, kind: SpecErrorKind) -> Self {
        SpecError { loc, kind }
    }

    /// Creates an error with no meaningful position.
    pub fn nowhere(kind: SpecErrorKind) -> Self {
        SpecError {
            loc: Loc { line: 0, col: 0 },
            kind,
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            SpecErrorKind::Lex(m) => format!("lex error: {m}"),
            SpecErrorKind::Preprocess(m) => format!("preprocess error: {m}"),
            SpecErrorKind::Parse(m) => format!("parse error: {m}"),
            SpecErrorKind::Unknown(m) => format!("unknown name: {m}"),
            SpecErrorKind::Conflict(m) => format!("conflicting annotation: {m}"),
            SpecErrorKind::Eval(m) => format!("expression error: {m}"),
            SpecErrorKind::Lowering(m) => format!("lowering error: {m}"),
        };
        if self.loc.line == 0 {
            write!(f, "{what}")
        } else {
            write!(f, "{}: {what}", self.loc)
        }
    }
}

impl std::error::Error for SpecError {}

/// Result alias for spec operations.
pub type Result<T> = std::result::Result<T, SpecError>;
