//! The native OpenCL-subset runtime (`SimCl`), executing on simulated
//! devices.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::api::ClApi;
use crate::device::{DeviceConfig, DeviceState};
use crate::event::EventCore;
use crate::kernels::KernelRegistry;
use crate::mem::AlignedBuf;
use crate::objects::{
    BoundArg, BuildOutput, ContextObj, EventObj, KernelObj, MemObj, ProgramObj, QueueObj, RefCount,
};
use crate::program::{parse_kernel_signatures, KernelParamKind};
use crate::queue::{run_worker, Command};
use crate::status::*;
use crate::types::*;

/// Handle value of the single platform.
const PLATFORM_ID: u64 = 1;
/// First device handle value.
const DEVICE_BASE: u64 = 0x10;
/// First dynamically allocated object handle value.
const OBJECT_BASE: u64 = 0x1000;

#[derive(Default)]
struct Objects {
    next: u64,
    contexts: HashMap<u64, Arc<ContextObj>>,
    queues: HashMap<u64, Arc<QueueObj>>,
    mems: HashMap<u64, Arc<MemObj>>,
    programs: HashMap<u64, Arc<ProgramObj>>,
    kernels: HashMap<u64, Arc<KernelObj>>,
    events: HashMap<u64, Arc<EventObj>>,
}

impl Objects {
    fn fresh_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

struct Inner {
    devices: Vec<Arc<DeviceState>>,
    registry: Arc<KernelRegistry>,
    objects: Mutex<Objects>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Stop all queue workers so no threads outlive the runtime.
        let queues: Vec<Arc<QueueObj>> = self.objects.lock().queues.values().cloned().collect();
        for q in queues {
            q.shutdown();
        }
    }
}

/// The native OpenCL-subset silo.
///
/// Cloning is cheap and shares the same device and object state — the
/// equivalent of two threads linking the same vendor library.
#[derive(Clone)]
pub struct SimCl {
    inner: Arc<Inner>,
}

impl SimCl {
    /// Creates a runtime with one default (GTX-1080-class) device and the
    /// built-in kernels registered.
    pub fn new() -> Self {
        Self::with_devices(vec![DeviceConfig::default()])
    }

    /// Creates a runtime with custom devices and the built-in kernels.
    pub fn with_devices(configs: Vec<DeviceConfig>) -> Self {
        Self::with_devices_and_registry(configs, Arc::new(KernelRegistry::new().with_builtins()))
    }

    /// Creates a runtime with custom devices and a caller-supplied kernel
    /// registry (how workload crates install their kernels).
    pub fn with_devices_and_registry(
        configs: Vec<DeviceConfig>,
        registry: Arc<KernelRegistry>,
    ) -> Self {
        let devices = configs
            .into_iter()
            .map(|c| Arc::new(DeviceState::new(c)))
            .collect();
        SimCl {
            inner: Arc::new(Inner {
                devices,
                registry,
                objects: Mutex::new(Objects {
                    next: OBJECT_BASE,
                    ..Objects::default()
                }),
            }),
        }
    }

    /// The kernel registry (for installing additional kernels).
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        &self.inner.registry
    }

    /// Direct access to a device's state (used by schedulers that consult
    /// the profiling interface, §4.3).
    pub fn device_state(&self, device: ClDevice) -> ClResult<Arc<DeviceState>> {
        self.device(device.0)
    }

    fn device(&self, id: u64) -> ClResult<Arc<DeviceState>> {
        let idx = id
            .checked_sub(DEVICE_BASE)
            .ok_or(ClError(CL_INVALID_DEVICE))?;
        self.inner
            .devices
            .get(idx as usize)
            .cloned()
            .ok_or(ClError(CL_INVALID_DEVICE))
    }

    fn ctx(&self, id: u64) -> ClResult<Arc<ContextObj>> {
        self.inner
            .objects
            .lock()
            .contexts
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_CONTEXT))
    }

    fn queue(&self, id: u64) -> ClResult<Arc<QueueObj>> {
        self.inner
            .objects
            .lock()
            .queues
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_COMMAND_QUEUE))
    }

    fn mem(&self, id: u64) -> ClResult<Arc<MemObj>> {
        self.inner
            .objects
            .lock()
            .mems
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_MEM_OBJECT))
    }

    fn prog(&self, id: u64) -> ClResult<Arc<ProgramObj>> {
        self.inner
            .objects
            .lock()
            .programs
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_PROGRAM))
    }

    fn kern(&self, id: u64) -> ClResult<Arc<KernelObj>> {
        self.inner
            .objects
            .lock()
            .kernels
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_KERNEL))
    }

    fn event(&self, id: u64) -> ClResult<Arc<EventObj>> {
        self.inner
            .objects
            .lock()
            .events
            .get(&id)
            .cloned()
            .ok_or(ClError(CL_INVALID_EVENT))
    }

    fn resolve_wait_list(&self, wait: &[ClEvent]) -> ClResult<Vec<Arc<EventCore>>> {
        wait.iter()
            .map(|e| {
                self.event(e.0)
                    .map(|obj| Arc::clone(&obj.core))
                    .map_err(|_| ClError(CL_INVALID_EVENT_WAIT_LIST))
            })
            .collect()
    }

    /// Registers an event object if the caller asked for one.
    fn register_event(&self, core: Arc<EventCore>, want_event: bool) -> Option<ClEvent> {
        if !want_event {
            return None;
        }
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        objects.events.insert(
            id,
            Arc::new(EventObj {
                core,
                refs: RefCount::new(),
            }),
        );
        Some(ClEvent(id))
    }

    fn make_buffer(
        &self,
        context: ClContext,
        flags: MemFlags,
        size: usize,
        image: Option<ImageDesc>,
        host_data: Option<&[u8]>,
    ) -> ClResult<ClMem> {
        if size == 0 {
            return Err(ClError(CL_INVALID_BUFFER_SIZE));
        }
        if let Some(data) = host_data {
            if data.len() != size {
                return Err(ClError(CL_INVALID_VALUE));
            }
        }
        let ctx = self.ctx(context.0)?;
        ctx.device.alloc(size)?;
        let buf = match host_data {
            Some(data) => AlignedBuf::from_bytes(data),
            None => AlignedBuf::zeroed(size),
        };
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        objects.mems.insert(
            id,
            Arc::new(MemObj {
                id,
                ctx: context.0,
                size,
                flags,
                image,
                device: Arc::clone(&ctx.device),
                data: Mutex::new(buf),
                refs: RefCount::new(),
            }),
        );
        Ok(ClMem(id))
    }

    fn snapshot_kernel_args(&self, kernel: &KernelObj) -> ClResult<Vec<BoundArg>> {
        let args = kernel.args.lock();
        if args.len() != kernel.sig.params.len() || args.iter().any(Option::is_none) {
            return Err(ClError(CL_INVALID_KERNEL_ARGS));
        }
        Ok(args
            .iter()
            .map(|a| a.clone().expect("checked above"))
            .collect())
    }

    fn enqueue_kernel_common(
        &self,
        queue: ClQueue,
        kernel: ClKernel,
        global: [usize; 3],
        local: Option<[usize; 3]>,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let q = self.queue(queue.0)?;
        let k = self.kern(kernel.0)?;
        if global.contains(&0) {
            return Err(ClError(CL_INVALID_WORK_DIMENSION));
        }
        let max_wg = q.device.config.max_work_group_size;
        let local = match local {
            Some(l) => {
                if l.contains(&0)
                    || l.iter().product::<usize>() > max_wg
                    || global.iter().zip(l.iter()).any(|(g, l)| g % l != 0)
                {
                    return Err(ClError(CL_INVALID_WORK_GROUP_SIZE));
                }
                l
            }
            None => {
                // Implementation-chosen group size: the largest power of
                // two that divides global[0] and fits the device limit.
                let mut size = 1usize;
                while size * 2 <= max_wg && global[0].is_multiple_of(size * 2) {
                    size *= 2;
                }
                [size, 1, 1]
            }
        };
        let args = self.snapshot_kernel_args(&k)?;
        let wait = self.resolve_wait_list(wait)?;
        let core = Arc::new(EventCore::new(q.props.profiling));
        core.mark_queued(q.device.now_nanos());
        q.tx.send(Command::RunKernel {
            body: Arc::clone(&k.body),
            args,
            global,
            local,
            wait,
            event: Arc::clone(&core),
        })
        .map_err(|_| ClError(CL_INVALID_COMMAND_QUEUE))?;
        Ok(self.register_event(core, want_event))
    }
}

impl Default for SimCl {
    fn default() -> Self {
        Self::new()
    }
}

impl ClApi for SimCl {
    fn get_platform_ids(&self) -> ClResult<Vec<ClPlatform>> {
        Ok(vec![ClPlatform(PLATFORM_ID)])
    }

    fn get_platform_info(&self, platform: ClPlatform, info: PlatformInfo) -> ClResult<String> {
        if platform.0 != PLATFORM_ID {
            return Err(ClError(CL_INVALID_VALUE));
        }
        Ok(match info {
            PlatformInfo::Name => "AvA SimCL".to_string(),
            PlatformInfo::Vendor => "AvA Project".to_string(),
            PlatformInfo::Version => "OpenCL 1.2 simcl".to_string(),
        })
    }

    fn get_device_ids(&self, platform: ClPlatform, ty: DeviceType) -> ClResult<Vec<ClDevice>> {
        if platform.0 != PLATFORM_ID {
            return Err(ClError(CL_INVALID_VALUE));
        }
        let ids: Vec<ClDevice> = self
            .inner
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| match ty {
                DeviceType::All => true,
                DeviceType::Gpu => d.config.is_gpu,
                DeviceType::Accelerator => !d.config.is_gpu,
            })
            .map(|(i, _)| ClDevice(DEVICE_BASE + i as u64))
            .collect();
        if ids.is_empty() {
            return Err(ClError(CL_DEVICE_NOT_FOUND));
        }
        Ok(ids)
    }

    fn get_device_info(&self, device: ClDevice, info: DeviceInfo) -> ClResult<InfoValue> {
        let dev = self.device(device.0)?;
        Ok(match info {
            DeviceInfo::Name => InfoValue::Str(dev.config.name.clone()),
            DeviceInfo::Vendor => InfoValue::Str(dev.config.vendor.clone()),
            DeviceInfo::MaxComputeUnits => InfoValue::UInt(dev.config.compute_units as u64),
            DeviceInfo::MaxWorkGroupSize => InfoValue::UInt(dev.config.max_work_group_size as u64),
            DeviceInfo::GlobalMemSize => InfoValue::UInt(dev.config.global_mem_size as u64),
            DeviceInfo::LocalMemSize => InfoValue::UInt(dev.config.local_mem_size as u64),
            DeviceInfo::Type => InfoValue::UInt(if dev.config.is_gpu { 1 << 2 } else { 1 << 3 }),
        })
    }

    fn create_context(&self, device: ClDevice) -> ClResult<ClContext> {
        let dev = self.device(device.0)?;
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        objects.contexts.insert(
            id,
            Arc::new(ContextObj {
                device: dev,
                device_id: device.0,
                refs: RefCount::new(),
            }),
        );
        Ok(ClContext(id))
    }

    fn retain_context(&self, context: ClContext) -> ClResult<()> {
        self.ctx(context.0)?.refs.retain();
        Ok(())
    }

    fn release_context(&self, context: ClContext) -> ClResult<()> {
        let obj = self.ctx(context.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().contexts.remove(&context.0);
        }
        Ok(())
    }

    fn get_context_info(&self, context: ClContext) -> ClResult<ClDevice> {
        Ok(ClDevice(self.ctx(context.0)?.device_id))
    }

    fn create_command_queue(
        &self,
        context: ClContext,
        device: ClDevice,
        props: QueueProps,
    ) -> ClResult<ClQueue> {
        let ctx = self.ctx(context.0)?;
        let dev = self.device(device.0)?;
        if !Arc::ptr_eq(&ctx.device, &dev) {
            return Err(ClError(CL_INVALID_DEVICE));
        }
        let (tx, rx) = crossbeam::channel::unbounded();
        let worker_dev = Arc::clone(&dev);
        let worker = std::thread::Builder::new()
            .name("simcl-queue".into())
            .spawn(move || run_worker(rx, worker_dev))
            .map_err(|_| ClError(CL_OUT_OF_HOST_MEMORY))?;
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        objects.queues.insert(
            id,
            Arc::new(QueueObj {
                ctx: context.0,
                device: dev,
                props,
                tx,
                worker: Mutex::new(Some(worker)),
                refs: RefCount::new(),
            }),
        );
        Ok(ClQueue(id))
    }

    fn retain_command_queue(&self, queue: ClQueue) -> ClResult<()> {
        self.queue(queue.0)?.refs.retain();
        Ok(())
    }

    fn release_command_queue(&self, queue: ClQueue) -> ClResult<()> {
        let obj = self.queue(queue.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().queues.remove(&queue.0);
            obj.shutdown();
        }
        Ok(())
    }

    fn create_buffer(
        &self,
        context: ClContext,
        flags: MemFlags,
        size: usize,
        host_data: Option<&[u8]>,
    ) -> ClResult<ClMem> {
        self.make_buffer(context, flags, size, None, host_data)
    }

    fn create_image(
        &self,
        context: ClContext,
        flags: MemFlags,
        desc: ImageDesc,
        host_data: Option<&[u8]>,
    ) -> ClResult<ClMem> {
        self.make_buffer(context, flags, desc.byte_len(), Some(desc), host_data)
    }

    fn retain_mem_object(&self, mem: ClMem) -> ClResult<()> {
        self.mem(mem.0)?.refs.retain();
        Ok(())
    }

    fn release_mem_object(&self, mem: ClMem) -> ClResult<()> {
        let obj = self.mem(mem.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().mems.remove(&mem.0);
            obj.device.free(obj.size);
        }
        Ok(())
    }

    fn get_mem_object_info(&self, mem: ClMem) -> ClResult<usize> {
        Ok(self.mem(mem.0)?.size)
    }

    fn create_program_with_source(&self, context: ClContext, source: &str) -> ClResult<ClProgram> {
        self.ctx(context.0)?;
        if source.is_empty() {
            return Err(ClError(CL_INVALID_VALUE));
        }
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        objects.programs.insert(
            id,
            Arc::new(ProgramObj {
                ctx: context.0,
                source: source.to_string(),
                build: Mutex::new(None),
                refs: RefCount::new(),
            }),
        );
        Ok(ClProgram(id))
    }

    fn build_program(&self, program: ClProgram, options: &str) -> ClResult<()> {
        let prog = self.prog(program.0)?;
        let sigs = parse_kernel_signatures(&prog.source);
        let mut log = format!("simcl build (options: {options:?})\n");
        if sigs.is_empty() {
            log.push_str("error: no __kernel entry points found\n");
            *prog.build.lock() = Some(Err(log));
            return Err(ClError(CL_BUILD_PROGRAM_FAILURE));
        }
        let mut missing = Vec::new();
        for sig in &sigs {
            if self.inner.registry.contains(&sig.name) {
                log.push_str(&format!(
                    "kernel `{}`: {} arg(s), device code bound\n",
                    sig.name,
                    sig.params.len()
                ));
            } else {
                missing.push(sig.name.clone());
            }
        }
        if !missing.is_empty() {
            log.push_str(&format!(
                "error: no registered device code for kernel(s): {}\n",
                missing.join(", ")
            ));
            *prog.build.lock() = Some(Err(log));
            return Err(ClError(CL_BUILD_PROGRAM_FAILURE));
        }
        *prog.build.lock() = Some(Ok(BuildOutput { sigs, log }));
        Ok(())
    }

    fn compile_program(&self, program: ClProgram, options: &str) -> ClResult<()> {
        self.build_program(program, options)
    }

    fn get_program_build_info(&self, program: ClProgram) -> ClResult<String> {
        let prog = self.prog(program.0)?;
        let build = prog.build.lock();
        Ok(match &*build {
            Some(Ok(out)) => out.log.clone(),
            Some(Err(log)) => log.clone(),
            None => "not built".to_string(),
        })
    }

    fn retain_program(&self, program: ClProgram) -> ClResult<()> {
        self.prog(program.0)?.refs.retain();
        Ok(())
    }

    fn release_program(&self, program: ClProgram) -> ClResult<()> {
        let obj = self.prog(program.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().programs.remove(&program.0);
        }
        Ok(())
    }

    fn create_kernel(&self, program: ClProgram, name: &str) -> ClResult<ClKernel> {
        let prog = self.prog(program.0)?;
        let build = prog.build.lock();
        let out = match &*build {
            Some(Ok(out)) => out.clone(),
            _ => return Err(ClError(CL_INVALID_PROGRAM_EXECUTABLE)),
        };
        drop(build);
        let sig = out
            .sigs
            .iter()
            .find(|s| s.name == name)
            .cloned()
            .ok_or(ClError(CL_INVALID_KERNEL_NAME))?;
        let body = self
            .inner
            .registry
            .get(name)
            .ok_or(ClError(CL_INVALID_KERNEL_NAME))?;
        let mut objects = self.inner.objects.lock();
        let id = objects.fresh_id();
        let arg_count = sig.params.len();
        objects.kernels.insert(
            id,
            Arc::new(KernelObj {
                program: program.0,
                name: name.to_string(),
                sig,
                body,
                args: Mutex::new(vec![None; arg_count]),
                refs: RefCount::new(),
            }),
        );
        Ok(ClKernel(id))
    }

    fn create_kernels_in_program(&self, program: ClProgram) -> ClResult<Vec<ClKernel>> {
        let prog = self.prog(program.0)?;
        let names: Vec<String> = match &*prog.build.lock() {
            Some(Ok(out)) => out.sigs.iter().map(|s| s.name.clone()).collect(),
            _ => return Err(ClError(CL_INVALID_PROGRAM_EXECUTABLE)),
        };
        names
            .iter()
            .map(|n| self.create_kernel(program, n))
            .collect()
    }

    fn set_kernel_arg(&self, kernel: ClKernel, index: u32, arg: KernelArg) -> ClResult<()> {
        let k = self.kern(kernel.0)?;
        let idx = index as usize;
        let kind = *k.sig.params.get(idx).ok_or(ClError(CL_INVALID_ARG_INDEX))?;
        let bound = match (kind, arg) {
            (KernelParamKind::GlobalPtr, KernelArg::Mem(m)) => BoundArg::Mem(self.mem(m.0)?),
            (KernelParamKind::LocalPtr, KernelArg::Local(n)) => BoundArg::Local(n),
            (KernelParamKind::Scalar(expect), KernelArg::Scalar(bytes)) => {
                if bytes.len() != expect {
                    return Err(ClError(CL_INVALID_ARG_SIZE));
                }
                BoundArg::Scalar(bytes)
            }
            _ => return Err(ClError(CL_INVALID_ARG_VALUE)),
        };
        k.args.lock()[idx] = Some(bound);
        Ok(())
    }

    fn get_kernel_work_group_info(&self, kernel: ClKernel, device: ClDevice) -> ClResult<usize> {
        self.kern(kernel.0)?;
        Ok(self.device(device.0)?.config.max_work_group_size)
    }

    fn retain_kernel(&self, kernel: ClKernel) -> ClResult<()> {
        self.kern(kernel.0)?.refs.retain();
        Ok(())
    }

    fn release_kernel(&self, kernel: ClKernel) -> ClResult<()> {
        let obj = self.kern(kernel.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().kernels.remove(&kernel.0);
        }
        Ok(())
    }

    fn enqueue_nd_range_kernel(
        &self,
        queue: ClQueue,
        kernel: ClKernel,
        global: [usize; 3],
        local: Option<[usize; 3]>,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        self.enqueue_kernel_common(queue, kernel, global, local, wait, want_event)
    }

    fn enqueue_task(
        &self,
        queue: ClQueue,
        kernel: ClKernel,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        self.enqueue_kernel_common(queue, kernel, [1, 1, 1], Some([1, 1, 1]), wait, want_event)
    }

    fn enqueue_read_buffer(
        &self,
        queue: ClQueue,
        mem: ClMem,
        blocking: bool,
        offset: usize,
        out: &mut [u8],
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let q = self.queue(queue.0)?;
        let m = self.mem(mem.0)?;
        let wait = self.resolve_wait_list(wait)?;
        let core = Arc::new(EventCore::new(q.props.profiling));
        core.mark_queued(q.device.now_nanos());
        let result = Arc::new(Mutex::new(None));
        q.tx.send(Command::ReadBuffer {
            mem: m,
            offset,
            len: out.len(),
            result: Arc::clone(&result),
            wait,
            event: Arc::clone(&core),
        })
        .map_err(|_| ClError(CL_INVALID_COMMAND_QUEUE))?;
        // The caller's output slice is only borrowed for this call, so the
        // copy must land before returning regardless of `blocking`; the
        // event still reflects true completion order. A non-blocking read
        // therefore behaves like a blocking one at the silo level — the
        // AvA layer above still distinguishes them for forwarding policy.
        core.wait()?;
        let bytes = result.lock().take().ok_or(ClError(CL_OUT_OF_RESOURCES))?;
        out.copy_from_slice(&bytes);
        let _ = blocking;
        Ok(self.register_event(core, want_event))
    }

    fn enqueue_write_buffer(
        &self,
        queue: ClQueue,
        mem: ClMem,
        blocking: bool,
        offset: usize,
        data: &[u8],
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let q = self.queue(queue.0)?;
        let m = self.mem(mem.0)?;
        let wait = self.resolve_wait_list(wait)?;
        let core = Arc::new(EventCore::new(q.props.profiling));
        core.mark_queued(q.device.now_nanos());
        q.tx.send(Command::WriteBuffer {
            mem: m,
            offset,
            data: data.to_vec(),
            wait,
            event: Arc::clone(&core),
        })
        .map_err(|_| ClError(CL_INVALID_COMMAND_QUEUE))?;
        if blocking {
            core.wait()?;
        }
        Ok(self.register_event(core, want_event))
    }

    fn enqueue_copy_buffer(
        &self,
        queue: ClQueue,
        src: ClMem,
        dst: ClMem,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
        wait: &[ClEvent],
        want_event: bool,
    ) -> ClResult<Option<ClEvent>> {
        let q = self.queue(queue.0)?;
        let src = self.mem(src.0)?;
        let dst = self.mem(dst.0)?;
        let wait = self.resolve_wait_list(wait)?;
        let core = Arc::new(EventCore::new(q.props.profiling));
        core.mark_queued(q.device.now_nanos());
        q.tx.send(Command::CopyBuffer {
            src,
            dst,
            src_offset,
            dst_offset,
            len,
            wait,
            event: Arc::clone(&core),
        })
        .map_err(|_| ClError(CL_INVALID_COMMAND_QUEUE))?;
        Ok(self.register_event(core, want_event))
    }

    fn flush(&self, queue: ClQueue) -> ClResult<()> {
        // Commands are handed to the worker at enqueue; flush is a no-op
        // beyond validating the handle.
        self.queue(queue.0)?;
        Ok(())
    }

    fn finish(&self, queue: ClQueue) -> ClResult<()> {
        let q = self.queue(queue.0)?;
        let core = Arc::new(EventCore::new(false));
        q.tx.send(Command::Marker {
            event: Arc::clone(&core),
        })
        .map_err(|_| ClError(CL_INVALID_COMMAND_QUEUE))?;
        core.wait()
    }

    fn wait_for_events(&self, events: &[ClEvent]) -> ClResult<()> {
        if events.is_empty() {
            return Err(ClError(CL_INVALID_VALUE));
        }
        for e in events {
            self.event(e.0)?.core.wait()?;
        }
        Ok(())
    }

    fn get_event_info(&self, event: ClEvent) -> ClResult<EventStatus> {
        Ok(self.event(event.0)?.core.status())
    }

    fn get_event_profiling_info(&self, event: ClEvent) -> ClResult<ProfilingInfo> {
        self.event(event.0)?.core.profiling()
    }

    fn retain_event(&self, event: ClEvent) -> ClResult<()> {
        self.event(event.0)?.refs.retain();
        Ok(())
    }

    fn release_event(&self, event: ClEvent) -> ClResult<()> {
        let obj = self.event(event.0)?;
        if obj.refs.release() == 0 {
            self.inner.objects.lock().events.remove(&event.0);
        }
        Ok(())
    }
}
