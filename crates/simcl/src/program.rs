//! OpenCL C program handling: kernel *signature* parsing.
//!
//! The simulated device does not compile OpenCL C. `clBuildProgram` parses
//! the real source text for `__kernel` entry points and their parameter
//! lists (so `clCreateKernel` / `clSetKernelArg` semantics are exact), and
//! binds each entry point to a registered Rust implementation by name (see
//! [`crate::kernels`]). DESIGN.md documents this substitution: API remoting
//! forwards program source as an opaque string and never inspects kernel
//! bodies, so signature-exact handling preserves every code path AvA
//! exercises.

/// Classification of one kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelParamKind {
    /// `__global` or `__constant` pointer: bound to a buffer object.
    GlobalPtr,
    /// `__local` pointer: bound to a scratch size.
    LocalPtr,
    /// By-value scalar of the given byte size.
    Scalar(usize),
}

/// A parsed kernel signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSig {
    /// Kernel entry-point name.
    pub name: String,
    /// Parameter kinds in declaration order.
    pub params: Vec<KernelParamKind>,
}

/// Byte size of an OpenCL C scalar type name.
fn scalar_size(ty: &str) -> Option<usize> {
    Some(match ty {
        "char" | "uchar" | "bool" => 1,
        "short" | "ushort" | "half" => 2,
        "int" | "uint" | "float" => 4,
        "long" | "ulong" | "double" | "size_t" | "ptrdiff_t" => 8,
        "float2" => 8,
        "float4" | "int4" | "uint4" => 16,
        _ => return None,
    })
}

/// Extracts every `__kernel` signature from OpenCL C source text.
///
/// The parser is tolerant: comments are stripped, attributes such as
/// `__attribute__((reqd_work_group_size(...)))` are skipped, and anything
/// that is not a kernel declaration is ignored.
pub fn parse_kernel_signatures(source: &str) -> Vec<KernelSig> {
    let clean = strip_comments(source);
    let mut sigs = Vec::new();
    let mut rest: &str = &clean;
    while let Some(pos) = rest.find("__kernel") {
        rest = &rest[pos + "__kernel".len()..];
        // Skip attributes between `__kernel` and `void`.
        let Some(void_pos) = rest.find("void") else {
            break;
        };
        rest = &rest[void_pos + "void".len()..];
        let Some(open) = rest.find('(') else { break };
        let name = rest[..open].trim().to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let Some(close) = find_matching_paren(&rest[open..]) else {
            break;
        };
        let params_text = &rest[open + 1..open + close];
        rest = &rest[open + close..];
        let params = params_text
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(classify_param)
            .collect();
        sigs.push(KernelSig { name, params });
    }
    sigs
}

/// Returns the offset of the `)` matching the `(` at `s[0]`.
fn find_matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn classify_param(text: &str) -> KernelParamKind {
    let is_ptr = text.contains('*');
    let words: Vec<&str> = text
        .split(|c: char| c.is_whitespace() || c == '*')
        .filter(|w| !w.is_empty())
        .collect();
    if words.iter().any(|w| *w == "__local" || *w == "local") && is_ptr {
        return KernelParamKind::LocalPtr;
    }
    if is_ptr {
        return KernelParamKind::GlobalPtr;
    }
    // Scalar: find the type word (skip qualifiers and the parameter name,
    // which is the last word).
    for w in &words {
        if let Some(sz) = scalar_size(w) {
            return KernelParamKind::Scalar(sz);
        }
    }
    // Unknown scalar type: assume 4 bytes (int-like).
    KernelParamKind::Scalar(4)
}

fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_kernel() {
        let src = r#"
__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *c, const unsigned int n) {
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
"#;
        let sigs = parse_kernel_signatures(src);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].name, "vadd");
        assert_eq!(
            sigs[0].params,
            vec![
                KernelParamKind::GlobalPtr,
                KernelParamKind::GlobalPtr,
                KernelParamKind::GlobalPtr,
                KernelParamKind::Scalar(4),
            ]
        );
    }

    #[test]
    fn parses_multiple_kernels_and_local_params() {
        let src = r#"
// Reduction with scratch space.
__kernel void reduce(__global float *data, __local float *scratch, uint n) { }
/* second kernel */
__kernel void scale(__global float *data, float factor, ulong count) { }
"#;
        let sigs = parse_kernel_signatures(src);
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].params[1], KernelParamKind::LocalPtr);
        assert_eq!(sigs[1].params[1], KernelParamKind::Scalar(4));
        assert_eq!(sigs[1].params[2], KernelParamKind::Scalar(8));
    }

    #[test]
    fn ignores_helper_functions() {
        let src = r#"
float helper(float x) { return x * 2.0f; }
__kernel void k(__global float *d) { d[0] = helper(d[0]); }
"#;
        let sigs = parse_kernel_signatures(src);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].name, "k");
    }

    #[test]
    fn kernel_names_in_comments_are_ignored() {
        let src = "// __kernel void fake(int x)\n__kernel void real(__global int *p) {}";
        let sigs = parse_kernel_signatures(src);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].name, "real");
    }

    #[test]
    fn empty_parameter_list() {
        let sigs = parse_kernel_signatures("__kernel void noop() {}");
        assert_eq!(sigs.len(), 1);
        assert!(sigs[0].params.is_empty());
    }

    #[test]
    fn constant_qualifier_is_global() {
        let sigs = parse_kernel_signatures("__kernel void k(__constant float *lut, int n) {}");
        assert_eq!(sigs[0].params[0], KernelParamKind::GlobalPtr);
    }

    #[test]
    fn no_kernels_in_plain_code() {
        assert!(parse_kernel_signatures("int main() { return 0; }").is_empty());
    }
}
