//! Per-VM resource policies: rate limiting and scheduling weights (§4.3).

use std::time::{Duration, Instant};

/// Token-bucket rate limiter over forwarded API calls.
///
/// This is the baseline enforcement the paper says even an unrefined
/// specification gets ("command rate-limiting", §3).
#[derive(Debug, Clone)]
pub struct RateLimiter {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl RateLimiter {
    /// A limiter allowing `calls_per_sec` sustained, with a burst of
    /// `burst` calls.
    pub fn new(calls_per_sec: f64, burst: u32) -> Self {
        RateLimiter {
            capacity: f64::from(burst).max(1.0),
            tokens: f64::from(burst).max(1.0),
            refill_per_sec: calls_per_sec.max(0.0),
            last: Instant::now(),
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        self.last = now;
    }

    /// Attempts to admit one call now; returns false when rate-limited.
    pub fn try_admit(&mut self) -> bool {
        self.try_admit_at(Instant::now())
    }

    /// Deterministic variant for tests.
    pub fn try_admit_at(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Time until the next token becomes available (zero if one is ready).
    pub fn next_ready_in(&mut self, now: Instant) -> Duration {
        self.refill(now);
        if self.tokens >= 1.0 || self.refill_per_sec <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64((1.0 - self.tokens) / self.refill_per_sec)
    }
}

/// Circuit-breaker tuning for one tenant's lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failed calls (faulted replies or lost forwards) that
    /// open the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before a half-open probe is
    /// allowed through.
    pub open_for: Duration,
    /// Consecutive successful probes required to close from half-open.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            open_for: Duration::from_millis(50),
            probe_successes: 2,
        }
    }
}

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic admitted.
    Closed,
    /// Quarantined: all traffic shed until the open window elapses.
    Open,
    /// Probing: one call at a time admitted; successes close the
    /// breaker, any failure re-opens it.
    HalfOpen,
}

/// Per-tenant circuit breaker (open → half-open probe → close).
///
/// The router drives it from observed call outcomes: a reply with a
/// fault status or a lost forward is a failure, an `Ok`/`CacheMiss`
/// reply is a success. While open, every call from the tenant is shed
/// with `Overloaded` so a poisoned VM cannot keep a slot busy failing;
/// after [`BreakerConfig::open_for`] one probe call is let through at a
/// time until [`BreakerConfig::probe_successes`] in a row close it.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_hits: u32,
    /// Probes admitted (cumulative, for the close event payload).
    probes_used: u32,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; admit nothing else.
    probe_inflight: bool,
    /// Times the breaker transitioned to open (cumulative).
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_hits: 0,
            probes_used: 0,
            opened_at: None,
            probe_inflight: false,
            opens: 0,
        }
    }

    /// Current state, advancing open → half-open when the window elapsed.
    pub fn state_at(&mut self, now: Instant) -> BreakerState {
        if self.state == BreakerState::Open {
            if let Some(at) = self.opened_at {
                if now.duration_since(at) >= self.config.open_for {
                    self.state = BreakerState::HalfOpen;
                    self.probe_hits = 0;
                    self.probe_inflight = false;
                }
            }
        }
        self.state
    }

    /// Whether a call from this tenant may be admitted right now. In
    /// half-open, admits exactly one probe at a time (the caller must
    /// report its outcome via [`CircuitBreaker::on_success`] /
    /// [`CircuitBreaker::on_failure`]).
    pub fn admit_at(&mut self, now: Instant) -> bool {
        match self.state_at(now) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    false
                } else {
                    self.probe_inflight = true;
                    self.probes_used += 1;
                    true
                }
            }
        }
    }

    /// Records a successful call outcome. Returns `true` when this
    /// success closed the breaker (for the `breaker_close` event).
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.probe_inflight = false;
            self.probe_hits += 1;
            if self.probe_hits >= self.config.probe_successes.max(1) {
                self.state = BreakerState::Closed;
                return true;
            }
        }
        false
    }

    /// Records a failed call outcome. Returns `true` when this failure
    /// opened (or re-opened) the breaker (for the `breaker_open` event).
    pub fn on_failure_at(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                self.probe_inflight = false;
                self.opens += 1;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    self.opens += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    /// Releases the half-open probe slot without an outcome: the probe
    /// call was dropped before execution (expired in queue, lane flushed),
    /// so neither success nor failure is known. The next admitted call
    /// becomes the probe instead of the breaker deadlocking half-open.
    pub fn probe_abandoned(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_inflight = false;
        }
    }

    /// Consecutive failures observed while closed (event payload).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Probes admitted since creation (event payload).
    pub fn probes_used(&self) -> u32 {
        self.probes_used
    }

    /// Times the breaker has opened since creation.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

/// Layered defaults for building a [`VmPolicy`] from configuration.
///
/// Control planes compose policies from several sources — a stack-wide
/// default section, a per-tenant config block, and per-request overrides —
/// each of which may set only some fields. `overlay` merges two layers
/// (the receiver wins wherever it has a value) and `build` produces the
/// final policy, falling back to [`VmPolicy::default`] semantics for
/// anything still unset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyDefaults {
    /// Sustained call rate (calls/sec) and burst size.
    pub rate_limit: Option<(f64, u32)>,
    /// Fair-share weight.
    pub weight: Option<u32>,
    /// Priority level.
    pub priority: Option<u8>,
    /// Device-memory quota in bytes.
    pub device_mem_quota: Option<u64>,
    /// Concurrency cap (calls in flight).
    pub max_inflight: Option<u32>,
}

impl PolicyDefaults {
    /// Merges `self` over `base`: every field set here wins, everything
    /// else falls through to the base layer.
    pub fn overlay(&self, base: &PolicyDefaults) -> PolicyDefaults {
        PolicyDefaults {
            rate_limit: self.rate_limit.or(base.rate_limit),
            weight: self.weight.or(base.weight),
            priority: self.priority.or(base.priority),
            device_mem_quota: self.device_mem_quota.or(base.device_mem_quota),
            max_inflight: self.max_inflight.or(base.max_inflight),
        }
    }

    /// Builds the effective [`VmPolicy`], with unset fields taking the
    /// policy defaults (weight 1, priority 0, no limits).
    pub fn build(&self) -> VmPolicy {
        VmPolicy {
            rate_limit: self
                .rate_limit
                .map(|(rate, burst)| RateLimiter::new(rate, burst)),
            weight: self.weight.unwrap_or(1).max(1),
            priority: self.priority.unwrap_or(0),
            device_mem_quota: self.device_mem_quota,
            max_inflight: self.max_inflight.map(|n| n.max(1)),
        }
    }
}

/// Scheduling algorithm the router applies across VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Forward in arrival order.
    #[default]
    Fifo,
    /// Pick the VM with the least weighted estimated device time.
    FairShare,
    /// Strict priority (higher `VmPolicy::priority` first), FIFO within.
    Priority,
}

/// How a stack assigns newly attached VMs to device-pool slots.
///
/// Placement only matters when the pool is smaller than the VM count:
/// every VM bound to the same slot shares that slot's physical device and
/// contends for its execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Cycle through slots in order; even VM counts spread evenly.
    #[default]
    RoundRobin,
    /// Bind to the slot with the least estimated load — outstanding
    /// device time weighted by the slot's resident device memory, so a
    /// slot whose working set is near eviction pressure is avoided even
    /// when its compute queue is short (ties broken by fewest VMs, then
    /// lowest index).
    LeastLoaded,
    /// Fill one slot before using the next — maximizes idle slots, for
    /// consolidation/power experiments.
    Packed,
}

/// Per-VM policy configuration.
#[derive(Debug, Clone)]
pub struct VmPolicy {
    /// Sustained call-rate limit, if any.
    pub rate_limit: Option<RateLimiter>,
    /// Fair-share weight (higher = entitled to more device time).
    pub weight: u32,
    /// Priority level for [`SchedulerKind::Priority`].
    pub priority: u8,
    /// Device-memory quota in bytes, if enforced. The quota is enforced
    /// at the API server against the VM's *owned* footprint (resident
    /// plus swapped bytes, so swap-out cannot launder it); over-quota
    /// allocations are answered with a clean `QuotaExceeded` reply and
    /// never executed. Overrides any stack-wide default quota.
    pub device_mem_quota: Option<u64>,
    /// Concurrency cap: maximum calls from this VM in flight to its API
    /// server at once, if enforced. Excess calls wait in the lane queue
    /// (and age out under admission control) instead of monopolizing the
    /// slot's in-flight budget.
    pub max_inflight: Option<u32>,
}

impl VmPolicy {
    /// Policy with a device-memory quota (bytes).
    pub fn with_device_mem_quota(quota: u64) -> Self {
        VmPolicy {
            device_mem_quota: Some(quota),
            ..Default::default()
        }
    }
}

impl Default for VmPolicy {
    fn default() -> Self {
        VmPolicy {
            rate_limit: None,
            weight: 1,
            priority: 0,
            device_mem_quota: None,
            max_inflight: None,
        }
    }
}

impl VmPolicy {
    /// Policy with a call-rate limit.
    pub fn with_rate_limit(calls_per_sec: f64, burst: u32) -> Self {
        VmPolicy {
            rate_limit: Some(RateLimiter::new(calls_per_sec, burst)),
            ..Default::default()
        }
    }

    /// Policy with a fair-share weight.
    pub fn with_weight(weight: u32) -> Self {
        VmPolicy {
            weight: weight.max(1),
            ..Default::default()
        }
    }

    /// Policy with a priority level.
    pub fn with_priority(priority: u8) -> Self {
        VmPolicy {
            priority,
            ..Default::default()
        }
    }

    /// Policy with a concurrency cap.
    pub fn with_max_inflight(max_inflight: u32) -> Self {
        VmPolicy {
            max_inflight: Some(max_inflight.max(1)),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_throttles() {
        let start = Instant::now();
        let mut rl = RateLimiter::new(10.0, 3);
        assert!(rl.try_admit_at(start));
        assert!(rl.try_admit_at(start));
        assert!(rl.try_admit_at(start));
        assert!(!rl.try_admit_at(start));
        // After 100 ms one token refills at 10/s.
        assert!(rl.try_admit_at(start + Duration::from_millis(110)));
        assert!(!rl.try_admit_at(start + Duration::from_millis(115)));
    }

    #[test]
    fn bucket_caps_at_capacity() {
        let start = Instant::now();
        let mut rl = RateLimiter::new(1000.0, 2);
        // A long idle period must not accumulate more than `burst` tokens.
        let later = start + Duration::from_secs(10);
        assert!(rl.try_admit_at(later));
        assert!(rl.try_admit_at(later));
        assert!(!rl.try_admit_at(later));
    }

    #[test]
    fn next_ready_estimates_wait() {
        let start = Instant::now();
        let mut rl = RateLimiter::new(10.0, 1);
        assert!(rl.try_admit_at(start));
        let wait = rl.next_ready_in(start);
        assert!(wait > Duration::from_millis(50) && wait <= Duration::from_millis(100));
    }

    #[test]
    fn zero_rate_never_refills() {
        let start = Instant::now();
        let mut rl = RateLimiter::new(0.0, 1);
        assert!(rl.try_admit_at(start));
        assert!(!rl.try_admit_at(start + Duration::from_secs(60)));
        assert_eq!(
            rl.next_ready_in(start + Duration::from_secs(60)),
            Duration::ZERO
        );
    }

    #[test]
    fn defaults_overlay_prefers_upper_layer() {
        let stack = PolicyDefaults {
            rate_limit: Some((100.0, 10)),
            weight: Some(1),
            priority: None,
            device_mem_quota: Some(1 << 20),
            max_inflight: None,
        };
        let tenant = PolicyDefaults {
            rate_limit: None,
            weight: Some(4),
            priority: Some(2),
            device_mem_quota: None,
            max_inflight: Some(8),
        };
        let merged = tenant.overlay(&stack);
        assert_eq!(merged.rate_limit, Some((100.0, 10)), "falls through");
        assert_eq!(merged.weight, Some(4), "tenant wins");
        assert_eq!(merged.priority, Some(2));
        assert_eq!(merged.device_mem_quota, Some(1 << 20));
        assert_eq!(merged.max_inflight, Some(8));
    }

    #[test]
    fn defaults_build_fills_policy_defaults() {
        let built = PolicyDefaults::default().build();
        assert!(built.rate_limit.is_none());
        assert_eq!(built.weight, 1);
        assert_eq!(built.priority, 0);
        assert_eq!(built.device_mem_quota, None);
        assert_eq!(built.max_inflight, None);

        let built = PolicyDefaults {
            rate_limit: Some((50.0, 5)),
            weight: Some(0),
            priority: Some(3),
            device_mem_quota: Some(4096),
            max_inflight: Some(0),
        }
        .build();
        assert!(built.rate_limit.is_some());
        assert_eq!(built.weight, 1, "weight floors at 1");
        assert_eq!(built.priority, 3);
        assert_eq!(built.device_mem_quota, Some(4096));
        assert_eq!(built.max_inflight, Some(1), "inflight floors at 1");
    }

    #[test]
    fn policy_constructors() {
        assert!(VmPolicy::with_rate_limit(5.0, 2).rate_limit.is_some());
        assert_eq!(VmPolicy::with_weight(0).weight, 1);
        assert_eq!(VmPolicy::with_priority(9).priority, 9);
        assert_eq!(VmPolicy::with_max_inflight(0).max_inflight, Some(1));
    }

    fn breaker(threshold: u32, open_ms: u64, probes: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_for: Duration::from_millis(open_ms),
            probe_successes: probes,
        })
    }

    #[test]
    fn breaker_opens_after_consecutive_failures() {
        let start = Instant::now();
        let mut br = breaker(3, 10, 1);
        assert!(br.admit_at(start));
        assert!(!br.on_failure_at(start));
        assert!(!br.on_failure_at(start));
        assert!(br.on_failure_at(start), "third failure opens");
        assert_eq!(br.state_at(start), BreakerState::Open);
        assert!(!br.admit_at(start));
        assert_eq!(br.opens(), 1);
    }

    #[test]
    fn success_resets_failure_streak() {
        let start = Instant::now();
        let mut br = breaker(3, 10, 1);
        br.on_failure_at(start);
        br.on_failure_at(start);
        br.on_success();
        assert!(!br.on_failure_at(start), "streak restarted after success");
        assert_eq!(br.state_at(start), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let start = Instant::now();
        let mut br = breaker(1, 10, 2);
        assert!(br.on_failure_at(start));
        assert!(!br.admit_at(start), "open sheds everything");
        let later = start + Duration::from_millis(11);
        assert!(br.admit_at(later), "half-open admits one probe");
        assert!(!br.admit_at(later), "only one probe in flight");
        assert!(!br.on_success(), "one success is not enough for probes=2");
        assert!(br.admit_at(later), "second probe admitted");
        assert!(br.on_success(), "second success closes");
        assert_eq!(br.state_at(later), BreakerState::Closed);
        assert_eq!(br.probes_used(), 2);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let start = Instant::now();
        let mut br = breaker(1, 10, 1);
        br.on_failure_at(start);
        let later = start + Duration::from_millis(11);
        assert!(br.admit_at(later));
        assert!(br.on_failure_at(later), "probe failure re-opens");
        assert_eq!(br.state_at(later), BreakerState::Open);
        assert!(!br.admit_at(later));
        // A second open window elapses: probing resumes.
        let much_later = later + Duration::from_millis(11);
        assert!(br.admit_at(much_later));
        assert!(br.on_success());
        assert_eq!(br.state_at(much_later), BreakerState::Closed);
        assert_eq!(br.opens(), 2);
    }
}
