//! Parser for the C declaration subset used by accelerator API headers:
//! typedefs, struct/union/enum definitions, constants and function
//! prototypes. Bodies, initializers and most of the C expression grammar are
//! out of scope — headers do not need them.

use std::collections::BTreeMap;

use crate::ctypes::{CType, RecordDef, TypeTable};
use crate::error::Result;
use crate::lexer::{lex, Cursor, Tok};
use crate::preprocess::{preprocess, HeaderResolver, Preprocessed};

/// A parsed function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParam {
    /// Parameter name; synthesized as `arg<N>` when omitted.
    pub name: String,
    /// Declared type (arrays decay to pointers).
    pub ty: CType,
    /// Whether the parameter had a top-level or pointee `const`.
    pub const_qualified: bool,
}

/// A parsed function prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prototype {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in declaration order. A single `void` parameter list is
    /// represented as an empty vector.
    pub params: Vec<CParam>,
}

/// Everything extracted from a header set.
#[derive(Debug, Clone, Default)]
pub struct Header {
    /// Typedefs, struct/union layouts and enums.
    pub types: TypeTable,
    /// `#define` and `enum` integer constants.
    pub constants: BTreeMap<String, i64>,
    /// Function prototypes in declaration order.
    pub protos: Vec<Prototype>,
}

impl Header {
    /// Looks up a prototype by function name.
    pub fn proto(&self, name: &str) -> Option<&Prototype> {
        self.protos.iter().find(|p| p.name == name)
    }
}

/// Parses a header after preprocessing with `resolver`.
pub fn parse_header(src: &str, resolver: &dyn HeaderResolver) -> Result<Header> {
    let pre = preprocess(src, resolver)?;
    parse_preprocessed(&pre)
}

/// Parses already-preprocessed text.
pub fn parse_preprocessed(pre: &Preprocessed) -> Result<Header> {
    let mut header = Header {
        constants: pre.constants.clone(),
        ..Header::default()
    };
    let mut cur = Cursor::new(lex(&pre.text)?);
    while !cur.at_end() {
        parse_top_level(&mut cur, &mut header)?;
    }
    Ok(header)
}

/// Parses one function prototype head (return type, name, parameter list)
/// from the cursor, leaving the cursor just after the closing `)`. Used by
/// the specification parser, where a prototype is followed by an annotation
/// body instead of `;`.
pub fn parse_prototype(cur: &mut Cursor, header: &Header) -> Result<Prototype> {
    let (base, base_const) = parse_type(cur, header)?;
    let (ret, name) = parse_declarator(cur, header, base, base_const)?;
    let name = name.ok_or_else(|| cur.err_here("function without a name".into()))?;
    cur.expect_punct("(")?;
    let params = parse_param_list(cur, header)?;
    Ok(Prototype { name, ret, params })
}

fn parse_top_level(cur: &mut Cursor, header: &mut Header) -> Result<()> {
    // Stray semicolons are legal.
    if cur.eat_punct(";") {
        return Ok(());
    }
    if cur.eat_ident("typedef") {
        return parse_typedef(cur, header);
    }
    cur.eat_ident("extern");
    // Struct/union/enum definition or forward declaration?
    match cur.peek() {
        Some(Tok::Ident(kw)) if kw == "struct" || kw == "union" => {
            // Could be `struct X {...};`, `struct X;`, or the start of a
            // declaration like `struct X f(...)`. Decide by lookahead.
            match (cur.peek_n(1), cur.peek_n(2)) {
                (Some(Tok::Ident(_)), Some(Tok::Punct("{"))) | (Some(Tok::Punct("{")), _) => {
                    let is_union = kw == "union";
                    cur.next();
                    let tag = match cur.peek() {
                        Some(Tok::Ident(_)) => cur.expect_ident()?,
                        _ => anon_tag(cur),
                    };
                    let def = parse_record_body(cur, header, is_union)?;
                    header.types.add_record(tag, def);
                    cur.expect_punct(";")?;
                    return Ok(());
                }
                (Some(Tok::Ident(_)), Some(Tok::Punct(";"))) => {
                    // Forward declaration: incomplete type, nothing to do.
                    cur.next();
                    cur.next();
                    cur.expect_punct(";")?;
                    return Ok(());
                }
                _ => {}
            }
        }
        Some(Tok::Ident(kw))
            if kw == "enum"
                && (matches!(cur.peek_n(1), Some(Tok::Punct("{")))
                    || matches!(
                        (cur.peek_n(1), cur.peek_n(2)),
                        (Some(Tok::Ident(_)), Some(Tok::Punct("{")))
                    )) =>
        {
            cur.next();
            let tag = match cur.peek() {
                Some(Tok::Ident(_)) => cur.expect_ident()?,
                _ => anon_tag(cur),
            };
            parse_enum_body(cur, header, &tag)?;
            cur.expect_punct(";")?;
            return Ok(());
        }
        _ => {}
    }
    // Otherwise: a declaration (prototype or variable).
    let (base, base_const) = parse_type(cur, header)?;
    let (ty, name) = parse_declarator(cur, header, base, base_const)?;
    if cur.eat_punct("(") {
        let name = name.ok_or_else(|| cur.err_here("function without a name".into()))?;
        let params = parse_param_list(cur, header)?;
        cur.expect_punct(";")?;
        header.protos.push(Prototype {
            name,
            ret: ty,
            params,
        });
        return Ok(());
    }
    // Variable declaration (possibly with initializer) — skip to `;`.
    skip_to_semicolon(cur)?;
    Ok(())
}

fn anon_tag(cur: &Cursor) -> String {
    format!("__anon_{}_{}", cur.loc().line, cur.loc().col)
}

fn parse_typedef(cur: &mut Cursor, header: &mut Header) -> Result<()> {
    // `typedef struct [tag] { ... } name;` defines the record inline.
    if matches!(cur.peek(), Some(Tok::Ident(kw)) if kw == "struct" || kw == "union") {
        let is_union = matches!(cur.peek(), Some(Tok::Ident(k)) if k == "union");
        let has_body_at = |cur: &Cursor, n: usize| matches!(cur.peek_n(n), Some(Tok::Punct("{")));
        if has_body_at(cur, 1)
            || (matches!(cur.peek_n(1), Some(Tok::Ident(_))) && has_body_at(cur, 2))
        {
            cur.next(); // struct/union
            let tag = match cur.peek() {
                Some(Tok::Ident(_)) => cur.expect_ident()?,
                _ => anon_tag(cur),
            };
            let def = parse_record_body(cur, header, is_union)?;
            header.types.add_record(tag.clone(), def);
            let base = if is_union {
                CType::Union(tag)
            } else {
                CType::Struct(tag)
            };
            let (ty, name) = parse_declarator(cur, header, base, false)?;
            let name = name.ok_or_else(|| cur.err_here("typedef without a name".into()))?;
            header.types.add_typedef(name, ty);
            cur.expect_punct(";")?;
            return Ok(());
        }
    }
    if matches!(cur.peek(), Some(Tok::Ident(kw)) if kw == "enum") {
        let has_body_at = |cur: &Cursor, n: usize| matches!(cur.peek_n(n), Some(Tok::Punct("{")));
        if has_body_at(cur, 1)
            || (matches!(cur.peek_n(1), Some(Tok::Ident(_))) && has_body_at(cur, 2))
        {
            cur.next();
            let tag = match cur.peek() {
                Some(Tok::Ident(_)) => cur.expect_ident()?,
                _ => anon_tag(cur),
            };
            parse_enum_body(cur, header, &tag)?;
            let name = cur.expect_ident()?;
            header.types.add_typedef(name, CType::Enum(tag));
            cur.expect_punct(";")?;
            return Ok(());
        }
    }
    let (base, base_const) = parse_type(cur, header)?;
    let (ty, name) = parse_declarator(cur, header, base, base_const)?;
    let name = name.ok_or_else(|| cur.err_here("typedef without a name".into()))?;
    header.types.add_typedef(name, ty);
    cur.expect_punct(";")?;
    Ok(())
}

fn parse_record_body(cur: &mut Cursor, header: &mut Header, is_union: bool) -> Result<RecordDef> {
    cur.expect_punct("{")?;
    let mut def = RecordDef {
        members: Vec::new(),
        is_union,
    };
    while !cur.eat_punct("}") {
        let (base, base_const) = parse_type(cur, header)?;
        loop {
            let (ty, name) = parse_declarator(cur, header, base.clone(), base_const)?;
            let name = name.ok_or_else(|| cur.err_here("unnamed struct member".into()))?;
            def.members.push((name, ty));
            if !cur.eat_punct(",") {
                break;
            }
        }
        cur.expect_punct(";")?;
    }
    Ok(def)
}

fn parse_enum_body(cur: &mut Cursor, header: &mut Header, tag: &str) -> Result<()> {
    cur.expect_punct("{")?;
    let mut variants = Vec::new();
    let mut next = 0i64;
    while !cur.eat_punct("}") {
        let name = cur.expect_ident()?;
        if cur.eat_punct("=") {
            let neg = cur.eat_punct("-");
            let v = cur.expect_int()?;
            next = if neg { -v } else { v };
        }
        header.constants.insert(name.clone(), next);
        variants.push((name, next));
        next += 1;
        if !cur.eat_punct(",") && !matches!(cur.peek(), Some(Tok::Punct("}"))) {
            return Err(cur.err_here("expected `,` or `}` in enum".into()));
        }
    }
    header.types.add_enum(tag.to_string(), variants);
    Ok(())
}

/// Parses a type *specifier* (no declarator): `const unsigned long`,
/// `struct foo`, `cl_uint`, ... Pointers belong to the declarator.
fn parse_type(cur: &mut Cursor, header: &Header) -> Result<(CType, bool)> {
    let _ = header;
    parse_type_inner(cur)
}

/// Parses a full abstract type name (specifier + pointers), as used inside
/// `sizeof(...)`. Usable without a header (for spec expressions).
pub fn parse_type_name(cur: &mut Cursor) -> Result<CType> {
    let (base, base_const) = parse_type_inner(cur)?;
    Ok(apply_pointers(cur, base, base_const))
}

/// Applies `*` declarator levels. In C, `const T *p` makes the *pointee*
/// const, so the base type's constness attaches to the first pointer level;
/// a `const` written after a `*` makes the pointer itself const, which has
/// no marshaling meaning and is dropped.
fn apply_pointers(cur: &mut Cursor, mut ty: CType, base_const: bool) -> CType {
    let mut first = true;
    while cur.eat_punct("*") {
        let ptr_const = cur.eat_ident("const");
        let _ = ptr_const;
        let const_pointee = first && base_const;
        first = false;
        ty = CType::Pointer {
            pointee: Box::new(ty),
            const_pointee,
        };
    }
    ty
}

fn parse_type_inner(cur: &mut Cursor) -> Result<(CType, bool)> {
    let mut is_const = false;
    let mut signedness: Option<bool> = None;
    let mut longs = 0u8;
    let mut short = false;
    let mut base: Option<CType> = None;
    let mut saw_int_kw = false;

    while let Some(Tok::Ident(kw)) = cur.peek().cloned() {
        {
            match kw.as_str() {
                "const" => {
                    is_const = true;
                    cur.next();
                }
                "volatile" | "register" | "restrict" | "__restrict" => {
                    cur.next();
                }
                "unsigned" => {
                    signedness = Some(false);
                    cur.next();
                }
                "signed" => {
                    signedness = Some(true);
                    cur.next();
                }
                "long" => {
                    longs += 1;
                    cur.next();
                }
                "short" => {
                    short = true;
                    cur.next();
                }
                "void" => {
                    base = Some(CType::Void);
                    cur.next();
                }
                "_Bool" | "bool" => {
                    base = Some(CType::Bool);
                    cur.next();
                }
                "char" => {
                    base = Some(CType::Int {
                        signed: signedness.unwrap_or(true),
                        bits: 8,
                    });
                    cur.next();
                }
                "int" => {
                    saw_int_kw = true;
                    cur.next();
                }
                "float" => {
                    base = Some(CType::Float { bits: 32 });
                    cur.next();
                }
                "double" => {
                    base = Some(CType::Float { bits: 64 });
                    cur.next();
                }
                "struct" | "union" | "enum" => {
                    cur.next();
                    let tag = cur.expect_ident()?;
                    base = Some(match kw.as_str() {
                        "struct" => CType::Struct(tag),
                        "union" => CType::Union(tag),
                        _ => CType::Enum(tag),
                    });
                }
                "size_t" | "uintptr_t" => {
                    base = Some(CType::Int {
                        signed: false,
                        bits: 64,
                    });
                    cur.next();
                }
                "ssize_t" | "intptr_t" | "ptrdiff_t" => {
                    base = Some(CType::Int {
                        signed: true,
                        bits: 64,
                    });
                    cur.next();
                }
                "int8_t" | "int16_t" | "int32_t" | "int64_t" | "uint8_t" | "uint16_t"
                | "uint32_t" | "uint64_t" => {
                    let signed = !kw.starts_with('u');
                    let bits: u8 = kw
                        .trim_start_matches(['u', 'i'])
                        .trim_start_matches("nt")
                        .trim_end_matches("_t")
                        .parse()
                        .expect("fixed-width typedef name");
                    base = Some(CType::Int { signed, bits });
                    cur.next();
                }
                _ => {
                    // A typedef name can only serve as the base type if no
                    // other specifier has claimed that role.
                    if base.is_none() && !saw_int_kw && signedness.is_none() && longs == 0 && !short
                    {
                        base = Some(CType::Named(kw));
                        cur.next();
                    }
                    break;
                }
            }
        }
    }

    let ty = match base {
        Some(t) => {
            if signedness.is_some() || longs > 0 || short {
                // `unsigned char` handled above; reject e.g. `unsigned float`.
                if let CType::Int { bits, .. } = t {
                    CType::Int {
                        signed: signedness.unwrap_or(true),
                        bits,
                    }
                } else {
                    return Err(cur.err_here("conflicting type specifiers".into()));
                }
            } else {
                t
            }
        }
        None => {
            if saw_int_kw || signedness.is_some() || longs > 0 || short {
                let bits = if longs > 0 {
                    64
                } else if short {
                    16
                } else {
                    32
                };
                CType::Int {
                    signed: signedness.unwrap_or(true),
                    bits,
                }
            } else {
                return Err(cur.err_here(format!("expected type, found {}", cur.describe())));
            }
        }
    };
    Ok((ty, is_const))
}

/// Parses a declarator after a base type: pointers, an optional name, array
/// suffixes, or a function-pointer declarator.
fn parse_declarator(
    cur: &mut Cursor,
    header: &Header,
    base: CType,
    base_const: bool,
) -> Result<(CType, Option<String>)> {
    let mut ty = apply_pointers(cur, base, base_const);
    // Function pointer: `(*name)(params)` or `(*)(params)`.
    if matches!(cur.peek(), Some(Tok::Punct("("))) && matches!(cur.peek_n(1), Some(Tok::Punct("*")))
    {
        cur.next(); // (
        cur.next(); // *
        let name = match cur.peek() {
            Some(Tok::Ident(_)) => Some(cur.expect_ident()?),
            _ => None,
        };
        cur.expect_punct(")")?;
        cur.expect_punct("(")?;
        // Parameter types of the callback are opaque to the wire layer.
        let _ = parse_param_list(cur, header)?;
        return Ok((CType::FnPtr, name));
    }
    let name = match cur.peek() {
        Some(Tok::Ident(id)) if !is_reserved(id) => Some(cur.expect_ident()?),
        _ => None,
    };
    while cur.eat_punct("[") {
        if let Some(Tok::Int(_)) = cur.peek() {
            let len = cur.expect_int()?;
            cur.expect_punct("]")?;
            let len =
                usize::try_from(len).map_err(|_| cur.err_here("negative array length".into()))?;
            ty = CType::Array {
                elem: Box::new(ty),
                len,
            };
        } else {
            cur.expect_punct("]")?;
            // Unsized array in a parameter decays to a pointer.
            ty = CType::ptr(ty);
        }
    }
    Ok((ty, name))
}

fn is_reserved(id: &str) -> bool {
    matches!(
        id,
        "const" | "volatile" | "struct" | "union" | "enum" | "unsigned" | "signed"
    )
}

fn parse_param_list(cur: &mut Cursor, header: &Header) -> Result<Vec<CParam>> {
    let mut params = Vec::new();
    if cur.eat_punct(")") {
        return Ok(params);
    }
    loop {
        if cur.eat_punct("...") {
            // Varargs cannot be marshaled; the spec layer rejects such
            // functions unless annotated `unsupported`.
            cur.expect_punct(")")?;
            params.push(CParam {
                name: "...".into(),
                ty: CType::Void,
                const_qualified: false,
            });
            return Ok(params);
        }
        let (base, base_const) = parse_type(cur, header)?;
        if base == CType::Void && matches!(cur.peek(), Some(Tok::Punct(")"))) {
            cur.expect_punct(")")?;
            return Ok(params);
        }
        let (ty, name) = parse_declarator(cur, header, base, base_const)?;
        let const_qualified = base_const
            || matches!(
                &ty,
                CType::Pointer {
                    const_pointee: true,
                    ..
                }
            );
        params.push(CParam {
            name: name.unwrap_or_else(|| format!("arg{}", params.len())),
            ty,
            const_qualified,
        });
        if cur.eat_punct(")") {
            return Ok(params);
        }
        cur.expect_punct(",")?;
    }
}

fn skip_to_semicolon(cur: &mut Cursor) -> Result<()> {
    let mut depth = 0usize;
    while let Some(tok) = cur.next() {
        match tok {
            Tok::Punct("(") | Tok::Punct("{") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("}") | Tok::Punct("]") => depth = depth.saturating_sub(1),
            Tok::Punct(";") if depth == 0 => return Ok(()),
            _ => {}
        }
    }
    Err(cur.err_here("unterminated declaration".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::NoHeaders;

    fn parse(src: &str) -> Header {
        parse_header(src, &NoHeaders).unwrap()
    }

    #[test]
    fn parses_simple_prototype() {
        let h = parse("int add(int a, int b);");
        let p = h.proto("add").unwrap();
        assert_eq!(
            p.ret,
            CType::Int {
                signed: true,
                bits: 32
            }
        );
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].name, "a");
    }

    #[test]
    fn parses_void_parameter_list() {
        let h = parse("int f(void); int g();");
        assert!(h.proto("f").unwrap().params.is_empty());
        assert!(h.proto("g").unwrap().params.is_empty());
    }

    #[test]
    fn parses_opaque_handle_typedefs() {
        let h = parse(
            "typedef struct _cl_mem *cl_mem;\n\
             typedef struct _cl_context *cl_context;\n\
             cl_mem clCreateBuffer(cl_context ctx, unsigned long size);",
        );
        assert!(h.types.is_opaque_handle(&CType::Named("cl_mem".into())));
        let p = h.proto("clCreateBuffer").unwrap();
        assert_eq!(p.ret, CType::Named("cl_mem".into()));
    }

    #[test]
    fn parses_scalar_typedef_chain() {
        let h = parse("typedef unsigned int cl_uint;\ntypedef cl_uint cl_bool;\n");
        assert_eq!(
            h.types.resolve(&CType::Named("cl_bool".into())).unwrap(),
            &CType::Int {
                signed: false,
                bits: 32
            }
        );
    }

    #[test]
    fn parses_struct_definition_and_layout() {
        let h = parse("struct point { int x; int y; double w; };");
        assert_eq!(h.types.size_of(&CType::Struct("point".into())).unwrap(), 16);
    }

    #[test]
    fn parses_typedef_struct_with_body() {
        let h = parse("typedef struct { float a; float b; } pair_t;");
        assert_eq!(h.types.size_of(&CType::Named("pair_t".into())).unwrap(), 8);
    }

    #[test]
    fn parses_multi_declarator_members() {
        let h = parse("struct v { int x, y, z; };");
        assert_eq!(h.types.record("v").unwrap().members.len(), 3);
    }

    #[test]
    fn parses_enum_constants() {
        let h = parse("enum color { RED, GREEN = 5, BLUE };");
        assert_eq!(h.constants["RED"], 0);
        assert_eq!(h.constants["GREEN"], 5);
        assert_eq!(h.constants["BLUE"], 6);
    }

    #[test]
    fn parses_pointer_params_with_const() {
        let h = parse("int write(const unsigned char *src, unsigned long n, char *dst);");
        let p = h.proto("write").unwrap();
        assert!(p.params[0].const_qualified);
        assert!(!p.params[2].const_qualified);
        assert_eq!(
            p.params[0].ty,
            CType::const_ptr(CType::Int {
                signed: false,
                bits: 8
            })
        );
    }

    #[test]
    fn parses_double_pointer() {
        let h = parse("typedef struct _d *dev;\nint get(dev *out, unsigned int n);");
        let p = h.proto("get").unwrap();
        assert_eq!(p.params[0].ty, CType::ptr(CType::Named("dev".into())));
    }

    #[test]
    fn parses_function_pointer_param() {
        let h = parse(
            "int create(int flags, void (*pfn_notify)(const char *, const void *, unsigned long, void *), void *user_data);",
        );
        let p = h.proto("create").unwrap();
        assert_eq!(p.params[1].ty, CType::FnPtr);
        assert_eq!(p.params[1].name, "pfn_notify");
    }

    #[test]
    fn parses_array_param_as_pointer() {
        let h = parse("int f(int values[], int n);");
        let p = h.proto("f").unwrap();
        assert_eq!(
            p.params[0].ty,
            CType::ptr(CType::Int {
                signed: true,
                bits: 32
            })
        );
    }

    #[test]
    fn fixed_width_and_size_t() {
        let h = parse("uint64_t f(size_t n, int32_t m, uint8_t b);");
        let p = h.proto("f").unwrap();
        assert_eq!(
            p.ret,
            CType::Int {
                signed: false,
                bits: 64
            }
        );
        assert_eq!(
            p.params[0].ty,
            CType::Int {
                signed: false,
                bits: 64
            }
        );
        assert_eq!(
            p.params[2].ty,
            CType::Int {
                signed: false,
                bits: 8
            }
        );
    }

    #[test]
    fn skips_variable_declarations() {
        let h = parse("int global_counter; extern int other; int f(void);");
        assert_eq!(h.protos.len(), 1);
    }

    #[test]
    fn forward_struct_declaration_is_incomplete() {
        let h = parse("struct _cl_event; typedef struct _cl_event *cl_event;");
        assert!(h.types.is_opaque_handle(&CType::Named("cl_event".into())));
    }

    #[test]
    fn unnamed_params_get_synthetic_names() {
        let h = parse("int f(int, float);");
        let p = h.proto("f").unwrap();
        assert_eq!(p.params[0].name, "arg0");
        assert_eq!(p.params[1].name, "arg1");
    }

    #[test]
    fn defines_flow_into_constants() {
        let h = parse("#define CL_SUCCESS 0\n#define CL_TRUE 1\nint f(void);\n");
        assert_eq!(h.constants["CL_SUCCESS"], 0);
        assert_eq!(h.constants["CL_TRUE"], 1);
    }

    #[test]
    fn long_long_is_64_bits() {
        let h = parse("unsigned long long f(long long x);");
        let p = h.proto("f").unwrap();
        assert_eq!(
            p.ret,
            CType::Int {
                signed: false,
                bits: 64
            }
        );
        assert_eq!(
            p.params[0].ty,
            CType::Int {
                signed: true,
                bits: 64
            }
        );
    }
}
