//! End-to-end tests: full applications running against virtual
//! accelerators through the complete AvA stack (guest library → shared
//! memory transport → router → API server → silo).

use ava_core::{mvnc_stack, opencl_stack, MvncClient, OpenClClient, StackConfig};
use ava_hypervisor::VmPolicy;
use ava_transport::{CostModel, TransportKind};
use simcl::types::*;
use simcl::{ClApi, DeviceConfig, SimCl};
use simnc::{MvncApi, SimNc, Tensor};

fn fast_config() -> StackConfig {
    StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        ..StackConfig::default()
    }
}

/// Runs the same saxpy pipeline against any ClApi implementation.
fn run_saxpy(api: &dyn ClApi, n: usize) -> Vec<f32> {
    let platform = api.get_platform_ids().unwrap()[0];
    let device = api.get_device_ids(platform, DeviceType::Gpu).unwrap()[0];
    let ctx = api.create_context(device).unwrap();
    let queue = api
        .create_command_queue(ctx, device, QueueProps { profiling: true })
        .unwrap();
    let program = api
        .create_program_with_source(ctx, simcl::kernels::builtins::SOURCE)
        .unwrap();
    api.build_program(program, "").unwrap();
    let kernel = api.create_kernel(program, "saxpy").unwrap();

    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = vec![10.0; n];
    let bx = api
        .create_buffer(
            ctx,
            MemFlags::read_only(),
            4 * n,
            Some(&simcl::mem::f32_to_bytes(&x)),
        )
        .unwrap();
    let by = api
        .create_buffer(
            ctx,
            MemFlags::read_write(),
            4 * n,
            Some(&simcl::mem::f32_to_bytes(&y)),
        )
        .unwrap();
    api.set_kernel_arg(kernel, 0, KernelArg::Mem(bx)).unwrap();
    api.set_kernel_arg(kernel, 1, KernelArg::Mem(by)).unwrap();
    api.set_kernel_arg(kernel, 2, KernelArg::from_f32(3.0))
        .unwrap();
    api.set_kernel_arg(kernel, 3, KernelArg::from_u32(n as u32))
        .unwrap();
    api.enqueue_nd_range_kernel(queue, kernel, [n, 1, 1], None, &[], false)
        .unwrap();
    let mut out = vec![0u8; 4 * n];
    api.enqueue_read_buffer(queue, by, true, 0, &mut out, &[], false)
        .unwrap();

    // Exercise teardown through the remoting path too.
    api.release_kernel(kernel).unwrap();
    api.release_program(program).unwrap();
    api.release_mem_object(bx).unwrap();
    api.release_mem_object(by).unwrap();
    api.finish(queue).unwrap();
    api.release_command_queue(queue).unwrap();
    api.release_context(ctx).unwrap();

    simcl::mem::bytes_to_f32(&out)
}

#[test]
fn virtual_opencl_matches_native() {
    let n = 512;
    let native = run_saxpy(&SimCl::new(), n);

    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    let virtualized = run_saxpy(&client, n);

    assert_eq!(native, virtualized);
    for (i, v) in virtualized.iter().enumerate() {
        assert_eq!(*v, 10.0 + 3.0 * i as f32);
    }
}

#[test]
fn async_forwarding_happens_on_the_virtual_path() {
    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    run_saxpy(&client, 64);
    let stats = client.library().stats();
    assert!(
        stats.async_calls >= 4,
        "setKernelArg/enqueue/release should forward async; stats: {stats:?}"
    );
    assert!(stats.sync_calls > 0);
    assert_eq!(stats.deferred_errors_delivered, 0);
}

#[test]
fn device_info_strings_cross_the_wire() {
    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    let platform = client.get_platform_ids().unwrap()[0];
    assert_eq!(
        client
            .get_platform_info(platform, PlatformInfo::Name)
            .unwrap(),
        "AvA SimCL"
    );
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let name = client.get_device_info(device, DeviceInfo::Name).unwrap();
    assert!(name.as_str().unwrap().contains("GTX 1080"));
    let wg = client
        .get_device_info(device, DeviceInfo::MaxWorkGroupSize)
        .unwrap();
    assert_eq!(wg.as_u64().unwrap(), 1024);
}

#[test]
fn api_errors_cross_faithfully() {
    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    // Zero-sized buffer must produce CL_INVALID_BUFFER_SIZE (-61) exactly.
    let err = client
        .create_buffer(ctx, MemFlags::read_write(), 0, None)
        .unwrap_err();
    assert_eq!(err.0, simcl::status::CL_INVALID_BUFFER_SIZE);
    // Unknown kernel name produces CL_INVALID_PROGRAM_EXECUTABLE (not
    // built) first.
    let program = client
        .create_program_with_source(ctx, simcl::kernels::builtins::SOURCE)
        .unwrap();
    let err = client.create_kernel(program, "vector_add").unwrap_err();
    assert_eq!(err.0, simcl::status::CL_INVALID_PROGRAM_EXECUTABLE);
}

#[test]
fn two_vms_share_one_device_with_isolated_handles() {
    let cl = SimCl::new();
    let stack = opencl_stack(cl, fast_config()).unwrap();
    let (vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    assert_ne!(vm_a, vm_b);
    let a = OpenClClient::new(lib_a);
    let b = OpenClClient::new(lib_b);
    let ra = run_saxpy(&a, 128);
    let rb = run_saxpy(&b, 128);
    assert_eq!(ra, rb);
    let stats_a = stack.vm_router_stats(vm_a).unwrap();
    let stats_b = stack.vm_router_stats(vm_b).unwrap();
    assert!(stats_a.forwarded > 0);
    assert!(stats_b.forwarded > 0);
}

#[test]
fn handles_from_one_vm_are_invalid_in_another() {
    let cl = SimCl::new();
    let stack = opencl_stack(cl, fast_config()).unwrap();
    let (_vm_a, lib_a) = stack.attach_vm(VmPolicy::default()).unwrap();
    let (_vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).unwrap();
    let a = OpenClClient::new(lib_a);
    let b = OpenClClient::new(lib_b);
    let platform = a.get_platform_ids().unwrap()[0];
    let device = a.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx_a = a.create_context(device).unwrap();
    // VM B presents VM A's wire handle: its own server has no entry for
    // it, so the call must fail rather than touch A's object.
    let err = b
        .create_buffer(ctx_a, MemFlags::read_write(), 64, None)
        .unwrap_err();
    assert_eq!(err.0, simcl::status::CL_OUT_OF_RESOURCES);
}

#[test]
fn vm_migration_moves_state_to_second_host() {
    // Source and target "hosts": two independent SimCl instances.
    let source_cl = SimCl::new();
    let target_cl = SimCl::new();
    let stack = opencl_stack(source_cl, fast_config()).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let payload: Vec<u8> = (0..=255).collect();
    let buf = client
        .create_buffer(ctx, MemFlags::read_write(), 256, Some(&payload))
        .unwrap();
    let program = client
        .create_program_with_source(ctx, simcl::kernels::builtins::SOURCE)
        .unwrap();
    client.build_program(program, "").unwrap();
    let kernel = client.create_kernel(program, "fill").unwrap();
    client.finish(queue).unwrap();

    // Migrate to the target host.
    let tc = target_cl.clone();
    let image = stack
        .migrate_vm(vm, move || Box::new(ava_core::OpenClHandler::new(tc)))
        .unwrap();
    assert!(!image.records.is_empty());
    assert!(image.buffers.iter().any(|(_, d)| d == &payload));

    // The guest resumes with its old handles; data survived the move.
    let mut out = vec![0u8; 256];
    client
        .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(out, payload);

    // The kernel object also survived replay: set args and run on target.
    client
        .set_kernel_arg(kernel, 0, KernelArg::Mem(buf))
        .unwrap();
    client
        .set_kernel_arg(kernel, 1, KernelArg::from_f32(1.0))
        .unwrap();
    client
        .enqueue_nd_range_kernel(queue, kernel, [64, 1, 1], None, &[], false)
        .unwrap();
    client.finish(queue).unwrap();
    client
        .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(&out[..4], 1.0f32.to_le_bytes().as_slice());
}

#[test]
fn buffer_swapping_under_device_memory_pressure() {
    // Device holds ~1 MiB; the guest allocates 3 × 512 KiB.
    let cl = SimCl::with_devices(vec![DeviceConfig::small(1 << 20)]);
    let stack = opencl_stack(cl, fast_config()).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();

    let half_mb = 512 << 10;
    let marker_a = vec![0xAAu8; half_mb];
    let a = client
        .create_buffer(ctx, MemFlags::read_write(), half_mb, Some(&marker_a))
        .unwrap();
    let b = client
        .create_buffer(
            ctx,
            MemFlags::read_write(),
            half_mb,
            Some(&vec![0xBBu8; half_mb]),
        )
        .unwrap();
    // Third allocation exceeds device memory: AvA swaps the LRU buffer
    // (a) to host memory instead of surfacing OOM to the guest (§4.3).
    let c = client
        .create_buffer(
            ctx,
            MemFlags::read_write(),
            half_mb,
            Some(&vec![0xCCu8; half_mb]),
        )
        .unwrap();
    let stats = stack.vm_server_stats(vm).unwrap();
    assert_eq!(stats.swap_outs, 1, "one buffer must have been evicted");

    // Make room, then touch the swapped buffer: transparent swap-in.
    client.release_mem_object(c).unwrap();
    client.finish(queue).unwrap();
    let mut out = vec![0u8; half_mb];
    client
        .enqueue_read_buffer(queue, a, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(out, marker_a);
    let stats = stack.vm_server_stats(vm).unwrap();
    assert_eq!(stats.swap_ins, 1);
    let _ = b;
}

#[test]
fn virtual_mvnc_inference_matches_native() {
    let network = simnc::inception_v3_like(16, 1, 8, 123);
    let blob = network.to_blob();
    let image = Tensor::zeros(3, 16, 16);

    // Native.
    let nc = SimNc::new(1);
    let dev = nc.open_device("ncs0").unwrap();
    let graph = nc.allocate_graph(dev, &blob).unwrap();
    nc.load_tensor(graph, &image.to_bytes(), 1).unwrap();
    let (native_out, _) = nc.get_result(graph).unwrap();

    // Virtual.
    let stack = mvnc_stack(SimNc::new(1), fast_config()).unwrap();
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = MvncClient::new(lib);
    let name = client.get_device_name(0).unwrap();
    assert_eq!(name, "ncs0");
    let vdev = client.open_device(&name).unwrap();
    let vgraph = client.allocate_graph(vdev, &blob).unwrap();
    client.load_tensor(vgraph, &image.to_bytes(), 7).unwrap();
    let (virtual_out, user_param) = client.get_result(vgraph).unwrap();
    assert_eq!(user_param, 7);
    assert_eq!(native_out, virtual_out);
    client.deallocate_graph(vgraph).unwrap();
    client.close_device(vdev).unwrap();
}

#[test]
fn rate_limited_vm_still_completes() {
    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (_vm, lib) = stack
        .attach_vm(VmPolicy::with_rate_limit(2000.0, 8))
        .unwrap();
    let client = OpenClClient::new(lib);
    let result = run_saxpy(&client, 64);
    assert_eq!(result[1], 13.0);
}

#[test]
fn router_observes_all_traffic() {
    let stack = opencl_stack(SimCl::new(), fast_config()).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);
    run_saxpy(&client, 256);
    // Async tail calls (the final releases) may still be in flight;
    // poll the router until the counts converge.
    let guest = client.library().stats();
    let expected = guest.sync_calls + guest.async_calls;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let stats = loop {
        let stats = stack.vm_router_stats(vm).unwrap();
        if stats.forwarded + stats.rejected >= expected || std::time::Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    // Every call the guest made crossed the router (interposition).
    assert_eq!(stats.forwarded, expected);
    // Data movement was visible to the hypervisor.
    assert!(stats.bytes_in >= 4 * 256, "write payload seen: {stats:?}");
    assert!(stats.bytes_out >= 4 * 256, "read payload seen: {stats:?}");
    // Device-memory estimates accumulated from the spec's annotations.
    assert!(stats.est_device_mem >= 2.0 * 4.0 * 256.0);
}
