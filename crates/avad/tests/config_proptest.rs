//! Property test: any valid `AvadConfig` serialized with `to_toml`
//! round-trips through the parser+validator unchanged. This is the
//! contract that makes the TOML layer safe to hand-roll — whatever the
//! daemon can be configured to, the file format can express and the
//! validator accepts.

use avad::config::{
    AdmissionSection, AvadConfig, BreakerSection, BrownoutSection, GuestSection, PolicySection,
    SloSection, StackSection, TenantSection,
};
use proptest::prelude::*;

/// `proptest::option::of` equivalent (the offline shim has no `option`
/// module): half the draws are `None`.
fn opt<S>(s: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + std::fmt::Debug + 'static,
{
    (any::<bool>(), s).prop_map(|(some, v)| some.then_some(v))
}

fn arb_policy() -> impl Strategy<Value = PolicySection> {
    (
        opt(0.1f64..1000.0),
        opt(1u64..64),
        opt(1u64..16),
        opt(0u64..8),
        opt(1u64..32),
        opt(1u64..1_000_000),
    )
        .prop_map(
            |(rate_limit, rate_burst, weight, priority, max_inflight, device_mem_quota)| {
                PolicySection {
                    rate_limit,
                    rate_burst,
                    weight,
                    priority,
                    max_inflight,
                    device_mem_quota,
                }
            },
        )
}

fn arb_tenants() -> impl Strategy<Value = Vec<(String, TenantSection)>> {
    proptest::collection::vec((0usize..3, any::<bool>(), arb_policy()), 0..3).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (name_idx, admin, policy))| {
                let name = format!("tenant-{}{i}", ["a", "b", "c"][name_idx % 3]);
                let tenant = TenantSection {
                    // Unique per index, so the token-collision rule stays out
                    // of the way of the round-trip property.
                    token: format!("tok-{i}-{name_idx}"),
                    admin,
                    policy,
                };
                (name, tenant)
            })
            .collect()
    })
}

fn arb_config() -> impl Strategy<Value = AvadConfig> {
    let stack = (
        0usize..3,
        0usize..3,
        0usize..3,
        0usize..3,
        0u64..4,
        1u64..8,
        opt(1u64..1_000_000),
    )
        .prop_map(
            |(transport, cost, sched, place, pool, inflight, capacity)| StackSection {
                transport: ["inproc", "shmem", "tcp"][transport].to_string(),
                cost_model: ["free", "paravirtual", "network"][cost].to_string(),
                scheduler: ["fifo", "fair_share", "priority"][sched].to_string(),
                placement: ["round_robin", "least_loaded", "packed"][place].to_string(),
                pool_size: pool,
                slot_inflight: inflight,
                device_mem_capacity: capacity,
                // Quota at most the capacity: always inside the 8x envelope.
                device_mem_quota: capacity.map(|c| (c / 2).max(1)),
                ..StackSection::default()
            },
        );
    let guest = (0u64..32, 0u64..200, opt(10u64..10_000), 0u64..6).prop_map(
        |(batch_calls, batch_delay_us, deadline, retries)| GuestSection {
            batch_max_calls: batch_calls,
            batch_max_delay_us: batch_delay_us,
            call_deadline_ms: deadline,
            max_retries: retries,
            ..GuestSection::default()
        },
    );
    let admission =
        (1u64..64, any::<bool>(), opt(1u64..5_000)).prop_map(|(depth, with_slot, age)| {
            AdmissionSection {
                max_queue_depth: Some(depth + 8), // >= any slot_inflight drawn above
                max_slot_queue_depth: if with_slot {
                    Some((depth + 8) * 2)
                } else {
                    None
                },
                max_queue_age_ms: age,
            }
        });
    let breaker = opt((1u64..16, 1u64..500, 1u64..8).prop_map(
        |(failure_threshold, open_for_ms, probe_successes)| BreakerSection {
            failure_threshold,
            open_for_ms,
            probe_successes,
        },
    ));
    let slo_brownout = (
        opt(
            (1u64..1_000_000, 1u64..64).prop_map(|(p99, window)| SloSection {
                p99_e2e_us: Some(p99),
                max_retry_rate: Some(0.5),
                min_window_calls: window,
                ..SloSection::default()
            }),
        ),
        opt(
            (1u64..4, 0u64..4, 1u64..4).prop_map(|(stage1, extra, max_shed)| BrownoutSection {
                stage1_burn: stage1,
                stage2_burn: stage1 + extra,
                max_shed,
            }),
        ),
    )
        .prop_map(|(slo, brownout)| {
            // Brownout without a live SLO is a validation error by design;
            // keep generated configs valid.
            let brownout = if slo.is_some() { brownout } else { None };
            (slo, brownout)
        });

    (
        stack,
        guest,
        admission,
        breaker,
        slo_brownout,
        arb_policy(),
        arb_tenants(),
        (any::<bool>(), 1u64..10_000),
    )
        .prop_map(
            |(
                stack,
                guest,
                admission,
                breaker,
                (slo, brownout),
                policy,
                tenants,
                (hooks, drain),
            )| {
                // Keep every generated tenant quota inside the 8x
                // overcommit envelope the validator enforces.
                let envelope = stack.device_mem_capacity.map(|c| c * 8);
                let tenants = tenants
                    .into_iter()
                    .map(|(name, mut tenant)| {
                        if let (Some(limit), Some(q)) = (envelope, tenant.policy.device_mem_quota) {
                            tenant.policy.device_mem_quota = Some(q.min(limit));
                        }
                        (name, tenant)
                    })
                    .collect();
                let mut config = AvadConfig {
                    stack,
                    guest,
                    admission,
                    breaker,
                    slo,
                    brownout,
                    policy,
                    tenants,
                    ..AvadConfig::default()
                };
                config.daemon.enable_test_hooks = hooks;
                config.daemon.drain_timeout_ms = drain;
                config.daemon.flight_record = hooks.then(|| "trace.json".to_string());
                config
            },
        )
}

proptest! {
    /// serialize → parse → identical struct, and the serialized form
    /// passes validation (the generator only emits valid configs).
    #[test]
    fn config_round_trips_through_toml(config in arb_config()) {
        let own_violations = config.validate();
        prop_assert!(
            own_violations.is_empty(),
            "generator emitted an invalid config: {own_violations:#?}\n{config:#?}"
        );
        let toml = config.to_toml();
        let reparsed = match AvadConfig::from_str(&toml) {
            Ok(c) => c,
            Err(violations) => {
                return Err(TestCaseError::fail(format!(
                    "serialized config failed to validate: {violations:#?}\n---\n{toml}"
                )))
            }
        };
        prop_assert_eq!(reparsed, config, "round-trip mismatch\n---\n{}", toml);
    }
}
