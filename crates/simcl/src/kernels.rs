//! Kernel bodies and the device's kernel registry.
//!
//! Because the simulated device does not compile OpenCL C, kernel *bodies*
//! are Rust implementations registered by name. `clBuildProgram` resolves
//! each `__kernel` signature in the source against this registry; execution
//! then dispatches to the registered body with the bound arguments and the
//! NDRange geometry — the exact information a real device receives.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::status::{ClError, ClResult, CL_INVALID_ARG_INDEX, CL_INVALID_ARG_VALUE};

/// One bound argument as seen by a kernel body.
pub enum Slot<'a> {
    /// A `__global` buffer.
    Buf(&'a mut [u8]),
    /// A `__local` scratch request of the given byte size.
    Local(usize),
    /// A by-value scalar in native byte order.
    Scalar(Vec<u8>),
}

/// Everything a kernel body needs for one NDRange execution.
pub struct Invocation<'a> {
    /// Global work size per dimension.
    pub global: [usize; 3],
    /// Work-group size per dimension.
    pub local: [usize; 3],
    slots: Vec<Slot<'a>>,
}

impl<'a> Invocation<'a> {
    /// Builds an invocation (used by the queue executor and by tests).
    pub fn new(global: [usize; 3], local: [usize; 3], slots: Vec<Slot<'a>>) -> Self {
        Invocation {
            global,
            local,
            slots,
        }
    }

    /// Number of bound argument slots.
    pub fn arg_count(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, i: usize) -> ClResult<&Slot<'a>> {
        self.slots.get(i).ok_or(ClError(CL_INVALID_ARG_INDEX))
    }

    /// Reads a scalar argument's raw bytes.
    pub fn scalar_bytes(&self, i: usize) -> ClResult<&[u8]> {
        match self.slot(i)? {
            Slot::Scalar(b) => Ok(b),
            _ => Err(ClError(CL_INVALID_ARG_VALUE)),
        }
    }

    /// Reads a `cl_uint` scalar argument.
    pub fn scalar_u32(&self, i: usize) -> ClResult<u32> {
        let b = self.scalar_bytes(i)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| ClError(CL_INVALID_ARG_VALUE))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a `cl_int` scalar argument.
    pub fn scalar_i32(&self, i: usize) -> ClResult<i32> {
        Ok(self.scalar_u32(i)? as i32)
    }

    /// Reads a `float` scalar argument.
    pub fn scalar_f32(&self, i: usize) -> ClResult<f32> {
        Ok(f32::from_bits(self.scalar_u32(i)?))
    }

    /// Reads a `size_t`/`ulong` scalar argument.
    pub fn scalar_u64(&self, i: usize) -> ClResult<u64> {
        let b = self.scalar_bytes(i)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| ClError(CL_INVALID_ARG_VALUE))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Byte size requested for a `__local` argument.
    pub fn local_len(&self, i: usize) -> ClResult<usize> {
        match self.slot(i)? {
            Slot::Local(n) => Ok(*n),
            _ => Err(ClError(CL_INVALID_ARG_VALUE)),
        }
    }

    /// Borrows one buffer argument mutably.
    pub fn buf(&mut self, i: usize) -> ClResult<&mut [u8]> {
        match self.slots.get_mut(i) {
            Some(Slot::Buf(b)) => Ok(&mut **b),
            Some(_) => Err(ClError(CL_INVALID_ARG_VALUE)),
            None => Err(ClError(CL_INVALID_ARG_INDEX)),
        }
    }

    /// Borrows `N` *distinct* buffer arguments mutably at once.
    ///
    /// # Errors
    ///
    /// Fails with `CL_INVALID_ARG_VALUE` if any index repeats, is out of
    /// range, or does not name a buffer slot.
    pub fn bufs<const N: usize>(&mut self, idx: [usize; N]) -> ClResult<[&mut [u8]; N]> {
        for (a, i) in idx.iter().enumerate() {
            if *i >= self.slots.len() {
                return Err(ClError(CL_INVALID_ARG_INDEX));
            }
            if !matches!(self.slots[*i], Slot::Buf(_)) {
                return Err(ClError(CL_INVALID_ARG_VALUE));
            }
            if idx[..a].contains(i) {
                return Err(ClError(CL_INVALID_ARG_VALUE));
            }
        }
        let base = self.slots.as_mut_ptr();
        let out: [&mut [u8]; N] = idx.map(|i| {
            // SAFETY: every index is in bounds and distinct (checked above),
            // so each `&mut` points at a different element of `slots`; the
            // borrows cannot alias and all live no longer than `&mut self`.
            match unsafe { &mut *base.add(i) } {
                Slot::Buf(b) => &mut **b,
                _ => unreachable!("checked to be Buf above"),
            }
        });
        Ok(out)
    }
}

/// A named kernel implementation.
pub trait KernelBody: Send + Sync {
    /// Executes the whole NDRange.
    fn execute(&self, inv: &mut Invocation<'_>) -> ClResult<()>;
}

impl<F> KernelBody for F
where
    F: Fn(&mut Invocation<'_>) -> ClResult<()> + Send + Sync,
{
    fn execute(&self, inv: &mut Invocation<'_>) -> ClResult<()> {
        self(inv)
    }
}

/// Name → body registry consulted by `clBuildProgram`.
#[derive(Default)]
pub struct KernelRegistry {
    map: RwLock<HashMap<String, Arc<dyn KernelBody>>>,
}

impl KernelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a kernel body under `name`.
    pub fn register(&self, name: impl Into<String>, body: Arc<dyn KernelBody>) {
        self.map.write().insert(name.into(), body);
    }

    /// Registers a closure as a kernel body.
    pub fn register_fn<F>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(&mut Invocation<'_>) -> ClResult<()> + Send + Sync + 'static,
    {
        self.register(name, Arc::new(f));
    }

    /// Looks up a body by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn KernelBody>> {
        self.map.read().get(name).cloned()
    }

    /// True if `name` has a registered body.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// Installs the built-in demonstration kernels (`vector_add`,
    /// `vector_scale`, `fill`, `saxpy`).
    pub fn with_builtins(self) -> Self {
        builtins::install(&self);
        self
    }
}

/// Small generic kernels used by the quickstart example and tests.
pub mod builtins {
    use super::*;
    use crate::mem::{as_f32, as_f32_mut};

    /// Registers all built-ins into `reg`.
    pub fn install(reg: &KernelRegistry) {
        reg.register_fn("vector_add", |inv| {
            let n = inv.scalar_u32(3)? as usize;
            let [a, b, c] = inv.bufs([0, 1, 2])?;
            let (a, b) = (as_f32(a), as_f32(b));
            let c = as_f32_mut(c);
            for i in 0..n.min(c.len()) {
                c[i] = a[i] + b[i];
            }
            Ok(())
        });
        reg.register_fn("vector_scale", |inv| {
            let factor = inv.scalar_f32(1)?;
            let n = inv.scalar_u32(2)? as usize;
            let data = as_f32_mut(inv.buf(0)?);
            for v in data.iter_mut().take(n) {
                *v *= factor;
            }
            Ok(())
        });
        reg.register_fn("fill", |inv| {
            let value = inv.scalar_f32(1)?;
            let data = as_f32_mut(inv.buf(0)?);
            for v in data.iter_mut() {
                *v = value;
            }
            Ok(())
        });
        reg.register_fn("saxpy", |inv| {
            let a = inv.scalar_f32(2)?;
            let n = inv.scalar_u32(3)? as usize;
            let [x, y] = inv.bufs([0, 1])?;
            let x = as_f32(x);
            let y = as_f32_mut(y);
            for i in 0..n.min(y.len()) {
                y[i] += a * x[i];
            }
            Ok(())
        });
    }

    /// OpenCL C source matching the built-ins, for use with
    /// `clCreateProgramWithSource` in examples and tests.
    pub const SOURCE: &str = r#"
__kernel void vector_add(__global const float *a, __global const float *b,
                         __global float *c, const uint n) {
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
__kernel void vector_scale(__global float *data, const float factor, const uint n) {
    int i = get_global_id(0);
    if (i < n) data[i] *= factor;
}
__kernel void fill(__global float *data, const float value) {
    data[get_global_id(0)] = value;
}
__kernel void saxpy(__global const float *x, __global float *y,
                    const float a, const uint n) {
    int i = get_global_id(0);
    if (i < n) y[i] += a * x[i];
}
"#;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{f32_to_bytes, AlignedBuf};

    fn inv_with_bufs(bufs: Vec<AlignedBuf>) -> (Vec<AlignedBuf>, ()) {
        (bufs, ())
    }

    #[test]
    fn registry_register_and_lookup() {
        let reg = KernelRegistry::new();
        assert!(!reg.contains("k"));
        reg.register_fn("k", |_inv| Ok(()));
        assert!(reg.contains("k"));
        assert!(reg.get("k").is_some());
        assert!(reg.get("other").is_none());
    }

    #[test]
    fn builtin_vector_add_computes() {
        let reg = KernelRegistry::new().with_builtins();
        let body = reg.get("vector_add").unwrap();
        let mut a = AlignedBuf::from_bytes(&f32_to_bytes(&[1.0, 2.0, 3.0]));
        let mut b = AlignedBuf::from_bytes(&f32_to_bytes(&[10.0, 20.0, 30.0]));
        let mut c = AlignedBuf::zeroed(12);
        let slots = vec![
            Slot::Buf(a.as_bytes_mut()),
            Slot::Buf(b.as_bytes_mut()),
            Slot::Buf(c.as_bytes_mut()),
            Slot::Scalar(3u32.to_le_bytes().to_vec()),
        ];
        let mut inv = Invocation::new([3, 1, 1], [1, 1, 1], slots);
        body.execute(&mut inv).unwrap();
        drop(inv);
        assert_eq!(
            crate::mem::bytes_to_f32(c.as_bytes()),
            vec![11.0, 22.0, 33.0]
        );
        let _ = inv_with_bufs(vec![]);
    }

    #[test]
    fn scalar_accessors_validate_size() {
        let slots = vec![Slot::Scalar(vec![1, 0, 0, 0]), Slot::Scalar(vec![1, 2])];
        let inv = Invocation::new([1, 1, 1], [1, 1, 1], slots);
        assert_eq!(inv.scalar_u32(0).unwrap(), 1);
        assert!(inv.scalar_u32(1).is_err());
        assert!(inv.scalar_u64(0).is_err());
        assert!(inv.scalar_u32(9).is_err());
    }

    #[test]
    fn bufs_rejects_duplicates_and_wrong_kinds() {
        let mut a = AlignedBuf::zeroed(8);
        let slots = vec![Slot::Buf(a.as_bytes_mut()), Slot::Local(64)];
        let mut inv = Invocation::new([1, 1, 1], [1, 1, 1], slots);
        assert!(inv.bufs([0, 0]).is_err());
        assert!(inv.bufs([0, 1]).is_err()); // slot 1 is Local
        assert!(inv.bufs([0]).is_ok());
        assert_eq!(inv.local_len(1).unwrap(), 64);
    }

    #[test]
    fn bufs_returns_disjoint_mut_slices() {
        let mut a = AlignedBuf::zeroed(4);
        let mut b = AlignedBuf::zeroed(4);
        let slots = vec![Slot::Buf(a.as_bytes_mut()), Slot::Buf(b.as_bytes_mut())];
        let mut inv = Invocation::new([1, 1, 1], [1, 1, 1], slots);
        let [x, y] = inv.bufs([0, 1]).unwrap();
        x[0] = 1;
        y[0] = 2;
        drop(inv);
        assert_eq!(a.as_bytes()[0], 1);
        assert_eq!(b.as_bytes()[0], 2);
    }
}
