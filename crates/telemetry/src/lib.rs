//! `ava-telemetry` — end-to-end observability for the AvA remoting stack.
//!
//! AvA's value proposition is interposing the API boundary; this crate
//! makes the interposition *measurable*. It provides:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   latency [`Histogram`]s (p50/p95/p99/max), cloneable behind an `Arc`
//!   into guest library, hypervisor router and API server;
//! * per-call [`span`]s keyed by the wire `(vm_id, call_id)`: each tier
//!   stamps its lifecycle stage, so one call's end-to-end latency
//!   decomposes exactly into guest-marshal / transport / router-queue /
//!   server-execute segments (the paper's Fig. 5 question — call
//!   frequency vs. data movement — answered without hand-instrumented
//!   binaries);
//! * exporters rendering a [`Snapshot`] as an aligned text table or JSON.
//!
//! Metric names follow `tier.subsystem.name` (see DESIGN.md
//! "Observability").
//!
//! # Zero cost when disabled
//!
//! Components hold a [`Telemetry`] handle, which is a cheap `Option` over
//! the registry. The default handle is disabled: every recording method
//! is an inlineable no-op (one branch, no clock reads, no allocation), so
//! compiling telemetry in does not tax the forwarding fast path.

pub mod export;
pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod span;

pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{pack_slots, unpack_slots, Event, EventKind, FlightRecorder, Tier};
pub use registry::{Counter, Gauge, Registry, Snapshot};
pub use slo::{SloConfig, SloMonitor, SloObjective, SloSubject, SloViolation};
pub use span::{SpanKey, SpanRecord, SpanTable, Stage};

/// A tier's handle onto the shared registry; disabled by default.
///
/// The handle carries the VM id it is attributed to, so span keys from
/// different tiers of the same VM agree ([`Telemetry::with_vm`]).
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Option<Registry>,
    vm: u32,
}

impl Telemetry {
    /// A disabled handle: all recording is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle over `registry`, attributed to VM 0.
    pub fn new(registry: Registry) -> Self {
        Telemetry {
            registry: Some(registry),
            vm: 0,
        }
    }

    /// True if a registry is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// A clone of this handle attributed to `vm` (span keys are
    /// `(vm, call_id)`).
    pub fn with_vm(&self, vm: u32) -> Self {
        Telemetry {
            registry: self.registry.clone(),
            vm,
        }
    }

    /// The VM this handle attributes spans to.
    pub fn vm(&self) -> u32 {
        self.vm
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Nanoseconds since the registry epoch; 0 when disabled (callers
    /// must not branch on this — use [`Telemetry::enabled`]).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        match &self.registry {
            Some(r) => r.now_nanos(),
            None => 0,
        }
    }

    /// Stamps `stage` for the call `call_id` at the current instant.
    #[inline]
    pub fn span_stage(&self, call_id: u64, stage: Stage, fn_id: Option<u32>) {
        if let Some(r) = &self.registry {
            r.spans()
                .stage((self.vm, call_id), stage, r.now_nanos(), fn_id);
        }
    }

    /// Stamps `stage` at an explicit `nanos` timestamp (from
    /// [`Telemetry::now_nanos`]) — used when the instant of interest
    /// precedes the moment the call id becomes known.
    #[inline]
    pub fn span_stage_at(&self, call_id: u64, stage: Stage, nanos: u64, fn_id: Option<u32>) {
        if let Some(r) = &self.registry {
            r.spans().stage((self.vm, call_id), stage, nanos, fn_id);
        }
    }

    /// Stamps `stage` at the current instant through the span table's
    /// lock-free deferred intake — no shard mutex on the caller's path.
    /// Used on the router data path; the stamp becomes visible at the
    /// next fold (guest-end stamp or span read).
    #[inline]
    pub fn span_stage_deferred(&self, call_id: u64, stage: Stage, fn_id: Option<u32>) {
        if let Some(r) = &self.registry {
            r.spans()
                .stage_deferred((self.vm, call_id), stage, r.now_nanos(), fn_id);
        }
    }

    /// Discards an open span (call failed before crossing the wire).
    #[inline]
    pub fn span_abandon(&self, call_id: u64) {
        if let Some(r) = &self.registry {
            r.spans().abandon((self.vm, call_id));
        }
    }

    /// Records `nanos` into the histogram `name`.
    #[inline]
    pub fn record_hist(&self, name: &str, nanos: u64) {
        if let Some(r) = &self.registry {
            r.histogram(name).record(nanos);
        }
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Records a flight-recorder event stamped with the current instant
    /// and this handle's VM attribution. No-op when disabled.
    #[inline]
    pub fn event(&self, tier: Tier, kind: EventKind, call_id: u64, arg: u64) {
        if let Some(r) = &self.registry {
            r.recorder().record(Event {
                nanos: r.now_nanos(),
                tier,
                kind,
                vm: self.vm,
                call_id,
                arg,
            });
        }
    }

    /// Records a flight-recorder event at an explicit `nanos` timestamp
    /// (from [`Telemetry::now_nanos`]) — lets a hot path reuse a clock
    /// read it already made for a span stamp. No-op when disabled.
    #[inline]
    pub fn event_at(&self, tier: Tier, kind: EventKind, call_id: u64, arg: u64, nanos: u64) {
        if let Some(r) = &self.registry {
            r.recorder().record(Event {
                nanos,
                tier,
                kind,
                vm: self.vm,
                call_id,
                arg,
            });
        }
    }

    /// Renders the attached registry as a text report, or `None` when
    /// disabled.
    pub fn report(&self) -> Option<String> {
        self.registry.as_ref().map(|r| r.snapshot().render_text())
    }

    /// Renders the attached registry as Chrome-trace JSON
    /// ([`export::trace_json`]), or `None` when disabled.
    pub fn export_trace(&self) -> Option<String> {
        self.registry
            .as_ref()
            .map(|r| export::trace_json(&r.snapshot()))
    }

    /// Renders the attached registry as Prometheus text exposition
    /// ([`export::prometheus`]), or `None` when disabled.
    pub fn export_prometheus(&self) -> Option<String> {
        self.registry
            .as_ref()
            .map(|r| export::prometheus(&r.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.span_stage(1, Stage::GuestStart, Some(0));
        t.record_hist("x", 5);
        t.count("y", 1);
        assert!(t.report().is_none());
    }

    #[test]
    fn vm_attribution_flows_into_span_keys() {
        let r = Registry::new();
        let guest = Telemetry::new(r.clone()).with_vm(3);
        guest.span_stage(7, Stage::GuestStart, Some(1));
        guest.span_stage(7, Stage::GuestEnd, None);
        let spans = r.snapshot().spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].vm, 3);
        assert_eq!(spans[0].call_id, 7);
    }

    #[test]
    fn report_renders_when_enabled() {
        let t = Telemetry::new(Registry::new());
        t.count("guest.calls.sync", 2);
        let report = t.report().unwrap();
        assert!(report.contains("guest.calls.sync"));
    }
}
