//! Public object handles and parameter types of the OpenCL subset.

/// Opaque handle newtype constructor.
macro_rules! handle_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw handle value (what crosses the wire).
            pub fn raw(self) -> u64 {
                self.0
            }
        }
    };
}

handle_type!(
    /// An OpenCL platform (`cl_platform_id`).
    ClPlatform
);
handle_type!(
    /// An OpenCL device (`cl_device_id`).
    ClDevice
);
handle_type!(
    /// An OpenCL context (`cl_context`).
    ClContext
);
handle_type!(
    /// An in-order command queue (`cl_command_queue`).
    ClQueue
);
handle_type!(
    /// A memory object (`cl_mem`), either a buffer or a simple image.
    ClMem
);
handle_type!(
    /// A program object (`cl_program`).
    ClProgram
);
handle_type!(
    /// A kernel object (`cl_kernel`).
    ClKernel
);
handle_type!(
    /// An event object (`cl_event`).
    ClEvent
);

/// `cl_device_type` subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Any device.
    All,
    /// GPU-class devices only.
    Gpu,
    /// Accelerator-class devices only.
    Accelerator,
}

/// Buffer allocation flags (`cl_mem_flags` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemFlags {
    /// `CL_MEM_READ_ONLY` (from the kernel's perspective).
    pub read_only: bool,
    /// `CL_MEM_WRITE_ONLY`.
    pub write_only: bool,
    /// `CL_MEM_COPY_HOST_PTR`: initialize from host data at creation.
    pub copy_host_ptr: bool,
}

impl MemFlags {
    /// Read-write buffer (the default).
    pub fn read_write() -> Self {
        MemFlags::default()
    }

    /// Read-only buffer.
    pub fn read_only() -> Self {
        MemFlags {
            read_only: true,
            ..Default::default()
        }
    }

    /// Write-only buffer.
    pub fn write_only() -> Self {
        MemFlags {
            write_only: true,
            ..Default::default()
        }
    }

    /// Encodes to the OpenCL bitfield (for marshaling).
    pub fn to_bits(self) -> u64 {
        let mut bits = 0u64;
        if self.read_only {
            bits |= 1 << 2; // CL_MEM_READ_ONLY
        }
        if self.write_only {
            bits |= 1 << 1; // CL_MEM_WRITE_ONLY
        }
        if !self.read_only && !self.write_only {
            bits |= 1 << 0; // CL_MEM_READ_WRITE
        }
        if self.copy_host_ptr {
            bits |= 1 << 5; // CL_MEM_COPY_HOST_PTR
        }
        bits
    }

    /// Decodes from the OpenCL bitfield.
    pub fn from_bits(bits: u64) -> Self {
        MemFlags {
            read_only: bits & (1 << 2) != 0,
            write_only: bits & (1 << 1) != 0,
            copy_host_ptr: bits & (1 << 5) != 0,
        }
    }
}

/// Command-queue properties (`cl_command_queue_properties` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueProps {
    /// `CL_QUEUE_PROFILING_ENABLE`: record event timestamps.
    pub profiling: bool,
}

impl QueueProps {
    /// Encodes to the OpenCL bitfield.
    pub fn to_bits(self) -> u64 {
        if self.profiling {
            1 << 1
        } else {
            0
        }
    }

    /// Decodes from the OpenCL bitfield.
    pub fn from_bits(bits: u64) -> Self {
        QueueProps {
            profiling: bits & (1 << 1) != 0,
        }
    }
}

/// A value bound to a kernel argument slot via `clSetKernelArg`.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelArg {
    /// A `__global` memory object.
    Mem(ClMem),
    /// A `__local` scratch allocation of the given byte size.
    Local(usize),
    /// A by-value scalar, passed as its native byte representation.
    Scalar(Vec<u8>),
}

impl KernelArg {
    /// Convenience constructor for a `u32`/`cl_uint` scalar argument.
    pub fn from_u32(v: u32) -> Self {
        KernelArg::Scalar(v.to_le_bytes().to_vec())
    }

    /// Convenience constructor for an `i32`/`cl_int` scalar argument.
    pub fn from_i32(v: i32) -> Self {
        KernelArg::Scalar(v.to_le_bytes().to_vec())
    }

    /// Convenience constructor for an `f32`/`float` scalar argument.
    pub fn from_f32(v: f32) -> Self {
        KernelArg::Scalar(v.to_le_bytes().to_vec())
    }

    /// Convenience constructor for a `u64`/`size_t` scalar argument.
    pub fn from_usize(v: usize) -> Self {
        KernelArg::Scalar((v as u64).to_le_bytes().to_vec())
    }
}

/// `clGetDeviceInfo` queries (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceInfo {
    /// Device name string.
    Name,
    /// Vendor string.
    Vendor,
    /// Number of parallel compute units.
    MaxComputeUnits,
    /// Maximum work-group size.
    MaxWorkGroupSize,
    /// Global memory size in bytes.
    GlobalMemSize,
    /// Local (work-group scratch) memory size in bytes.
    LocalMemSize,
    /// Device type.
    Type,
}

/// `clGetPlatformInfo` queries (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformInfo {
    /// Platform name.
    Name,
    /// Platform vendor.
    Vendor,
    /// Platform version string.
    Version,
}

/// A heterogeneous info query result.
#[derive(Debug, Clone, PartialEq)]
pub enum InfoValue {
    /// String-valued info.
    Str(String),
    /// Integer-valued info.
    UInt(u64),
}

impl InfoValue {
    /// The integer value, if this is integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            InfoValue::UInt(v) => Some(*v),
            InfoValue::Str(_) => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            InfoValue::Str(s) => Some(s),
            InfoValue::UInt(_) => None,
        }
    }
}

/// Execution status of an event (`cl_int` execution status values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventStatus {
    /// Command queued on the host.
    Queued,
    /// Command submitted to the device.
    Submitted,
    /// Command running on the device.
    Running,
    /// Command finished successfully.
    Complete,
    /// Command failed with the given status code.
    Failed(i32),
}

impl EventStatus {
    /// Encodes to the OpenCL execution-status integer.
    pub fn to_cl(self) -> i32 {
        match self {
            EventStatus::Queued => 3,    // CL_QUEUED
            EventStatus::Submitted => 2, // CL_SUBMITTED
            EventStatus::Running => 1,   // CL_RUNNING
            EventStatus::Complete => 0,  // CL_COMPLETE
            EventStatus::Failed(code) => code,
        }
    }

    /// Decodes from the OpenCL execution-status integer.
    pub fn from_cl(v: i32) -> Self {
        match v {
            3 => EventStatus::Queued,
            2 => EventStatus::Submitted,
            1 => EventStatus::Running,
            0 => EventStatus::Complete,
            code => EventStatus::Failed(code),
        }
    }
}

/// Event timestamps from `clGetEventProfilingInfo`, in nanoseconds since
/// the device epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilingInfo {
    /// `CL_PROFILING_COMMAND_QUEUED`.
    pub queued: u64,
    /// `CL_PROFILING_COMMAND_SUBMIT`.
    pub submitted: u64,
    /// `CL_PROFILING_COMMAND_START`.
    pub started: u64,
    /// `CL_PROFILING_COMMAND_END`.
    pub ended: u64,
}

impl ProfilingInfo {
    /// Device-side execution time.
    pub fn duration_nanos(&self) -> u64 {
        self.ended.saturating_sub(self.started)
    }
}

/// Description of a simple 2D image (`clCreateImage` subset): images are
/// stored as row-major buffers of `width * height * elem_size` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageDesc {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Bytes per pixel.
    pub elem_size: usize,
}

impl ImageDesc {
    /// Total byte size of the image.
    pub fn byte_len(&self) -> usize {
        self.width * self.height * self.elem_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_flags_round_trip_bits() {
        for flags in [
            MemFlags::read_write(),
            MemFlags::read_only(),
            MemFlags::write_only(),
            MemFlags {
                copy_host_ptr: true,
                ..MemFlags::read_only()
            },
        ] {
            assert_eq!(MemFlags::from_bits(flags.to_bits()), flags);
        }
    }

    #[test]
    fn queue_props_round_trip_bits() {
        for props in [QueueProps::default(), QueueProps { profiling: true }] {
            assert_eq!(QueueProps::from_bits(props.to_bits()), props);
        }
    }

    #[test]
    fn event_status_round_trips() {
        for st in [
            EventStatus::Queued,
            EventStatus::Submitted,
            EventStatus::Running,
            EventStatus::Complete,
            EventStatus::Failed(-54),
        ] {
            assert_eq!(EventStatus::from_cl(st.to_cl()), st);
        }
    }

    #[test]
    fn scalar_arg_encodings() {
        assert_eq!(
            KernelArg::from_u32(0x01020304),
            KernelArg::Scalar(vec![4, 3, 2, 1])
        );
        assert_eq!(
            KernelArg::from_f32(1.0),
            KernelArg::Scalar(1.0f32.to_le_bytes().to_vec())
        );
    }

    #[test]
    fn profiling_duration() {
        let p = ProfilingInfo {
            queued: 0,
            submitted: 10,
            started: 100,
            ended: 350,
        };
        assert_eq!(p.duration_nanos(), 250);
    }

    #[test]
    fn image_desc_len() {
        let d = ImageDesc {
            width: 64,
            height: 32,
            elem_size: 4,
        };
        assert_eq!(d.byte_len(), 8192);
    }
}
