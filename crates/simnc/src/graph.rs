//! Network graphs: the contents of an NCSDK "graph file".
//!
//! A real NCS graph file is a compiled binary blob produced offline by the
//! NCSDK compiler. Here the blob is a serialized [`Network`]: a DAG of
//! layers with inline `f32` weights. `mvncAllocateGraph` deserializes it;
//! the simulated VPU executes it with the primitives in [`crate::tensor`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::status::{NcError, NcResult, MVNC_UNSUPPORTED_GRAPH_FILE};
use crate::tensor::{avgpool, concat, conv2d, fully_connected, maxpool, softmax, Tensor};

/// Magic bytes at the start of a graph blob.
pub const GRAPH_MAGIC: &[u8; 4] = b"AVNC";

/// One layer of the network. `input` fields index earlier layers.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Network input declaration.
    Input {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// 2D convolution (+ optional fused ReLU).
    Conv {
        /// Index of the producing layer.
        input: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Fused ReLU.
        relu: bool,
        /// Weights, `[out_c][in_c][k][k]` flattened.
        weights: Vec<f32>,
        /// Per-output-channel bias.
        bias: Vec<f32>,
    },
    /// Max pooling.
    MaxPool {
        /// Index of the producing layer.
        input: usize,
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Index of the producing layer.
        input: usize,
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Channel concatenation of several branches.
    Concat {
        /// Indices of the producing layers.
        inputs: Vec<usize>,
    },
    /// Fully connected (+ optional fused ReLU).
    Fc {
        /// Index of the producing layer.
        input: usize,
        /// Output neurons.
        out_n: usize,
        /// Fused ReLU.
        relu: bool,
        /// Weights, `[out][in]` flattened.
        weights: Vec<f32>,
        /// Bias, `out` entries.
        bias: Vec<f32>,
    },
    /// Softmax over the flattened input.
    Softmax {
        /// Index of the producing layer.
        input: usize,
    },
}

/// A compiled network: layers in topological order; the last layer is the
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Human-readable network name.
    pub name: String,
    /// Layers; index 0 must be `Input`.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Input shape `(c, h, w)`.
    pub fn input_shape(&self) -> NcResult<(usize, usize, usize)> {
        match self.layers.first() {
            Some(Layer::Input { c, h, w }) => Ok((*c, *h, *w)),
            _ => Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE)),
        }
    }

    /// Total weight parameters (for reporting).
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Conv { weights, bias, .. } | Layer::Fc { weights, bias, .. } => {
                    weights.len() + bias.len()
                }
                _ => 0,
            })
            .sum()
    }

    /// Runs a forward pass.
    pub fn forward(&self, input: &Tensor) -> NcResult<Tensor> {
        let mut results: Vec<Option<Tensor>> = vec![None; self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate() {
            let out = match layer {
                Layer::Input { c, h, w } => {
                    if input.c != *c || input.h != *h || input.w != *w {
                        return Err(NcError(crate::status::MVNC_INVALID_PARAMETERS));
                    }
                    input.clone()
                }
                Layer::Conv {
                    input,
                    out_c,
                    k,
                    stride,
                    pad,
                    relu,
                    weights,
                    bias,
                } => {
                    let src = fetch(&results, *input)?;
                    conv2d(src, weights, bias, *out_c, *k, *stride, *pad, *relu)?
                }
                Layer::MaxPool { input, k, stride } => {
                    maxpool(fetch(&results, *input)?, *k, *stride)?
                }
                Layer::AvgPool { input, k, stride } => {
                    avgpool(fetch(&results, *input)?, *k, *stride)?
                }
                Layer::Concat { inputs } => {
                    let srcs: NcResult<Vec<&Tensor>> =
                        inputs.iter().map(|i| fetch(&results, *i)).collect();
                    concat(&srcs?)?
                }
                Layer::Fc {
                    input,
                    out_n,
                    relu,
                    weights,
                    bias,
                } => fully_connected(fetch(&results, *input)?, weights, bias, *out_n, *relu)?,
                Layer::Softmax { input } => softmax(fetch(&results, *input)?),
            };
            results[i] = Some(out);
        }
        results
            .pop()
            .flatten()
            .ok_or(NcError(MVNC_UNSUPPORTED_GRAPH_FILE))
    }

    /// Serializes into a graph blob.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(GRAPH_MAGIC);
        put_u32(&mut out, 1); // version
        put_str(&mut out, &self.name);
        put_u32(&mut out, self.layers.len() as u32);
        for layer in &self.layers {
            match layer {
                Layer::Input { c, h, w } => {
                    out.push(0);
                    put_u32(&mut out, *c as u32);
                    put_u32(&mut out, *h as u32);
                    put_u32(&mut out, *w as u32);
                }
                Layer::Conv {
                    input,
                    out_c,
                    k,
                    stride,
                    pad,
                    relu,
                    weights,
                    bias,
                } => {
                    out.push(1);
                    put_u32(&mut out, *input as u32);
                    put_u32(&mut out, *out_c as u32);
                    put_u32(&mut out, *k as u32);
                    put_u32(&mut out, *stride as u32);
                    put_u32(&mut out, *pad as u32);
                    out.push(u8::from(*relu));
                    put_f32s(&mut out, weights);
                    put_f32s(&mut out, bias);
                }
                Layer::MaxPool { input, k, stride } => {
                    out.push(2);
                    put_u32(&mut out, *input as u32);
                    put_u32(&mut out, *k as u32);
                    put_u32(&mut out, *stride as u32);
                }
                Layer::AvgPool { input, k, stride } => {
                    out.push(3);
                    put_u32(&mut out, *input as u32);
                    put_u32(&mut out, *k as u32);
                    put_u32(&mut out, *stride as u32);
                }
                Layer::Concat { inputs } => {
                    out.push(4);
                    put_u32(&mut out, inputs.len() as u32);
                    for i in inputs {
                        put_u32(&mut out, *i as u32);
                    }
                }
                Layer::Fc {
                    input,
                    out_n,
                    relu,
                    weights,
                    bias,
                } => {
                    out.push(5);
                    put_u32(&mut out, *input as u32);
                    put_u32(&mut out, *out_n as u32);
                    out.push(u8::from(*relu));
                    put_f32s(&mut out, weights);
                    put_f32s(&mut out, bias);
                }
                Layer::Softmax { input } => {
                    out.push(6);
                    put_u32(&mut out, *input as u32);
                }
            }
        }
        out
    }

    /// Deserializes a graph blob.
    pub fn from_blob(blob: &[u8]) -> NcResult<Network> {
        let mut cur = Reader { buf: blob, pos: 0 };
        let magic = cur.take(4)?;
        if magic != GRAPH_MAGIC {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        let version = cur.u32()?;
        if version != 1 {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        let name = cur.str()?;
        let count = cur.u32()? as usize;
        if count > 1 << 20 {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        let mut layers = Vec::with_capacity(count);
        for idx in 0..count {
            let tag = cur.u8()?;
            let layer = match tag {
                0 => Layer::Input {
                    c: cur.u32()? as usize,
                    h: cur.u32()? as usize,
                    w: cur.u32()? as usize,
                },
                1 => Layer::Conv {
                    input: cur.idx(idx)?,
                    out_c: cur.u32()? as usize,
                    k: cur.u32()? as usize,
                    stride: cur.u32()? as usize,
                    pad: cur.u32()? as usize,
                    relu: cur.u8()? != 0,
                    weights: cur.f32s()?,
                    bias: cur.f32s()?,
                },
                2 => Layer::MaxPool {
                    input: cur.idx(idx)?,
                    k: cur.u32()? as usize,
                    stride: cur.u32()? as usize,
                },
                3 => Layer::AvgPool {
                    input: cur.idx(idx)?,
                    k: cur.u32()? as usize,
                    stride: cur.u32()? as usize,
                },
                4 => {
                    let n = cur.u32()? as usize;
                    let mut inputs = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        inputs.push(cur.idx(idx)?);
                    }
                    Layer::Concat { inputs }
                }
                5 => Layer::Fc {
                    input: cur.idx(idx)?,
                    out_n: cur.u32()? as usize,
                    relu: cur.u8()? != 0,
                    weights: cur.f32s()?,
                    bias: cur.f32s()?,
                },
                6 => Layer::Softmax {
                    input: cur.idx(idx)?,
                },
                _ => return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE)),
            };
            layers.push(layer);
        }
        Ok(Network { name, layers })
    }
}

fn fetch(results: &[Option<Tensor>], idx: usize) -> NcResult<&Tensor> {
    results
        .get(idx)
        .and_then(|o| o.as_ref())
        .ok_or(NcError(MVNC_UNSUPPORTED_GRAPH_FILE))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, values: &[f32]) {
    put_u32(out, values.len() as u32);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> NcResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> NcResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> NcResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a layer index that must reference an earlier layer.
    fn idx(&mut self, current: usize) -> NcResult<usize> {
        let v = self.u32()? as usize;
        if v >= current {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        Ok(v)
    }

    fn str(&mut self) -> NcResult<String> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| NcError(MVNC_UNSUPPORTED_GRAPH_FILE))
    }

    fn f32s(&mut self) -> NcResult<Vec<f32>> {
        let len = self.u32()? as usize;
        if len > 64 << 20 {
            return Err(NcError(MVNC_UNSUPPORTED_GRAPH_FILE));
        }
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect())
    }
}

/// Builds an Inception-v3-like network.
///
/// The schedule mirrors Inception v3's structure — a convolutional stem,
/// `blocks` Inception modules (each with 1x1 / 3x3 / double-3x3 / pooled
/// branches joined by channel concatenation), global average pooling and a
/// fully connected classifier with softmax — at a reduced spatial/channel
/// scale so CPU inference stays tractable. Weights are seeded-random; the
/// Figure-5 NCS experiment measures remoting overhead, which depends on the
/// call/transfer profile, not on trained weights (see DESIGN.md).
pub fn inception_v3_like(input_hw: usize, blocks: usize, classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers = vec![Layer::Input {
        c: 3,
        h: input_hw,
        w: input_hw,
    }];
    let mut last = 0usize;
    let mut last_c = 3usize;

    let conv = |layers: &mut Vec<Layer>,
                rng: &mut StdRng,
                input: usize,
                in_c: usize,
                out_c: usize,
                k: usize,
                stride: usize,
                pad: usize|
     -> usize {
        let scale = (2.0 / (in_c * k * k) as f32).sqrt();
        let weights = (0..out_c * in_c * k * k)
            .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
            .collect();
        let bias = vec![0.01; out_c];
        layers.push(Layer::Conv {
            input,
            out_c,
            k,
            stride,
            pad,
            relu: true,
            weights,
            bias,
        });
        layers.len() - 1
    };

    // Stem: conv3x3/2, conv3x3, maxpool — Inception v3's reduced opening.
    last = conv(&mut layers, &mut rng, last, last_c, 8, 3, 2, 1);
    last_c = 8;
    last = conv(&mut layers, &mut rng, last, last_c, 16, 3, 1, 1);
    last_c = 16;
    layers.push(Layer::MaxPool {
        input: last,
        k: 2,
        stride: 2,
    });
    last = layers.len() - 1;

    // Inception modules.
    for _ in 0..blocks {
        let b1 = conv(&mut layers, &mut rng, last, last_c, 8, 1, 1, 0);
        let b2a = conv(&mut layers, &mut rng, last, last_c, 8, 1, 1, 0);
        let b2 = conv(&mut layers, &mut rng, b2a, 8, 12, 3, 1, 1);
        let b3a = conv(&mut layers, &mut rng, last, last_c, 8, 1, 1, 0);
        let b3b = conv(&mut layers, &mut rng, b3a, 8, 12, 3, 1, 1);
        let b3 = conv(&mut layers, &mut rng, b3b, 12, 12, 3, 1, 1);
        // Pool branch: our pooling has no padding, so the shape-preserving
        // stand-in is a 3x3/1/1 "pool projection" convolution.
        let b4 = conv(&mut layers, &mut rng, last, last_c, 8, 3, 1, 1);
        layers.push(Layer::Concat {
            inputs: vec![b1, b2, b3, b4],
        });
        last = layers.len() - 1;
        last_c = 8 + 12 + 12 + 8;
    }

    // Head: global average pool (approximated by one big window), FC,
    // softmax.
    let spatial = input_hw / 4; // after stem stride-2 conv + stride-2 pool
    layers.push(Layer::AvgPool {
        input: last,
        k: spatial,
        stride: spatial,
    });
    let pooled = layers.len() - 1;
    let in_n = last_c; // 1x1 spatial after global pool
    let scale = (2.0 / in_n as f32).sqrt();
    let weights = (0..classes * in_n)
        .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
        .collect();
    layers.push(Layer::Fc {
        input: pooled,
        out_n: classes,
        relu: false,
        weights,
        bias: vec![0.0; classes],
    });
    let fc = layers.len() - 1;
    layers.push(Layer::Softmax { input: fc });

    Network {
        name: format!("inception-v3-like-{input_hw}x{input_hw}"),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        Network {
            name: "tiny".into(),
            layers: vec![
                Layer::Input { c: 1, h: 4, w: 4 },
                Layer::Conv {
                    input: 0,
                    out_c: 2,
                    k: 3,
                    stride: 1,
                    pad: 1,
                    relu: true,
                    weights: vec![0.1; 2 * 9],
                    bias: vec![0.0, 0.5],
                },
                Layer::MaxPool {
                    input: 1,
                    k: 2,
                    stride: 2,
                },
                Layer::Fc {
                    input: 2,
                    out_n: 3,
                    relu: false,
                    weights: vec![0.05; 3 * 8],
                    bias: vec![0.0; 3],
                },
                Layer::Softmax { input: 3 },
            ],
        }
    }

    #[test]
    fn blob_round_trips() {
        let net = tiny_net();
        let blob = net.to_blob();
        let back = Network::from_blob(&blob).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let net = tiny_net();
        let mut blob = net.to_blob();
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(Network::from_blob(&bad).is_err());
        // Truncated.
        blob.truncate(blob.len() - 5);
        assert!(Network::from_blob(&blob).is_err());
        // Empty.
        assert!(Network::from_blob(&[]).is_err());
    }

    #[test]
    fn forward_produces_distribution() {
        let net = tiny_net();
        let input = Tensor::zeros(1, 4, 4);
        let out = net.forward(&input).unwrap();
        assert_eq!(out.len(), 3);
        let sum: f32 = out.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let net = tiny_net();
        assert!(net.forward(&Tensor::zeros(1, 5, 5)).is_err());
    }

    #[test]
    fn forward_reference_values() {
        // Single identity conv: output equals input.
        let net = Network {
            name: "id".into(),
            layers: vec![
                Layer::Input { c: 1, h: 2, w: 2 },
                Layer::Conv {
                    input: 0,
                    out_c: 1,
                    k: 1,
                    stride: 1,
                    pad: 0,
                    relu: false,
                    weights: vec![1.0],
                    bias: vec![0.0],
                },
            ],
        };
        let input = Tensor::from_data(1, 2, 2, vec![1.0, -2.0, 3.0, 4.0]).unwrap();
        assert_eq!(net.forward(&input).unwrap().data, input.data);
    }

    #[test]
    fn inception_like_builds_and_runs() {
        let net = inception_v3_like(16, 2, 10, 42);
        assert!(net.param_count() > 1000);
        let (c, h, w) = net.input_shape().unwrap();
        assert_eq!((c, h, w), (3, 16, 16));
        let input = Tensor::zeros(3, 16, 16);
        let out = net.forward(&input).unwrap();
        assert_eq!(out.len(), 10);
        let sum: f32 = out.data.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inception_blob_round_trips() {
        let net = inception_v3_like(16, 1, 4, 7);
        let blob = net.to_blob();
        let back = Network::from_blob(&blob).unwrap();
        assert_eq!(back.name, net.name);
        assert_eq!(back.param_count(), net.param_count());
    }

    #[test]
    fn same_seed_same_network() {
        let a = inception_v3_like(16, 1, 4, 99);
        let b = inception_v3_like(16, 1, 4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_index_out_of_range_rejected() {
        // A layer referencing a later layer must be rejected at decode.
        let net = tiny_net();
        let mut blob = net.to_blob();
        // Layer 1 (Conv) input index is right after its tag; patch it to 9.
        // Locate: magic(4) + version(4) + name(4+4) + count(4) + input-layer
        // (tag 1 + 12 bytes) + conv tag(1) → conv's input u32.
        let off = 4 + 4 + 8 + 4 + 13 + 1;
        blob[off..off + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(Network::from_blob(&blob).is_err());
    }
}
