//! Repo-level integration: the CAvA tooling pipeline — unmodified C
//! header → preliminary spec → refined spec → descriptor → generated
//! artifacts — plus property tests over the expression language that
//! underpins every buffer-size and sync-condition annotation.

use ava::cava;
use ava::core::specs;
use ava::spec::{self, LowerOptions, NoHeaders};
use proptest::prelude::*;

#[test]
fn preliminary_spec_from_raw_header_reparses_and_lowers() {
    // A header CAvA has never seen, using the size conventions from §3.
    let header_src = r#"
typedef int qat_status;
typedef struct _qat_session *qat_session;
qat_session qatOpenSession(unsigned int slot);
qat_status qatCompress(qat_session s, const void *src, unsigned long src_size,
                       void *dst, unsigned long dst_size);
qat_status qatCloseSession(qat_session s);
"#;
    let header = spec::cparse::parse_header(header_src, &NoHeaders).unwrap();
    let preliminary = cava::generate_preliminary(&header, "qat");
    // The preliminary spec is itself valid spec syntax; feed it back with
    // the typedefs prepended.
    let full = format!(
        "typedef int qat_status;\ntypedef struct _qat_session *qat_session;\n{preliminary}"
    );
    let desc = spec::compile_spec(&full, &NoHeaders, LowerOptions::default()).unwrap();
    assert_eq!(desc.api_name, "qat");
    assert_eq!(desc.functions.len(), 3);
    let f = desc.by_name("qatCompress").unwrap();
    // `src`/`src_size` and `dst`/`dst_size` paired by convention.
    let buffers = f
        .params
        .iter()
        .filter(|p| matches!(p.transfer, spec::Transfer::Buffer { .. }))
        .count();
    assert_eq!(buffers, 2);
}

#[test]
fn bundled_specs_generate_complete_artifacts() {
    for desc in [ava::core::opencl_descriptor(), ava::core::mvnc_descriptor()] {
        let stubs = cava::generate_guest_stubs(&desc);
        let dispatch = cava::generate_server_dispatch(&desc);
        let manifest = cava::generate_deploy_manifest(&desc);
        for func in &desc.functions {
            assert!(stubs.contains(&format!("\"{}\"", func.name)));
            assert!(dispatch.contains(&format!("\"{}\"", func.name)));
            assert!(manifest.contains(&func.name));
        }
        assert_eq!(stubs.matches('{').count(), stubs.matches('}').count());
    }
}

#[test]
fn opencl_function_count_matches_paper_claim() {
    let desc = ava::core::opencl_descriptor();
    // §5: "39 commonly used OpenCL functions"; our subset carries 42
    // (clSetKernelArg is split into three typed variants — see DESIGN.md).
    assert!(
        (39..=45).contains(&desc.functions.len()),
        "function count {} out of the expected band",
        desc.functions.len()
    );
}

#[test]
fn figure4_semantics_hold_end_to_end() {
    use ava::wire::Value;
    let desc = specs::opencl_descriptor(LowerOptions::default()).unwrap();
    let f = desc.by_name("clEnqueueReadBuffer").unwrap();
    // blocking_read == CL_TRUE → synchronous.
    let blocking_args = vec![
        Value::Handle(1),
        Value::Handle(2),
        Value::U32(1),
        Value::U64(0),
        Value::U64(64),
    ];
    let env = desc.env_for(f, &blocking_args);
    assert!(f.is_sync_for(&env, &desc.types).unwrap());
    // blocking_read == CL_FALSE → asynchronous per policy.
    let nonblocking_args = vec![
        Value::Handle(1),
        Value::Handle(2),
        Value::U32(0),
        Value::U64(0),
        Value::U64(64),
    ];
    let env = desc.env_for(f, &nonblocking_args);
    assert!(!f.is_sync_for(&env, &desc.types).unwrap());
}

proptest! {
    /// Any spec built from this template with random buffer sizes must
    /// verify client-side sizes exactly: the guest rejects every mismatch
    /// and accepts every match.
    #[test]
    fn buffer_size_expressions_enforced(count in 1usize..64, elem_pow in 0u32..4) {
        let elem_bytes = 1usize << elem_pow; // 1,2,4,8
        let ty = match elem_bytes {
            1 => "char",
            2 => "short",
            4 => "int",
            _ => "long",
        };
        let src = format!(
            "type(int) {{ success(0); }}\n\
             int f(const {ty} *data, unsigned long n) {{ parameter(data) {{ buffer(n); }} }}"
        );
        let desc = std::sync::Arc::new(
            spec::compile_spec(&src, &NoHeaders, LowerOptions::default()).unwrap()
        );
        let (guest_end, _server_end) =
            ava::transport::pair(ava::transport::TransportKind::InProcess,
                                 ava::transport::CostModel::free()).unwrap();
        let lib = ava::guest::GuestLibrary::new(
            desc, guest_end, ava::core::GuestConfig::default());
        use ava::wire::Value;
        // Wrong size must be rejected locally (no server attached; the
        // call would hang if it were forwarded, so rejection must happen
        // before any transport activity).
        let bad = lib.call("f", vec![
            Value::Bytes(vec![0u8; count * elem_bytes + 1].into()),
            Value::U64(count as u64),
        ]);
        prop_assert!(matches!(bad, Err(ava::guest::GuestError::BadArgument(_))));
    }

    /// The C declaration parser accepts every ordering of scalar parameter
    /// lists we can generate, and reports the right arity.
    #[test]
    fn cparser_handles_arbitrary_scalar_signatures(arity in 0usize..8) {
        let types = ["int", "unsigned int", "long", "float", "double", "char"];
        let params: Vec<String> = (0..arity)
            .map(|i| format!("{} p{i}", types[i % types.len()]))
            .collect();
        let src = format!("int f({});", if params.is_empty() {
            "void".to_string()
        } else {
            params.join(", ")
        });
        let header = spec::cparse::parse_header(&src, &NoHeaders).unwrap();
        prop_assert_eq!(header.proto("f").unwrap().params.len(), arity);
    }
}
