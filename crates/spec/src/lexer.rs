//! Tokenizer shared by the C-header parser and the specification parser.

use crate::error::{Loc, Result, SpecError, SpecErrorKind};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex or char), suffixes stripped.
    Int(i64),
    /// String literal, unescaped.
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Source location of the first character.
    pub loc: Loc,
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "+=", "-=", "*=",
    "/=", "(", ")", "{", "}", "[", "]", ";", ",", "*", "&", "+", "-", "/", "%", "<", ">", "=", "!",
    "?", ":", ".", "|", "^", "~", "#",
];

/// Tokenizes `src`. Comments must already have been stripped (the
/// preprocessor does this); stray `/*` here is an error.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! loc {
        () => {
            Loc { line, col }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            col += 1;
            i += 1;
            continue;
        }
        let start_loc = loc!();
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &src[start..i];
            col += (i - start) as u32;
            toks.push(Token {
                tok: Tok::Ident(text.to_string()),
                loc: start_loc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let value = if c == '0'
                && i + 1 < bytes.len()
                && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X')
            {
                i += 2;
                let hs = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                if i == hs {
                    return Err(SpecError::at(
                        start_loc,
                        SpecErrorKind::Lex("empty hex literal".into()),
                    ));
                }
                i64::from_str_radix(&src[hs..i], 16).map_err(|_| {
                    SpecError::at(
                        start_loc,
                        SpecErrorKind::Lex("hex literal out of range".into()),
                    )
                })?
            } else {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                src[start..i].parse::<i64>().map_err(|_| {
                    SpecError::at(
                        start_loc,
                        SpecErrorKind::Lex("integer literal out of range".into()),
                    )
                })?
            };
            // Swallow integer suffixes (u, U, l, L combinations).
            while i < bytes.len() && matches!(bytes[i], b'u' | b'U' | b'l' | b'L') {
                i += 1;
            }
            col += (i - start) as u32;
            toks.push(Token {
                tok: Tok::Int(value),
                loc: start_loc,
            });
            continue;
        }
        if c == '"' {
            let mut out = String::new();
            i += 1;
            col += 1;
            loop {
                if i >= bytes.len() {
                    return Err(SpecError::at(
                        start_loc,
                        SpecErrorKind::Lex("unterminated string literal".into()),
                    ));
                }
                let ch = bytes[i] as char;
                i += 1;
                col += 1;
                match ch {
                    '"' => break,
                    '\\' => {
                        if i >= bytes.len() {
                            return Err(SpecError::at(
                                start_loc,
                                SpecErrorKind::Lex("unterminated escape".into()),
                            ));
                        }
                        let esc = bytes[i] as char;
                        i += 1;
                        col += 1;
                        out.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '0' => '\0',
                            other => other,
                        });
                    }
                    '\n' => {
                        return Err(SpecError::at(
                            start_loc,
                            SpecErrorKind::Lex("newline in string literal".into()),
                        ))
                    }
                    other => out.push(other),
                }
            }
            toks.push(Token {
                tok: Tok::Str(out),
                loc: start_loc,
            });
            continue;
        }
        // Punctuation: maximal munch against the table.
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                i += p.len();
                col += p.len() as u32;
                toks.push(Token {
                    tok: Tok::Punct(p),
                    loc: start_loc,
                });
            }
            None => {
                return Err(SpecError::at(
                    start_loc,
                    SpecErrorKind::Lex(format!("unexpected character `{c}`")),
                ))
            }
        }
    }
    Ok(toks)
}

/// A cursor over a token stream with the usual parser conveniences.
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<Token>,
    pos: usize,
}

impl Cursor {
    /// Wraps a token vector.
    pub fn new(toks: Vec<Token>) -> Self {
        Cursor { toks, pos: 0 }
    }

    /// Location of the next token (or end of input).
    pub fn loc(&self) -> Loc {
        self.toks.get(self.pos).map(|t| t.loc).unwrap_or(Loc {
            line: u32::MAX,
            col: 0,
        })
    }

    /// Peeks the next token without consuming it.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// Peeks `n` tokens ahead (0 = next).
    pub fn peek_n(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    /// Consumes and returns the next token. Named like
    /// `Iterator::next` on purpose — the cursor is an iterator in
    /// spirit, but implementing the trait would forbid the lookahead
    /// (`peek_n`) borrows the parser leans on.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True when all tokens have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Number of tokens consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Consumes the next token if it equals the given punctuation.
    pub fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the next token if it is the given identifier/keyword.
    pub fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires the given punctuation next, or errors.
    pub fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected `{p}`, found {}", self.describe())))
        }
    }

    /// Requires an identifier next and returns it.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here(format!("expected identifier, found {}", self.describe()))),
        }
    }

    /// Requires an integer literal next and returns it.
    pub fn expect_int(&mut self) -> Result<i64> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err_here(format!("expected integer, found {}", self.describe()))),
        }
    }

    /// Human description of the next token, for error messages.
    pub fn describe(&self) -> String {
        match self.peek() {
            Some(Tok::Ident(s)) => format!("`{s}`"),
            Some(Tok::Int(v)) => format!("`{v}`"),
            Some(Tok::Str(_)) => "string literal".into(),
            Some(Tok::Punct(p)) => format!("`{p}`"),
            None => "end of input".into(),
        }
    }

    /// Builds a parse error at the current position.
    pub fn err_here(&self, msg: String) -> SpecError {
        SpecError::at(self.loc(), SpecErrorKind::Parse(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_c_prototype() {
        let toks = lex("cl_int clFinish(cl_command_queue q);").unwrap();
        assert_eq!(toks.len(), 7);
        assert_eq!(toks[0].tok, Tok::Ident("cl_int".into()));
        assert_eq!(toks[2].tok, Tok::Punct("("));
        assert_eq!(toks[6].tok, Tok::Punct(";"));
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex("0 42 0x10 0xFFU 123L").unwrap();
        let vals: Vec<i64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![0, 42, 16, 255, 123]);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex(r#""hello\nworld" "a\"b""#).unwrap();
        assert_eq!(toks[0].tok, Tok::Str("hello\nworld".into()));
        assert_eq!(toks[1].tok, Tok::Str("a\"b".into()));
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = lex("a==b !=c <= >= && || << >>").unwrap();
        let puncts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">=", "&&", "||", "<<", ">>"]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].loc.line, 1);
        assert_eq!(toks[1].loc.line, 2);
        assert_eq!(toks[2].loc.line, 3);
        assert_eq!(toks[2].loc.col, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("int a @ b;").is_err());
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(idents("_cl_mem __x a_b_c"), vec!["_cl_mem", "__x", "a_b_c"]);
    }

    #[test]
    fn cursor_basics() {
        let mut cur = Cursor::new(lex("foo ( 7 )").unwrap());
        assert_eq!(cur.expect_ident().unwrap(), "foo");
        assert!(cur.eat_punct("("));
        assert_eq!(cur.expect_int().unwrap(), 7);
        assert!(cur.expect_punct(")").is_ok());
        assert!(cur.at_end());
        assert!(cur.expect_ident().is_err());
    }
}
