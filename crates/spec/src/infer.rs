//! Preliminary-specification inference (§3 of the paper).
//!
//! CAvA first creates a preliminary specification from the unmodified
//! header: argument types carry most of the information (`const T*` is an
//! input buffer, `T*` an output, pointer-to-incomplete-struct an opaque
//! handle), and naming conventions supply buffer sizes (for example "the
//! size parameter for every pointer argument has the same name with `_size`
//! appended"). Whatever cannot be inferred is flagged with a `note(...)`
//! asking the developer to refine the spec — exactly the workflow in
//! Figure 2.

use crate::ast::{DirectionSpec, ElementSpec, FunctionSpec, ParamSpec};
use crate::cparse::{Header, Prototype};
use crate::ctypes::{CType, TypeTable};
use crate::expr::Expr;

/// Size-naming conventions tried, in order, for a pointer parameter `p`.
/// `{}` is replaced by the parameter name.
const SIZE_CONVENTIONS: &[&str] = &["{}_size", "num_{}", "{}_count", "{}_len", "n_{}"];

/// Returns the name of a sibling scalar parameter that, by convention,
/// carries the element count of pointer parameter `pname`.
pub fn size_sibling(proto: &Prototype, types: &TypeTable, pname: &str) -> Option<String> {
    for pattern in SIZE_CONVENTIONS {
        let candidate = pattern.replace("{}", pname);
        let found = proto.params.iter().any(|p| {
            p.name == candidate
                && matches!(
                    types.resolve(&p.ty),
                    Ok(CType::Int { .. }) | Ok(CType::Bool) | Ok(CType::Enum(_))
                )
        });
        if found {
            return Some(candidate);
        }
    }
    None
}

/// Infers a [`FunctionSpec`] for a prototype with no explicit annotations.
///
/// When `conventions` is false only type-derived facts are used (the
/// "annotations describing the conventions used in that header" knob from
/// §3 is off).
pub fn infer_function_spec(
    proto: &Prototype,
    types: &TypeTable,
    conventions: bool,
) -> FunctionSpec {
    let mut fspec = FunctionSpec::bare(proto.clone());
    for cparam in &proto.params {
        let resolved = match types.resolve(&cparam.ty) {
            Ok(t) => t.clone(),
            Err(_) => continue,
        };
        // Handles and scalars need no annotations.
        if types.is_opaque_handle(&cparam.ty) {
            continue;
        }
        if let CType::Pointer {
            pointee,
            const_pointee,
        } = resolved
        {
            let is_const = const_pointee || cparam.const_qualified;
            let pointee_resolved = types.resolve(&pointee).cloned().unwrap_or(CType::Void);
            let is_char = matches!(pointee_resolved, CType::Int { bits: 8, .. });
            if is_char && is_const {
                // `const char*` defaults to a string; nothing to add.
                continue;
            }
            let mut pspec = ParamSpec::default();
            if let Some(sibling) = conventions
                .then(|| size_sibling(proto, types, &cparam.name))
                .flatten()
            {
                pspec.buffer = Some(Expr::Ident(sibling));
                pspec.direction = Some(if is_const {
                    DirectionSpec::In
                } else {
                    DirectionSpec::Out
                });
            } else if !is_const {
                // Bare non-const pointer: single output element. If the
                // element is itself an API object, assume fresh allocation.
                let elem_is_handle = types.is_opaque_handle(&pointee);
                pspec.direction = Some(DirectionSpec::Out);
                pspec.element = Some(ElementSpec {
                    allocates: elem_is_handle,
                    deallocates: false,
                });
            } else {
                // Const pointer with unknown size: needs refinement.
                fspec.notes.push(format!(
                    "verify: input pointer `{}` has no inferable size; add \
                     `parameter({}) {{ buffer(...); }}`",
                    cparam.name, cparam.name
                ));
                continue;
            }
            fspec.params.insert(cparam.name.clone(), pspec);
        }
    }
    fspec
}

/// Renders a preliminary specification for every prototype in `header`,
/// producing text in the Figure-4 format that parses back through
/// [`crate::parse::parse_spec`].
pub fn generate_preliminary_spec(header: &Header, api_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("api(\"{api_name}\", 1);\n\n"));
    for proto in &header.protos {
        let fspec = infer_function_spec(proto, &header.types, true);
        out.push_str(&render_function_spec(&fspec, &header.types));
        out.push('\n');
    }
    out
}

/// Renders one function spec back to specification syntax.
pub fn render_function_spec(fspec: &FunctionSpec, types: &TypeTable) -> String {
    let proto = &fspec.proto;
    let mut out = String::new();
    out.push_str(&render_ctype(&proto.ret));
    out.push(' ');
    out.push_str(&proto.name);
    out.push('(');
    for (i, p) in proto.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&render_ctype(&p.ty));
        out.push(' ');
        out.push_str(&p.name);
    }
    out.push_str(") {\n");
    match &fspec.sync {
        crate::ast::SyncSpec::Default => {}
        crate::ast::SyncSpec::Sync => out.push_str("  sync;\n"),
        crate::ast::SyncSpec::Async => out.push_str("  async;\n"),
        crate::ast::SyncSpec::SyncIf(cond) => {
            out.push_str(&format!("  if ({cond}) sync; else async;\n"))
        }
    }
    for (pname, pspec) in &fspec.params {
        let mut props = Vec::new();
        match pspec.direction {
            Some(DirectionSpec::In) => props.push("in;".to_string()),
            Some(DirectionSpec::Out) => props.push("out;".to_string()),
            Some(DirectionSpec::InOut) => props.push("inout;".to_string()),
            None => {}
        }
        if let Some(buf) = &pspec.buffer {
            props.push(format!("buffer({buf});"));
        }
        if let Some(elem) = &pspec.element {
            let mut inner = String::new();
            if elem.allocates {
                inner.push_str(" allocates;");
            }
            if elem.deallocates {
                inner.push_str(" deallocates;");
            }
            props.push(format!("element {{{inner} }}"));
        }
        if pspec.deallocates {
            props.push("deallocates;".to_string());
        }
        if pspec.handle {
            props.push("handle;".to_string());
        }
        if pspec.nullable {
            props.push("nullable;".to_string());
        }
        if pspec.string {
            props.push("string;".to_string());
        }
        if pspec.userdata {
            props.push("userdata;".to_string());
        }
        if !props.is_empty() {
            out.push_str(&format!("  parameter({pname}) {{ {} }}\n", props.join(" ")));
        }
    }
    for (rname, amount) in &fspec.resources {
        out.push_str(&format!("  resource({rname}, {amount});\n"));
    }
    if let Some(cat) = fspec.record {
        let name = match cat {
            crate::ast::RecordCategory::Config => "config",
            crate::ast::RecordCategory::Alloc => "alloc",
            crate::ast::RecordCategory::Dealloc => "dealloc",
            crate::ast::RecordCategory::Modify => "modify",
        };
        out.push_str(&format!("  record({name});\n"));
    }
    for note in &fspec.notes {
        out.push_str(&format!("  note(\"{}\");\n", note.replace('"', "'")));
    }
    let _ = types;
    out.push_str("}\n");
    out
}

/// Renders a C type back to source syntax.
pub fn render_ctype(ty: &CType) -> String {
    match ty {
        CType::Void => "void".into(),
        CType::Bool => "_Bool".into(),
        CType::Int { signed, bits } => match (signed, bits) {
            (true, 8) => "char".into(),
            (false, 8) => "unsigned char".into(),
            (true, 16) => "short".into(),
            (false, 16) => "unsigned short".into(),
            (true, 32) => "int".into(),
            (false, 32) => "unsigned int".into(),
            (true, _) => "long".into(),
            (false, _) => "unsigned long".into(),
        },
        CType::Float { bits: 32 } => "float".into(),
        CType::Float { .. } => "double".into(),
        CType::Named(n) => n.clone(),
        CType::Pointer {
            pointee,
            const_pointee,
        } => {
            if *const_pointee {
                format!("const {} *", render_ctype(pointee))
            } else {
                format!("{} *", render_ctype(pointee))
            }
        }
        CType::Struct(tag) => format!("struct {tag}"),
        CType::Union(tag) => format!("union {tag}"),
        CType::Enum(tag) => format!("enum {tag}"),
        CType::Array { elem, len } => format!("{}[{len}]", render_ctype(elem)),
        CType::FnPtr => "void *".into(), // opaque in re-rendered specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cparse::parse_header;
    use crate::preprocess::NoHeaders;

    fn header(src: &str) -> Header {
        parse_header(src, &NoHeaders).unwrap()
    }

    #[test]
    fn size_suffix_convention_matches() {
        let h = header("int f(const float *data, unsigned long data_size);");
        let p = h.proto("f").unwrap();
        assert_eq!(size_sibling(p, &h.types, "data"), Some("data_size".into()));
    }

    #[test]
    fn num_prefix_convention_matches() {
        let h = header("typedef struct _e *ev;\nint f(unsigned int num_events, const ev *events);");
        let p = h.proto("f").unwrap();
        assert_eq!(
            size_sibling(p, &h.types, "events"),
            Some("num_events".into())
        );
    }

    #[test]
    fn non_scalar_sibling_is_not_a_size() {
        let h = header("int f(const float *data, const char *data_size);");
        let p = h.proto("f").unwrap();
        assert_eq!(size_sibling(p, &h.types, "data"), None);
    }

    #[test]
    fn infers_out_element_for_bare_pointer() {
        let h = header("typedef struct _d *dev;\nint get_dev(dev *out);");
        let f = infer_function_spec(h.proto("get_dev").unwrap(), &h.types, true);
        let p = &f.params["out"];
        assert_eq!(p.direction, Some(DirectionSpec::Out));
        assert!(p.element.as_ref().unwrap().allocates);
    }

    #[test]
    fn infers_nothing_for_scalars_and_handles() {
        let h = header("typedef struct _m *mem;\nint f(mem m, unsigned int flags);");
        let f = infer_function_spec(h.proto("f").unwrap(), &h.types, true);
        assert!(f.params.is_empty());
        assert!(f.notes.is_empty());
    }

    #[test]
    fn unresolvable_input_pointer_gets_note() {
        let h = header("int f(const float *mystery);");
        let f = infer_function_spec(h.proto("f").unwrap(), &h.types, true);
        assert_eq!(f.notes.len(), 1);
        assert!(f.notes[0].contains("mystery"));
    }

    #[test]
    fn conventions_off_produces_note_instead() {
        let h = header("int f(const float *data, unsigned long data_size);");
        let f = infer_function_spec(h.proto("f").unwrap(), &h.types, false);
        assert!(!f.params.contains_key("data"));
        assert_eq!(f.notes.len(), 1);
    }

    #[test]
    fn preliminary_spec_round_trips_through_parser() {
        let h = header(
            "typedef struct _m *mem;\n\
             typedef struct _q *queue;\n\
             int enqueue_write(queue q, mem m, unsigned long off, unsigned long size, const void *src, unsigned long src_size);\n\
             mem create(unsigned long size);\n\
             int destroy(mem m);",
        );
        let text = generate_preliminary_spec(&h, "toy");
        // The generated text must itself be a valid spec. Supply the type
        // declarations alongside.
        let full = format!("typedef struct _m *mem; typedef struct _q *queue;\n{text}");
        let spec = crate::parse::parse_spec(&full, &NoHeaders).unwrap();
        assert_eq!(spec.name, "toy");
        assert_eq!(spec.functions.len(), 3);
        let f = spec.function("enqueue_write").unwrap();
        assert_eq!(
            f.param("src").buffer.as_ref().map(|e| e.to_string()),
            Some("src_size".to_string())
        );
    }

    #[test]
    fn render_ctype_spot_checks() {
        assert_eq!(render_ctype(&CType::const_ptr(CType::Void)), "const void *");
        assert_eq!(
            render_ctype(&CType::ptr(CType::Named("cl_event".into()))),
            "cl_event *"
        );
        assert_eq!(
            render_ctype(&CType::Int {
                signed: false,
                bits: 64
            }),
            "unsigned long"
        );
    }
}
