//! Per-endpoint traffic counters.
//!
//! The router uses these for bandwidth accounting and the benchmarks use
//! them to attribute overhead to call frequency vs. data movement.
//!
//! Counters are [`ava_telemetry::Counter`]s, so an endpoint's cell can be
//! registered into a shared [`ava_telemetry::Registry`]
//! ([`StatsCell::register_into`]): the registry and [`StatsCell::snapshot`]
//! then read the same atomics, and `Registry::take()` resets both views.

use std::sync::Arc;

use ava_telemetry::{Counter, Registry};

/// Snapshot of an endpoint's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages sent from this endpoint.
    pub messages_sent: u64,
    /// Messages received by this endpoint.
    pub messages_received: u64,
    /// Payload bytes (buffer/string contents) sent.
    pub payload_bytes_sent: u64,
    /// Payload bytes received.
    pub payload_bytes_received: u64,
    /// Encoded frame bytes sent (headers + encoding overhead included);
    /// zero on transports that do not serialize.
    pub frame_bytes_sent: u64,
    /// Encoded frame bytes received; zero on transports that do not
    /// serialize.
    pub frame_bytes_received: u64,
}

/// Shared mutable counters behind an endpoint.
#[derive(Debug, Default)]
pub struct StatsCell {
    messages_sent: Counter,
    messages_received: Counter,
    payload_bytes_sent: Counter,
    payload_bytes_received: Counter,
    frame_bytes_sent: Counter,
    frame_bytes_received: Counter,
}

impl StatsCell {
    /// Creates a zeroed, shareable counter cell.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records a sent message.
    pub fn on_send(&self, payload_bytes: usize, frame_bytes: usize) {
        self.messages_sent.inc();
        self.payload_bytes_sent.add(payload_bytes as u64);
        self.frame_bytes_sent.add(frame_bytes as u64);
    }

    /// Records a received message. `frame_bytes` is the encoded frame
    /// length (zero for transports that hand over structured messages).
    pub fn on_recv(&self, payload_bytes: usize, frame_bytes: usize) {
        self.messages_received.inc();
        self.payload_bytes_received.add(payload_bytes as u64);
        self.frame_bytes_received.add(frame_bytes as u64);
    }

    /// Registers this cell's counters into `registry` under
    /// `transport.<prefix>.*`; both views share storage afterwards.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        let reg = |name: &str, c: &Counter| {
            registry.register_counter(&format!("transport.{prefix}.{name}"), c);
        };
        reg("messages_sent", &self.messages_sent);
        reg("messages_received", &self.messages_received);
        reg("payload_bytes_sent", &self.payload_bytes_sent);
        reg("payload_bytes_received", &self.payload_bytes_received);
        reg("frame_bytes_sent", &self.frame_bytes_sent);
        reg("frame_bytes_received", &self.frame_bytes_received);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            messages_sent: self.messages_sent.get(),
            messages_received: self.messages_received.get(),
            payload_bytes_sent: self.payload_bytes_sent.get(),
            payload_bytes_received: self.payload_bytes_received.get(),
            frame_bytes_sent: self.frame_bytes_sent.get(),
            frame_bytes_received: self.frame_bytes_received.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let cell = StatsCell::new();
        cell.on_send(100, 120);
        cell.on_send(50, 66);
        cell.on_recv(7, 19);
        let s = cell.snapshot();
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_received, 1);
        assert_eq!(s.payload_bytes_sent, 150);
        assert_eq!(s.payload_bytes_received, 7);
        assert_eq!(s.frame_bytes_sent, 186);
        assert_eq!(s.frame_bytes_received, 19);
    }

    #[test]
    fn registered_cell_shares_storage_with_registry() {
        let registry = Registry::new();
        let cell = StatsCell::new();
        cell.register_into(&registry, "guest");
        cell.on_send(10, 14);
        cell.on_recv(5, 9);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["transport.guest.messages_sent"], 1);
        assert_eq!(snap.counters["transport.guest.payload_bytes_sent"], 10);
        assert_eq!(snap.counters["transport.guest.frame_bytes_received"], 9);
        // take() resets the shared storage: the cell's snapshot reads zero.
        registry.take();
        assert_eq!(cell.snapshot(), TransportStats::default());
    }
}
