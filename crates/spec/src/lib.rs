//! The CAvA API specification language (§3–4.2 of the AvA paper).
//!
//! This crate turns an annotated API specification — an unmodified C header
//! plus declarative annotations in the Figure-4 format — into a runtime
//! [`ApiDescriptor`] that drives every API-specific decision in the AvA
//! stack: argument marshaling in the guest library, policy evaluation in
//! the hypervisor router, and dispatch/object-tracking in the API server.
//!
//! Pipeline:
//!
//! 1. [`preprocess`]: comments, `#include`, `#define` constants, guards;
//! 2. [`cparse`]: C declarations — typedefs, structs, enums, prototypes;
//! 3. [`parse::parse_spec`]: the annotation language (sync/async
//!    conditions, buffer sizes, handle rules, record categories, resource
//!    estimates);
//! 4. [`infer`]: preliminary-spec generation for everything the developer
//!    did not annotate, using type information and naming conventions;
//! 5. [`descriptor::lower`]: validation and lowering to [`ApiDescriptor`].

pub mod ast;
pub mod cparse;
pub mod ctypes;
pub mod descriptor;
pub mod error;
pub mod expr;
pub mod infer;
pub mod lexer;
pub mod parse;
pub mod preprocess;

pub use ast::{ApiSpec, RecordCategory, SyncSpec};
pub use cparse::{Header, Prototype};
pub use ctypes::{CType, TypeTable};
pub use descriptor::{
    ApiDescriptor, Direction, ElemKind, FunctionDesc, LowerOptions, ParamDesc, ResourceEstimate,
    RetDesc, ScalarKind, SyncPolicy, Transfer,
};
pub use error::{Loc, Result, SpecError, SpecErrorKind};
pub use expr::{EvalEnv, Expr};
pub use infer::generate_preliminary_spec;
pub use parse::parse_spec;
pub use preprocess::{HeaderResolver, MapResolver, NoHeaders};

/// Parses and lowers a specification in one step.
pub fn compile_spec(
    src: &str,
    resolver: &dyn HeaderResolver,
    opts: LowerOptions,
) -> Result<ApiDescriptor> {
    let spec = parse_spec(src, resolver)?;
    descriptor::lower(&spec, opts)
}
