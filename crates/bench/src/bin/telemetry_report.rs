//! End-to-end telemetry demonstration: runs a Rodinia-style OpenCL
//! workload through the full AvA stack with a registry attached, then
//! prints the per-function latency table, the cross-tier span breakdown
//! (guest-marshal / transport / router-queue / server-execute), and the
//! recovery / pool / SLO counters, for both the in-process and the TCP
//! transport.
//!
//! The segment sums telescope: for each completed sync span they add up
//! exactly to its guest-observed end-to-end latency, so the "sum /
//! total" column printed at the bottom is a built-in self-check (it must
//! be 1.000 up to floating-point rounding).
//!
//! Usage: `telemetry_report [--json] [--smoke] [--trace FILE] [--prom FILE]`
//!
//! * `--smoke` replaces the two-transport sweep with a single pooled run
//!   that deliberately exercises every flight-recorder event class:
//!   dropped replies (guest retries), an API-server crash (respawn +
//!   journal replay), an explicit live migration (rebalance), and an
//!   unmeetable SLO (violation events + burn gauges). CI uses it to
//!   assert the exporters produce non-trivial artifacts.
//! * `--trace FILE` writes Chrome-trace/Perfetto JSON of the final run.
//! * `--prom FILE` writes Prometheus text exposition of the final run.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use ava_bench::row;
use ava_core::{
    opencl_pool_stack, opencl_stack_with, GuestConfig, OpenClClient, PlacementPolicy, StackConfig,
};
use ava_hypervisor::VmPolicy;
use ava_spec::LowerOptions;
use ava_telemetry::{export, Registry, SloConfig, Snapshot};
use ava_transport::{CostModel, FaultAction, FaultPlan, TransportKind};
use ava_wire::Message;
use ava_workloads::{opencl_workloads, silo_with_all_kernels, Scale};

fn print_report(label: &str, snapshot: &Snapshot) {
    println!("== {label} ==");
    println!();

    // Per-function latency table from the guest-side histograms.
    let widths = [34, 8, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "function".into(),
                "count".into(),
                "p50_us".into(),
                "p95_us".into(),
                "p99_us".into(),
                "max_us".into(),
            ],
            &widths
        )
    );
    for (name, hist) in &snapshot.histograms {
        let Some(fn_name) = name.strip_prefix("guest.call.") else {
            continue;
        };
        let us = |n: u64| n as f64 / 1e3;
        println!(
            "{}",
            row(
                &[
                    fn_name.into(),
                    format!("{}", hist.count),
                    format!("{:.1}", us(hist.percentile(0.50))),
                    format!("{:.1}", us(hist.percentile(0.95))),
                    format!("{:.1}", us(hist.percentile(0.99))),
                    format!("{:.1}", us(hist.max)),
                ],
                &widths
            )
        );
    }
    println!();

    // Cross-tier breakdown over all completed sync spans.
    println!("cross-tier breakdown (mean over completed sync spans):");
    let breakdown = snapshot.segment_breakdown();
    let mut segment_sum = 0.0;
    for (segment, mean_ns) in &breakdown {
        segment_sum += mean_ns;
        println!("  {segment:<16} {:>10.1} us", mean_ns / 1e3);
    }
    let total = snapshot.span_total_mean().unwrap_or(0.0);
    println!("  {:<16} {:>10.1} us", "e2e total", total / 1e3);
    if total > 0.0 {
        println!("  sum / total      {:>10.3}", segment_sum / total);
    }
    println!();

    // Recovery, pool and SLO state. Respawn/replay counters exist on every
    // telemetry-attached stack (zero on a fault-free run); slot gauges and
    // burn gauges appear only on pooled / SLO-configured stacks.
    let mut lines = Vec::new();
    for (name, v) in &snapshot.counters {
        if name.starts_with("recovery.") {
            lines.push(format!("  {name:<28} {v}"));
        }
    }
    for (name, v) in &snapshot.gauges {
        if name.starts_with("pool.slot") || name.starts_with("slo.") {
            lines.push(format!("  {name:<28} {v:.1}"));
        }
    }
    if !lines.is_empty() {
        println!("recovery / pool / slo:");
        for line in lines {
            println!("{line}");
        }
        println!();
    }

    // Flight-recorder summary: what happened, by event class.
    println!(
        "flight recorder: {} events retained, {} overwritten, {} spans dropped",
        snapshot.events.len(),
        snapshot.events_overwritten,
        snapshot.spans_dropped
    );
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    for event in &snapshot.events {
        *kinds.entry(event.kind.name()).or_default() += 1;
    }
    for (kind, n) in kinds {
        println!("  {kind:<20} {n}");
    }
    println!();
}

fn run_with_transport(kind: TransportKind, json: bool) -> Registry {
    let label = match kind {
        TransportKind::InProcess => "transport: inproc",
        TransportKind::SharedMemory => "transport: shmem",
        TransportKind::Tcp => "transport: tcp",
    };
    let scale = Scale::Test;
    let config = StackConfig {
        transport: kind,
        cost_model: CostModel::free(),
        ..StackConfig::default()
    };
    let stack = opencl_stack_with(
        silo_with_all_kernels(scale),
        config,
        LowerOptions::default(),
    )
    .expect("stack builds");
    let registry = Registry::new();
    stack
        .set_telemetry(registry.clone())
        .expect("telemetry attaches");
    let (_vm, lib) = stack.attach_vm(VmPolicy::default()).expect("vm attaches");
    let client = OpenClClient::new(lib);

    for wl in opencl_workloads(scale) {
        wl.run(&client).expect("workload runs");
    }

    let snapshot = registry.snapshot();
    if json {
        println!("{}", snapshot.render_json());
    } else {
        print_report(label, &snapshot);
    }
    registry
}

/// A pooled run that deterministically drives every recorder event class:
/// two VMs packed onto slot 0, dropped replies on VM A (retries), a crash
/// of VM B's API server (respawn + journal replay + cache-epoch bump), an
/// explicit migration of VM B (rebalance + placement), and a 1 ns p99
/// target no workload can meet (SLO violations + burn gauges).
fn run_smoke(json: bool) -> Registry {
    let scale = Scale::Test;
    let config = StackConfig {
        transport: TransportKind::InProcess,
        cost_model: CostModel::free(),
        placement: PlacementPolicy::Packed,
        guest: GuestConfig {
            call_deadline: Some(Duration::from_millis(50)),
            max_retries: 5,
            retry_backoff: Duration::from_millis(1),
            payload_cache_entries: 32,
            ..GuestConfig::default()
        },
        supervision_interval: Duration::from_millis(2),
        rebalance_interval: Duration::from_millis(25),
        slo: Some(SloConfig::p99(1)),
        ..StackConfig::default()
    };
    let silos = vec![silo_with_all_kernels(scale), silo_with_all_kernels(scale)];
    let stack = opencl_pool_stack(silos, config).expect("pool stack builds");
    let registry = Registry::new();
    stack
        .set_telemetry(registry.clone())
        .expect("telemetry attaches");

    // VM A: every reply on a `seq % 20 == 7` frame is dropped, forcing the
    // guest to retry that call (the server's at-most-once cache absorbs
    // the resend) — same schedule as the chaos acceptance test.
    let rx_plan = FaultPlan::quiet(11).rule(
        |seq, msg| matches!(msg, Message::Reply(_)) && seq % 20 == 7,
        FaultAction::Drop,
    );
    let (_vm_a, lib_a) = stack
        .attach_vm_with_faults(VmPolicy::default(), None, Some(rx_plan))
        .expect("vm A attaches");
    let (vm_b, lib_b) = stack.attach_vm(VmPolicy::default()).expect("vm B attaches");
    let client_a = OpenClClient::new(lib_a);
    let client_b = OpenClClient::new(lib_b);

    for wl in opencl_workloads(scale) {
        wl.run(&client_a).expect("workload runs on vm A");
    }
    let first = |client: &OpenClClient| {
        let mut wls = opencl_workloads(scale);
        wls.truncate(1);
        for wl in wls {
            wl.run(client).expect("workload runs on vm B");
        }
    };
    first(&client_b);

    // Kill B's API server; the supervisor replays its journal.
    stack.crash_vm_server(vm_b).expect("crash injects");
    let deadline = Instant::now() + Duration::from_secs(10);
    while stack.recovery_stats().respawns == 0 {
        assert!(
            Instant::now() < deadline,
            "supervisor never respawned the crashed server"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Post-crash traffic proves the replayed server works and re-warms the
    // payload caches (the respawned mirror starts cold, so elided sends
    // NACK with CacheMiss first).
    first(&client_b);

    // Explicit live migration to the other slot: rebalance + placement
    // events on the pool track.
    let src = stack.vm_slot(vm_b).expect("vm B is pooled");
    stack
        .rebalance_vm(vm_b, 1 - src)
        .expect("rebalance succeeds");

    // Let the supervisor evaluate at least one SLO window (the 1 ns p99
    // target is unmeetable, so violations and burn gauges appear).
    let deadline = Instant::now() + Duration::from_secs(10);
    while stack.slo_violations().is_empty() {
        assert!(
            Instant::now() < deadline,
            "SLO monitor never flagged the unmeetable p99 target"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let snapshot = registry.snapshot();
    if json {
        println!("{}", snapshot.render_json());
    } else {
        print_report("smoke: pooled, faults + crash + migration", &snapshot);
    }
    registry
}

struct Args {
    json: bool,
    smoke: bool,
    trace: Option<String>,
    prom: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        json: false,
        smoke: false,
        trace: None,
        prom: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--smoke" => args.smoke = true,
            "--trace" => args.trace = Some(it.next().expect("--trace requires a file path")),
            "--prom" => args.prom = Some(it.next().expect("--prom requires a file path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: telemetry_report [--json] [--smoke] [--trace FILE] [--prom FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let registry = if args.smoke {
        run_smoke(args.json)
    } else {
        if !args.json {
            println!("# End-to-end telemetry report");
            println!(
                "# Rodinia-style OpenCL suite, per-call spans across guest -> router -> server"
            );
            println!();
        }
        let mut last = None;
        for kind in [TransportKind::InProcess, TransportKind::Tcp] {
            last = Some(run_with_transport(kind, args.json));
        }
        last.expect("at least one transport ran")
    };

    // Artifact exports come from the final run's registry (the smoke run,
    // or the TCP sweep). Status goes to stderr so `--json` stdout stays a
    // single parseable document.
    let snapshot = registry.snapshot();
    if let Some(path) = &args.trace {
        std::fs::write(path, export::trace_json(&snapshot)).expect("trace file writes");
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &args.prom {
        std::fs::write(path, export::prometheus(&snapshot)).expect("prometheus file writes");
        eprintln!("wrote Prometheus exposition to {path}");
    }
}
