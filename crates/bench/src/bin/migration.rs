//! Extension experiment Ext-M: VM migration by record-and-replay (§4.3):
//! suspend invocations, synthesize copies of extant device buffers, free
//! device resources, replay on the target, restore buffers, resume.

use std::time::Instant;

use ava_core::{opencl_stack, OpenClClient, OpenClHandler, StackConfig};
use ava_hypervisor::VmPolicy;
use ava_transport::{CostModel, TransportKind};
use ava_workloads::{full_registry, Scale};
use simcl::types::*;
use simcl::{ClApi, SimCl};

fn main() {
    let buffers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let buf_mb: usize = 4;

    println!("# VM migration cost (Ext-M, §4.3)");
    println!(
        "# guest state: context + queue + program + kernel + {buffers} x {buf_mb} MiB buffers"
    );
    println!();

    let source_cl = SimCl::with_devices_and_registry(
        vec![simcl::DeviceConfig::default()],
        full_registry(Scale::Bench),
    );
    let target_cl = SimCl::with_devices_and_registry(
        vec![simcl::DeviceConfig::default()],
        full_registry(Scale::Bench),
    );

    let stack = opencl_stack(
        source_cl,
        StackConfig {
            transport: TransportKind::SharedMemory,
            cost_model: CostModel::paravirtual(),
            ..StackConfig::default()
        },
    )
    .unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);

    // Build guest state.
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let program = client
        .create_program_with_source(ctx, simcl::kernels::builtins::SOURCE)
        .unwrap();
    client.build_program(program, "").unwrap();
    let kernel = client.create_kernel(program, "fill").unwrap();
    let payload = vec![0x5Au8; buf_mb << 20];
    let mut bufs = Vec::new();
    for _ in 0..buffers {
        bufs.push(
            client
                .create_buffer(ctx, MemFlags::read_write(), payload.len(), Some(&payload))
                .unwrap(),
        );
    }
    client.finish(queue).unwrap();

    // Migrate.
    let tc = target_cl.clone();
    let start = Instant::now();
    let image = stack
        .migrate_vm(vm, move || Box::new(OpenClHandler::new(tc)))
        .unwrap();
    let total_ms = start.elapsed().as_secs_f64() * 1e3;

    let image_bytes: usize = image.buffers.iter().map(|(_, d)| d.len()).sum();
    println!("records replayed:      {}", image.records.len());
    println!(
        "buffer payloads moved: {} ({:.1} MiB)",
        image.buffers.len(),
        image_bytes as f64 / (1 << 20) as f64
    );
    println!("total migration time:  {total_ms:.1} ms");
    println!(
        "effective state bandwidth: {:.1} MiB/s",
        image_bytes as f64 / (1 << 20) as f64 / (total_ms / 1e3)
    );

    // Correctness: old handles still work, data intact, kernels runnable.
    let mut out = vec![0u8; 64];
    client
        .enqueue_read_buffer(queue, bufs[0], true, 0, &mut out, &[], false)
        .unwrap();
    assert!(out.iter().all(|&b| b == 0x5A), "payload survived migration");
    client
        .set_kernel_arg(kernel, 0, KernelArg::Mem(bufs[0]))
        .unwrap();
    client
        .set_kernel_arg(kernel, 1, KernelArg::from_f32(1.0))
        .unwrap();
    client
        .enqueue_nd_range_kernel(queue, kernel, [16, 1, 1], None, &[], false)
        .unwrap();
    client.finish(queue).unwrap();
    println!();
    println!("post-migration checks: buffer contents OK, kernel launch OK");
}
