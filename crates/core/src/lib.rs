//! `ava-core` — AvA assembled: automatic virtualization of accelerator
//! APIs (HotOS '19).
//!
//! This crate wires every piece of the reproduction together:
//!
//! * the bundled **API specifications** ([`specs`]) — unmodified C headers
//!   plus CAvA annotation files, compiled to runtime descriptors;
//! * the **generated API servers** ([`bindings`]) — handlers executing
//!   forwarded calls against the native silos (`simcl`, `simnc`);
//! * the **generated guest libraries** ([`clients`]) — typed clients
//!   implementing the same API traits as the silos, but remoting through
//!   the AvA transport/router/server stack;
//! * the **stack facade** ([`stack`]) — hypervisor + router + per-VM
//!   servers, with pause/resume, migration and statistics.
//!
//! # Examples
//!
//! Virtualize OpenCL and run an application against the virtual device:
//!
//! ```
//! use ava_core::{opencl_stack, OpenClClient, StackConfig};
//! use ava_hypervisor::VmPolicy;
//! use simcl::{ClApi, SimCl};
//! use simcl::types::{DeviceType, QueueProps};
//!
//! let cl = SimCl::new();
//! let stack = opencl_stack(cl, StackConfig::default()).unwrap();
//! let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
//! let api = OpenClClient::new(lib);
//!
//! // The guest application is oblivious: same calls, virtual device.
//! let platform = api.get_platform_ids().unwrap()[0];
//! let device = api.get_device_ids(platform, DeviceType::Gpu).unwrap()[0];
//! let ctx = api.create_context(device).unwrap();
//! let queue = api.create_command_queue(ctx, device, QueueProps::default()).unwrap();
//! api.finish(queue).unwrap();
//! ```

pub mod bindings;
pub mod clients;
pub mod specs;
pub mod stack;

use std::sync::Arc;

pub use ava_guest::{GuestConfig, GuestLibrary, GuestStats};
pub use ava_hypervisor::{BreakerConfig, PlacementPolicy, PolicyDefaults, SchedulerKind, VmPolicy};
pub use ava_spec::LowerOptions;
pub use ava_transport::{CostModel, TransportKind};
pub use bindings::{MvncHandler, OpenClHandler};
pub use clients::{MvncClient, OpenClClient};
pub use stack::{
    ApiStack, BrownoutConfig, PoolSlotStats, RecoveryStats, Result, StackConfig, StackError,
};

/// Builds a complete AvA stack virtualizing OpenCL over the silo `cl`,
/// using the default (async-optimized) specification.
pub fn opencl_stack(cl: simcl::SimCl, config: StackConfig) -> Result<ApiStack> {
    opencl_stack_with(cl, config, LowerOptions::default())
}

/// Builds an OpenCL stack with explicit lowering options (the
/// `enable_async: false` variant is the §5 "unoptimized specification"
/// baseline).
pub fn opencl_stack_with(
    cl: simcl::SimCl,
    config: StackConfig,
    opts: LowerOptions,
) -> Result<ApiStack> {
    let descriptor = specs::opencl_descriptor(opts)
        .map_err(|e| StackError::Server(ava_server::ServerError::Handler(e.to_string())))?;
    Ok(ApiStack::new(
        descriptor,
        move || Box::new(OpenClHandler::new(cl.clone())) as Box<dyn ava_server::ApiHandler>,
        config,
    ))
}

/// Builds an OpenCL stack over a *pool* of silos: one shared device per
/// silo, `config.pool_size` forced to `silos.len()`. VMs attached to the
/// stack are bound to slots by `config.placement` and contend for their
/// slot's device; see `StackConfig::pool_size`.
pub fn opencl_pool_stack(silos: Vec<simcl::SimCl>, config: StackConfig) -> Result<ApiStack> {
    opencl_pool_stack_with(silos, config, LowerOptions::default())
}

/// Builds an OpenCL pool stack with explicit lowering options.
pub fn opencl_pool_stack_with(
    silos: Vec<simcl::SimCl>,
    mut config: StackConfig,
    opts: LowerOptions,
) -> Result<ApiStack> {
    assert!(!silos.is_empty(), "a device pool needs at least one silo");
    let descriptor = specs::opencl_descriptor(opts)
        .map_err(|e| StackError::Server(ava_server::ServerError::Handler(e.to_string())))?;
    config.pool_size = silos.len();
    Ok(ApiStack::new_indexed(
        descriptor,
        move |i| Box::new(OpenClHandler::new(silos[i].clone())) as Box<dyn ava_server::ApiHandler>,
        config,
    ))
}

/// Builds a complete AvA stack virtualizing the NCSDK over the silo `nc`.
pub fn mvnc_stack(nc: simnc::SimNc, config: StackConfig) -> Result<ApiStack> {
    mvnc_stack_with(nc, config, LowerOptions::default())
}

/// Builds an NCSDK stack with explicit lowering options.
pub fn mvnc_stack_with(
    nc: simnc::SimNc,
    config: StackConfig,
    opts: LowerOptions,
) -> Result<ApiStack> {
    let descriptor = specs::mvnc_descriptor(opts)
        .map_err(|e| StackError::Server(ava_server::ServerError::Handler(e.to_string())))?;
    Ok(ApiStack::new(
        descriptor,
        move || Box::new(MvncHandler::new(nc.clone())) as Box<dyn ava_server::ApiHandler>,
        config,
    ))
}

/// Convenience: an `Arc`d descriptor for effort reporting and tooling.
pub fn opencl_descriptor() -> Arc<ava_spec::ApiDescriptor> {
    specs::opencl_descriptor(LowerOptions::default()).expect("bundled OpenCL spec compiles")
}

/// Convenience: the MVNC descriptor.
pub fn mvnc_descriptor() -> Arc<ava_spec::ApiDescriptor> {
    specs::mvnc_descriptor(LowerOptions::default()).expect("bundled MVNC spec compiles")
}
