/*
 * NCSDK v1 subset header for the AvA reproduction.
 *
 * Follows the Intel Movidius NCSDK v1 mvnc.h shapes, with one documented
 * adaptation: mvncGetResult takes an explicit result capacity instead of
 * returning an internal pointer (the original returns a pointer into
 * SDK-owned memory, which cannot cross an API-remoting boundary).
 */
#ifndef AVA_MVNC_H
#define AVA_MVNC_H 1

#define MVNC_OK 0
#define MVNC_BUSY -1
#define MVNC_ERROR -2
#define MVNC_OUT_OF_MEMORY -3
#define MVNC_DEVICE_NOT_FOUND -4
#define MVNC_INVALID_PARAMETERS -5
#define MVNC_TIMEOUT -6
#define MVNC_NO_DATA -8
#define MVNC_GONE -9
#define MVNC_UNSUPPORTED_GRAPH_FILE -10
#define MVNC_MYRIAD_ERROR -11

#define MVNC_DONT_BLOCK 0
#define MVNC_TIME_TAKEN 1
#define MVNC_THERMAL_THROTTLE 0
#define MVNC_MAX_EXECUTORS 1

typedef int mvncStatus;
typedef struct _mvnc_device *mvncDeviceHandle;
typedef struct _mvnc_graph *mvncGraphHandle;

mvncStatus mvncGetDeviceName(int index, char *name, unsigned int name_size);
mvncStatus mvncOpenDevice(const char *name, mvncDeviceHandle *device_handle);
mvncStatus mvncCloseDevice(mvncDeviceHandle device_handle);
mvncStatus mvncAllocateGraph(mvncDeviceHandle device_handle,
                             mvncGraphHandle *graph_handle,
                             const void *graph_file,
                             unsigned int graph_file_size);
mvncStatus mvncDeallocateGraph(mvncGraphHandle graph_handle);
mvncStatus mvncLoadTensor(mvncGraphHandle graph_handle, const void *tensor,
                          unsigned int tensor_size, unsigned long user_param);
mvncStatus mvncGetResult(mvncGraphHandle graph_handle, void *result,
                         unsigned int result_capacity,
                         unsigned int *result_size, unsigned long *user_param);
mvncStatus mvncSetGraphOption(mvncGraphHandle graph_handle, int option,
                              unsigned long value);
mvncStatus mvncGetGraphOption(mvncGraphHandle graph_handle, int option,
                              unsigned long *value);
mvncStatus mvncSetDeviceOption(mvncDeviceHandle device_handle, int option,
                               unsigned long value);
mvncStatus mvncGetDeviceOption(mvncDeviceHandle device_handle, int option,
                               unsigned long *value);

#endif /* AVA_MVNC_H */
