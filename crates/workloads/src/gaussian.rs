//! `gaussian` — Rodinia's Gaussian elimination: two kernels (`Fan1`,
//! `Fan2`) launched per elimination step, with kernel arguments rebound
//! every step. Thousands of tiny API calls per run make this the most
//! forwarding-sensitive workload in the suite — it shows the largest AvA
//! overhead in Figure 5's shape.

use simcl::kernels::KernelRegistry;
use simcl::mem::{as_f32, as_f32_mut};
use simcl::types::KernelArg;
use simcl::ClApi;

use crate::harness::{close_enough, ClWorkload, Result, Scale, Session, WorkloadError, XorShift};

/// OpenCL C source.
pub const SOURCE: &str = r#"
__kernel void Fan1(__global float *m, __global const float *a,
                   const int size, const int t) {
    int i = get_global_id(0);
    if (i < size - 1 - t)
        m[(i + t + 1) * size + t] = a[(i + t + 1) * size + t] / a[t * size + t];
}
__kernel void Fan2(__global const float *m, __global float *a,
                   __global float *b, const int size, const int t) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    if (i < size - 1 - t && j < size - t) {
        a[(i + t + 1) * size + (j + t)] -=
            m[(i + t + 1) * size + t] * a[t * size + (j + t)];
        if (j == 0) b[i + t + 1] -= m[(i + t + 1) * size + t] * b[t];
    }
}
"#;

/// The Gaussian elimination workload.
pub struct Gaussian {
    size: usize,
}

impl Gaussian {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Gaussian { size: 32 },
            Scale::Bench => Gaussian { size: 640 },
        }
    }

    /// Diagonally dominant system so elimination stays stable.
    fn system(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.size;
        let mut rng = XorShift::new(0x6a55);
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            let mut row_sum = 0.0f32;
            for j in 0..n {
                if i != j {
                    let v = rng.next_f32() - 0.5;
                    a[i * n + j] = v;
                    row_sum += v.abs();
                }
            }
            a[i * n + i] = row_sum + 1.0;
        }
        let b: Vec<f32> = (0..n).map(|_| rng.next_f32() * 10.0).collect();
        (a, b)
    }

    /// Back-substitution on the host, as in Rodinia.
    fn back_substitute(n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut x = vec![0.0f32; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in i + 1..n {
                sum -= a[i * n + j] * x[j];
            }
            x[i] = sum / a[i * n + i];
        }
        x
    }
}

impl ClWorkload for Gaussian {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn register(&self, registry: &KernelRegistry) {
        registry.register_fn("Fan1", |inv| {
            let size = inv.scalar_i32(2)? as usize;
            let t = inv.scalar_i32(3)? as usize;
            let [m, a] = inv.bufs([0, 1])?;
            let a = as_f32(a);
            let m = as_f32_mut(m);
            let pivot = a[t * size + t];
            for i in 0..size - 1 - t {
                m[(i + t + 1) * size + t] = a[(i + t + 1) * size + t] / pivot;
            }
            Ok(())
        });
        registry.register_fn("Fan2", |inv| {
            let size = inv.scalar_i32(3)? as usize;
            let t = inv.scalar_i32(4)? as usize;
            let [m, a, b] = inv.bufs([0, 1, 2])?;
            let m = as_f32(m);
            let a = as_f32_mut(a);
            // Copy the pivot row first: the update reads it while rows
            // below are being rewritten.
            let pivot_row: Vec<f32> = a[t * size..(t + 1) * size].to_vec();
            for i in 0..size - 1 - t {
                let mult = m[(i + t + 1) * size + t];
                for j in 0..size - t {
                    a[(i + t + 1) * size + (j + t)] -= mult * pivot_row[j + t];
                }
            }
            let b = as_f32_mut(b);
            let bt = b[t];
            for i in 0..size - 1 - t {
                let mult = m[(i + t + 1) * size + t];
                b[i + t + 1] -= mult * bt;
            }
            Ok(())
        });
    }

    fn run(&self, api: &dyn ClApi) -> Result<f64> {
        let n = self.size;
        let (a0, b0) = self.system();
        let mut session = Session::open(api)?;
        session.build(SOURCE)?;
        let fan1 = session.kernel("Fan1")?;
        let fan2 = session.kernel("Fan2")?;

        let b_a = session.buffer_f32(&a0)?;
        let b_b = session.buffer_f32(&b0)?;
        let b_m = session.buffer_zeroed(n * n * 4)?;

        // One Fan1 + Fan2 pair per elimination step, arguments rebound
        // every iteration (the Rodinia host-code pattern).
        for t in 0..n - 1 {
            session.set_args(
                fan1,
                &[
                    KernelArg::Mem(b_m),
                    KernelArg::Mem(b_a),
                    KernelArg::from_i32(n as i32),
                    KernelArg::from_i32(t as i32),
                ],
            )?;
            session.run_1d(fan1, n)?;
            session.set_args(
                fan2,
                &[
                    KernelArg::Mem(b_m),
                    KernelArg::Mem(b_a),
                    KernelArg::Mem(b_b),
                    KernelArg::from_i32(n as i32),
                    KernelArg::from_i32(t as i32),
                ],
            )?;
            session.run_2d(fan2, n, n)?;
        }
        session.finish()?;

        let a = session.read_f32(b_a, n * n)?;
        let b = session.read_f32(b_b, n)?;
        let x = Self::back_substitute(n, &a, &b);

        // Validate: A0 * x must reproduce b0.
        for i in 0..n {
            let mut sum = 0.0f32;
            for j in 0..n {
                sum += a0[i * n + j] * x[j];
            }
            if !close_enough(sum, b0[i], 1e-2) {
                return Err(WorkloadError::Validation(format!(
                    "row {i}: A0*x = {sum}, b0 = {}",
                    b0[i]
                )));
            }
        }
        let checksum: f64 = x.iter().map(|&v| f64::from(v)).sum();

        for mem in [b_a, b_b, b_m] {
            session.release(mem)?;
        }
        session.close()?;
        Ok(checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn gaussian_solves_the_system() {
        let wl = Gaussian::new(Scale::Test);
        let registry = Arc::new(KernelRegistry::new());
        wl.register(&registry);
        let cl =
            simcl::SimCl::with_devices_and_registry(vec![simcl::DeviceConfig::default()], registry);
        let checksum = wl.run(&cl).unwrap();
        assert!(checksum.is_finite());
    }
}
