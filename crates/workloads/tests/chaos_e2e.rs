//! Chaos end-to-end tests: real workloads driven through the full stack
//! while the guest channel drops, duplicates, and delays frames — plus one
//! API-server crash in the middle — must produce checksums bit-identical
//! to a fault-free run.
//!
//! Fault schedules are deterministic (scripted rules over frame sequence
//! numbers, plus a seeded PRNG for delays), so a failure here replays
//! exactly. Two deliberate scoping choices keep the oracle exact:
//!
//! * Only *recoverable* frames are dropped: sync calls time out and retry
//!   (the server deduplicates by call id), and dropped sync replies are
//!   re-answered from the server's reply cache. Fire-and-forget async
//!   frames have no retry machinery — dropping them silently corrupts
//!   results by design — so they are never dropped, only duplicated
//!   (which dedup absorbs).
//! * Corruption is exercised in the transport and wire test suites, not
//!   here: a corrupted frame that still decodes would execute with mangled
//!   arguments, which no retry protocol can detect without end-to-end
//!   checksums the wire format does not carry.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_core::{opencl_stack, GuestConfig, OpenClClient, StackConfig};
use ava_guest::GuestError;
use ava_hypervisor::VmPolicy;
use ava_telemetry::Registry;
use ava_transport::{CostModel, FaultAction, FaultPlan, TransportKind};
use ava_wire::{Message, Value};
use ava_workloads::{backprop::Backprop, kmeans::Kmeans, silo_with_all_kernels, ClWorkload, Scale};
use simcl::types::*;
use simcl::ClApi;

/// Guest deadlines short enough that a dropped frame costs little, long
/// enough that crash recovery (a few milliseconds of journal replay)
/// finishes well inside one attempt window.
fn chaos_config() -> StackConfig {
    StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        guest: GuestConfig {
            call_deadline: Some(Duration::from_millis(100)),
            max_retries: 5,
            retry_backoff: Duration::from_millis(1),
            ..GuestConfig::default()
        },
        ..StackConfig::default()
    }
}

/// The guest→router schedule: every 20th frame (sync or async call) is
/// duplicated — the at-most-once machinery must suppress the copy — and
/// 5% of frames are delayed 1 ms for jitter. Nothing is dropped on this
/// direction, so async calls are never lost.
fn tx_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        delay_rate: 0.05,
        delay: Duration::from_millis(1),
        ..FaultPlan::default()
    }
    .eligible(|msg| !matches!(msg, Message::Control(_)))
    .rule(
        |seq, msg| matches!(msg, Message::Call(_)) && seq % 20 == 13,
        FaultAction::Duplicate,
    )
}

/// The router→guest schedule: 5% of replies dropped (every 20th frame),
/// another 5% duplicated. A dropped reply forces the guest to retry the
/// call; the retry's reply arrives a frame or two later — never back on a
/// `seq % 20 == 7` slot — so one retry always suffices and the run stays
/// deterministic.
fn rx_plan(seed: u64) -> FaultPlan {
    FaultPlan::quiet(seed)
        .rule(
            |seq, msg| matches!(msg, Message::Reply(_)) && seq % 20 == 7,
            FaultAction::Drop,
        )
        .rule(
            |seq, msg| matches!(msg, Message::Reply(_)) && seq % 20 == 17,
            FaultAction::Duplicate,
        )
}

fn wait_for(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn marker_bytes(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 % 253) as u8).collect()
}

/// The acceptance run: kmeans and backprop under drops + duplicates +
/// delays with an API-server crash between them, bit-identical to a
/// fault-free run, with zero duplicate device-side executions and a
/// recovery that provably replayed the journal.
#[test]
fn chaos_run_with_crash_recovery_is_bit_identical() {
    // Fault-free oracle (same config, no injectors, fresh silo).
    let (kmeans_oracle, backprop_oracle) = {
        let stack = opencl_stack(silo_with_all_kernels(Scale::Test), chaos_config()).unwrap();
        let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        let client = OpenClClient::new(lib);
        let k = Kmeans::new(Scale::Test).run(&client).unwrap();
        let b = Backprop::new(Scale::Test).run(&client).unwrap();
        (k, b)
    };

    let stack = opencl_stack(silo_with_all_kernels(Scale::Test), chaos_config()).unwrap();
    let registry = Registry::new();
    stack.set_telemetry(registry.clone()).unwrap();
    let (tx, rx) = (Some(tx_plan(0xC4A0)), Some(rx_plan(0xFA11)));
    let (vm, lib) = stack
        .attach_vm_with_faults(VmPolicy::default(), tx, rx)
        .unwrap();
    let client = OpenClClient::new(Arc::clone(&lib));

    let kmeans = Kmeans::new(Scale::Test).run(&client).unwrap();
    assert_eq!(kmeans, kmeans_oracle, "kmeans diverged under faults");

    // State the recovery must reconstruct: a buffer whose contents exist
    // only device-side once written.
    let data = marker_bytes(1024);
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let marker = client
        .create_buffer(ctx, MemFlags::read_write(), data.len(), None)
        .unwrap();
    client
        .enqueue_write_buffer(queue, marker, true, 0, &data, &[], false)
        .unwrap();
    client.finish(queue).unwrap();

    // The duplicated call frames reached the server and were suppressed
    // rather than re-executed.
    let pre_crash = stack.vm_server_stats(vm).unwrap();
    assert!(
        pre_crash.duplicates_suppressed > 0,
        "expected duplicate frames to reach dedup, got none"
    );

    // Kill the API server mid-run; the supervisor must notice, respawn,
    // and replay the journal without any help from this thread.
    stack.crash_vm_server(vm).unwrap();
    wait_for("supervisor respawn", Duration::from_secs(10), || {
        stack.recovery_stats().respawns >= 1
    });
    let recovery = stack.recovery_stats();
    assert_eq!(recovery.respawns, 1);
    assert!(
        recovery.replayed_calls > 0,
        "recovery must rebuild state by replay, not start empty"
    );
    assert_eq!(recovery.failed, 0);

    // The marker buffer survived the crash: journal replay re-executed the
    // create and the write, and the wire handle still resolves.
    let mut out = vec![0u8; data.len()];
    client
        .enqueue_read_buffer(queue, marker, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(out, data, "device state lost across crash recovery");

    let backprop = Backprop::new(Scale::Test).run(&client).unwrap();
    assert_eq!(
        backprop, backprop_oracle,
        "backprop diverged after recovery"
    );

    // At-most-once, end to end: despite duplicated frames and deadline
    // retries, no call id ever executed device-side twice.
    let journal = stack.vm_journal(vm).unwrap();
    assert!(!journal.is_empty());
    assert!(
        journal.call_ids_unique(),
        "a call executed twice despite dedup"
    );

    // Recovery is visible in the unified telemetry registry.
    let counters = registry.snapshot().counters;
    assert_eq!(counters.get("recovery.respawns"), Some(&1));
    assert!(counters.get("recovery.replayed_calls").copied() > Some(0));

    // CI artifact: full cross-tier telemetry for the chaos run.
    if let Ok(path) = std::env::var("CHAOS_REPORT") {
        let report = stack.telemetry_report().expect("telemetry attached");
        std::fs::write(path, report).expect("write chaos report");
    }
}

/// Nightly-scale sweep: the same drop/duplicate/delay + crash scenario
/// across many fault-schedule seeds. Each seed shifts which frames the
/// injectors hit, so the sweep probes retry/dedup/replay interleavings the
/// two fixed seeds of the smoke test never reach. Gated behind
/// `CHAOS_EXTENDED=1` (set by the nightly workflow) so PR CI stays fast.
#[test]
fn extended_chaos_seed_sweep() {
    if std::env::var("CHAOS_EXTENDED").is_err() {
        eprintln!("skipping extended sweep: set CHAOS_EXTENDED=1 to run it");
        return;
    }
    let (kmeans_oracle, backprop_oracle) = {
        let stack = opencl_stack(silo_with_all_kernels(Scale::Test), chaos_config()).unwrap();
        let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        let client = OpenClClient::new(lib);
        let k = Kmeans::new(Scale::Test).run(&client).unwrap();
        let b = Backprop::new(Scale::Test).run(&client).unwrap();
        (k, b)
    };

    let seeds: Vec<(u64, u64)> = (0..12)
        .map(|i| (0xC4A0 + 0x1111 * i, 0xFA11 + 0x2222 * i))
        .collect();
    for (i, &(tx_seed, rx_seed)) in seeds.iter().enumerate() {
        let stack = opencl_stack(silo_with_all_kernels(Scale::Test), chaos_config()).unwrap();
        let (vm, lib) = stack
            .attach_vm_with_faults(
                VmPolicy::default(),
                Some(tx_plan(tx_seed)),
                Some(rx_plan(rx_seed)),
            )
            .unwrap();
        let client = OpenClClient::new(Arc::clone(&lib));

        let kmeans = Kmeans::new(Scale::Test).run(&client).unwrap();
        assert_eq!(kmeans, kmeans_oracle, "seed pair {i}: kmeans diverged");

        // Sync fence: the transport is FIFO per VM, so a completed sync
        // call means every earlier async frame was served — the crash can
        // only lose trailing releases, never result-bearing work.
        client.get_platform_ids().unwrap();
        stack.crash_vm_server(vm).unwrap();
        wait_for("supervisor respawn", Duration::from_secs(10), || {
            stack.recovery_stats().respawns >= 1
        });

        let backprop = Backprop::new(Scale::Test).run(&client).unwrap();
        assert_eq!(
            backprop, backprop_oracle,
            "seed pair {i}: backprop diverged after recovery"
        );
        let journal = stack.vm_journal(vm).unwrap();
        assert!(
            journal.call_ids_unique(),
            "seed pair {i}: a call executed twice despite dedup"
        );
        assert_eq!(stack.recovery_stats().failed, 0, "seed pair {i}");
    }
}

/// Chaos meets memory virtualization: the server crashes while part of
/// the VM's device memory is parked in the host-side swap store, under the
/// same drop/duplicate/delay schedules as the main chaos run. Journal
/// replay must rematerialize the full buffer set — residency accounting
/// included — and a real workload run after recovery, still under the
/// tight resident ceiling, must match the fault-free unconstrained oracle.
#[test]
fn crash_with_swapped_buffers_rematerializes_residency() {
    let kmeans_oracle = {
        let stack = opencl_stack(silo_with_all_kernels(Scale::Test), chaos_config()).unwrap();
        let (_vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
        Kmeans::new(Scale::Test)
            .run(&OpenClClient::new(lib))
            .unwrap()
    };

    // Resident ceiling of 4 KiB against an 8 KiB buffer set: at least half
    // the footprint is always swapped out, so the crash below is
    // guaranteed to land while the swap store holds live state.
    let config = StackConfig {
        device_mem_capacity: Some(4 << 10),
        ..chaos_config()
    };
    let stack = opencl_stack(silo_with_all_kernels(Scale::Test), config).unwrap();
    let (vm, lib) = stack
        .attach_vm_with_faults(
            VmPolicy::default(),
            Some(tx_plan(0x5A40)),
            Some(rx_plan(0x5A41)),
        )
        .unwrap();
    let client = OpenClClient::new(Arc::clone(&lib));

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();

    let buf_len = 2 << 10;
    let payloads: Vec<Vec<u8>> = (0..4)
        .map(|i| {
            (0..buf_len)
                .map(|j| ((j * 41 + i * 97) % 249) as u8)
                .collect()
        })
        .collect();
    let bufs: Vec<ClMem> = payloads
        .iter()
        .map(|p| {
            let b = client
                .create_buffer(ctx, MemFlags::read_write(), buf_len, None)
                .unwrap();
            client
                .enqueue_write_buffer(queue, b, true, 0, p, &[], false)
                .unwrap();
            b
        })
        .collect();
    client.finish(queue).unwrap();

    let pre = stack.vm_memory_stats(vm).unwrap();
    assert!(
        pre.swapped_bytes > 0,
        "precondition: the crash must land while buffers are swapped out \
         (resident {}, swapped {})",
        pre.resident_bytes,
        pre.swapped_bytes
    );

    stack.crash_vm_server(vm).unwrap();
    wait_for("supervisor respawn", Duration::from_secs(10), || {
        stack.recovery_stats().respawns >= 1
    });
    assert_eq!(stack.recovery_stats().failed, 0);
    assert!(stack.recovery_stats().replayed_calls > 0);

    // Every buffer — resident or swapped at crash time — reads back
    // bit-identical: replay re-created the whole set and faulting pulls
    // parked payloads off the host store on touch.
    let mut out = vec![0u8; buf_len];
    for (i, (buf, payload)) in bufs.iter().zip(&payloads).enumerate() {
        client
            .enqueue_read_buffer(queue, *buf, true, 0, &mut out, &[], false)
            .unwrap();
        assert_eq!(&out, payload, "buffer {i} lost or corrupted across crash");
    }

    // Residency accounting was rebuilt from scratch, not inherited stale:
    // the tracked footprint equals exactly the four live buffers, and the
    // ceiling still holds.
    let post = stack.vm_memory_stats(vm).unwrap();
    assert_eq!(
        post.live_bytes,
        4 * buf_len as u64,
        "replay must rematerialize residency accounting exactly"
    );
    assert!(
        post.resident_bytes <= 4 << 10,
        "resident ceiling violated after recovery ({} bytes)",
        post.resident_bytes
    );

    // And the lane still computes: a full workload under the same ceiling,
    // after the crash, on a faulty channel, matches the clean oracle.
    let kmeans = Kmeans::new(Scale::Test).run(&client).unwrap();
    assert_eq!(kmeans, kmeans_oracle, "kmeans diverged after swap + crash");
    assert!(
        stack.vm_journal(vm).unwrap().call_ids_unique(),
        "a call executed twice despite dedup"
    );
}

// ---------------------------------------------------------------------
// Overload storm: 8 tenants on one device at ~5x capacity, 5% channel
// faults, one tenant poisoned. The protection stack must shed the excess
// with accounted `Overloaded` rejections, quarantine the poison tenant
// behind its circuit breaker, and execute every *admitted* call
// bit-identically to the pure-function oracle.
// ---------------------------------------------------------------------

/// One compute op whose result is a pure function of its seed (the
/// bit-identical oracle), plus one handle-taking op the poison tenant
/// aims at a bogus handle so the server answers `TransportError` — the
/// circuit breaker's failure signal.
const STORM_SPEC: &str = r#"
api("storm", 1);
#define STORM_OK 0
typedef int storm_status;
typedef struct _storm_buf *storm_buf;
type(storm_status) { success(STORM_OK); }
storm_status storm_work(unsigned long seed, unsigned long cost_us) {
  sync;
  resource(device_time_us, cost_us);
}
storm_status storm_touch(storm_buf buf) {
  sync;
}
"#;

const STORM_COST_US: u64 = 150;

/// The oracle: what every admitted `storm_work(seed, _)` must return.
fn storm_hash(seed: u64) -> i32 {
    let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xA5A5_5A5A;
    (h as u32 & 0x7FFF_FFFF) as i32
}

/// The "device": occupies the slot for the declared cost, then returns
/// the seed's hash.
struct StormHandler;

impl ava_server::ApiHandler for StormHandler {
    fn dispatch(
        &mut self,
        func: &ava_spec::FunctionDesc,
        args: &[Value],
    ) -> ava_server::Result<ava_server::HandlerOutput> {
        match func.name.as_str() {
            "storm_work" => {
                let seed = match args.first() {
                    Some(Value::U64(v)) => *v,
                    _ => 0,
                };
                let cost_us = match args.get(1) {
                    Some(Value::U64(v)) => *v,
                    _ => 0,
                };
                let deadline = Instant::now() + Duration::from_micros(cost_us);
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
                Ok(ava_server::HandlerOutput::ret(Value::I32(storm_hash(seed))))
            }
            // storm_touch only reaches dispatch with a *resolvable* handle;
            // the poison tenant's bogus handles fail wire-handle resolution
            // first and are answered TransportError by the server.
            _ => Ok(ava_server::HandlerOutput::ret(Value::I32(-1))),
        }
    }

    fn snapshot_object(&mut self, _kind: &str, _silo: u64) -> Option<Vec<u8>> {
        None
    }

    fn restore_object(&mut self, _kind: &str, _silo: u64, _data: &[u8]) -> bool {
        false
    }

    fn drop_object(&mut self, _kind: &str, _silo: u64) -> bool {
        false
    }
}

/// Guest→router: 5% of frames delayed, every 20th call duplicated (dedup
/// must absorb it). Nothing dropped, so async is never lost.
fn storm_tx_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        delay_rate: 0.05,
        delay: Duration::from_micros(200),
        ..FaultPlan::default()
    }
    .eligible(|msg| !matches!(msg, Message::Control(_)))
    .rule(
        |seq, msg| matches!(msg, Message::Call(_)) && seq % 20 == 13,
        FaultAction::Duplicate,
    )
}

/// Router→guest: every 20th *Ok* reply dropped (the guest retries; the
/// server re-answers from its reply cache). Overloaded replies are never
/// dropped, so the shed accounting reconciles exactly across tiers.
fn storm_rx_plan(seed: u64) -> FaultPlan {
    FaultPlan::quiet(seed).rule(
        |seq, msg| {
            matches!(msg, Message::Reply(r) if r.status == ava_wire::ReplyStatus::Ok)
                && seq % 20 == 7
        },
        FaultAction::Drop,
    )
}

#[test]
fn overload_storm_sheds_cleanly_and_quarantines_poison_tenant() {
    use ava_core::{ApiStack, BreakerConfig, StackConfig};
    use ava_spec::{compile_spec, LowerOptions, MapResolver};

    let extended = std::env::var("CHAOS_EXTENDED").is_ok();
    let run_for = Duration::from_millis(if extended { 3000 } else { 600 });

    let descriptor = Arc::new(
        compile_spec(STORM_SPEC, &MapResolver::new(), LowerOptions::default())
            .expect("storm spec compiles"),
    );
    let config = StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        pool_size: 1,
        slot_inflight: 1,
        // Admission control sized so ~5x offered load sheds hard, plus a
        // staleness ceiling and a breaker tight enough to quarantine the
        // poison tenant within a few of its failing calls.
        max_queue_depth: Some(2),
        max_slot_queue_depth: Some(3),
        max_queue_age: Some(Duration::from_millis(20)),
        breaker: Some(BreakerConfig {
            failure_threshold: 5,
            open_for: Duration::from_millis(20),
            probe_successes: 1,
        }),
        // A tight per-attempt deadline keeps a dropped reply cheap: the
        // retry (answered from the server's reply cache) lands ~10ms
        // later instead of stalling the client for a long window.
        guest: GuestConfig {
            call_deadline: Some(Duration::from_millis(10)),
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            ..GuestConfig::default()
        },
        ..StackConfig::default()
    };
    let stack = Arc::new(ApiStack::new(
        Arc::clone(&descriptor),
        || Box::new(StormHandler) as Box<dyn ava_server::ApiHandler>,
        config,
    ));
    let registry = Registry::new();
    stack.set_telemetry(registry.clone()).unwrap();

    // 7 honest tenants on faulty channels + 1 poison tenant on a clean
    // one, all pinned to the single slot.
    const HONEST: usize = 7;
    let barrier = Arc::new(std::sync::Barrier::new(HONEST + 2));
    let mut honest_vms = Vec::new();
    let mut threads = Vec::new();
    for i in 0..HONEST {
        let (vm, lib) = stack
            .attach_vm_with_faults(
                VmPolicy::default(),
                Some(storm_tx_plan(0x570A + 0x101 * i as u64)),
                Some(storm_rx_plan(0x570B + 0x202 * i as u64)),
            )
            .unwrap();
        honest_vms.push(vm);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let deadline = Instant::now() + run_for;
            let (mut successes, mut sheds, mut slow) = (0u64, 0u64, 0u64);
            let mut n = 0u64;
            let mut latencies_us: Vec<u64> = Vec::new();
            while Instant::now() < deadline {
                let seed = ((i as u64) << 32) | n;
                n += 1;
                let t0 = Instant::now();
                match lib.call(
                    "storm_work",
                    vec![Value::U64(seed), Value::U64(STORM_COST_US)],
                ) {
                    Ok(res) => {
                        // The bit-identical contract: an admitted call
                        // returns exactly what the fault-free oracle says.
                        assert_eq!(
                            res.ret,
                            Value::I32(storm_hash(seed)),
                            "tenant {i}: admitted call corrupted under storm"
                        );
                        successes += 1;
                        latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    Err(GuestError::Overloaded) => {
                        sheds += 1;
                        std::thread::sleep(Duration::from_micros(STORM_COST_US));
                    }
                    Err(GuestError::DeadlineExceeded) => slow += 1,
                    Err(e) => panic!("tenant {i}: unexpected error {e}"),
                }
            }
            latencies_us.sort_unstable();
            (successes, sheds, slow, latencies_us)
        }));
    }
    let (poison_vm, poison_lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    {
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let deadline = Instant::now() + run_for;
            let (mut faults, mut sheds) = (0u64, 0u64);
            while Instant::now() < deadline {
                match poison_lib.call("storm_touch", vec![Value::Handle(0xDEAD_BEEF)]) {
                    Err(GuestError::Overloaded) => sheds += 1,
                    Err(_) => faults += 1,
                    Ok(_) => panic!("bogus handle must not resolve"),
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            (faults, sheds, 0u64, Vec::new())
        }));
    }

    barrier.wait();
    let results: Vec<(u64, u64, u64, Vec<u64>)> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();
    let honest = &results[..HONEST];
    let (poison_faults, poison_client_sheds, _, _) = &results[HONEST];

    // Every honest tenant made real progress despite ~5x contention —
    // the poison tenant's quarantine kept the slot usable.
    let total_successes: u64 = honest.iter().map(|r| r.0).sum();
    for (i, (successes, _, _, lat)) in honest.iter().enumerate() {
        assert!(
            *successes >= 20,
            "tenant {i} starved: only {successes} calls completed"
        );
        // Slot-mates keep their SLO: p99 bounded by the queue the router
        // is willing to hold plus at most a couple of retry windows —
        // far under 50ms even with 5% of replies dropped.
        let p99 = lat[((lat.len() - 1) as f64 * 0.99) as usize];
        assert!(
            p99 < 50_000,
            "tenant {i}: p99 {p99}us — admission control failed to bound queueing"
        );
    }
    assert!(
        total_successes >= 500,
        "goodput collapsed: {total_successes} total successes"
    );

    // Overload was real: the stack shed work, and every rejection the
    // stack counted was delivered to (and observed by) a guest. Late
    // replies to superseded attempts can be dropped guest-side, so the
    // stack's count bounds the guests' from above.
    let mut stack_rejections = 0u64;
    let mut poison_breaker_opens = 0u64;
    let mut poison_router_sheds = 0u64;
    for &vm in honest_vms.iter().chain([poison_vm].iter()) {
        let rs = stack.vm_router_stats(vm).unwrap();
        stack_rejections += rs.shed + rs.deadline_drops + rs.age_drops;
        stack_rejections += stack.vm_server_stats(vm).unwrap().expired_discards;
        if vm == poison_vm {
            poison_breaker_opens = rs.breaker_opens;
            poison_router_sheds = rs.shed;
        }
    }
    let counters = registry.snapshot().counters;
    let guest_observed: u64 = honest_vms
        .iter()
        .chain([poison_vm].iter())
        .map(|vm| {
            counters
                .get(&format!("guest.vm{vm}.overloaded"))
                .copied()
                .unwrap_or(0)
        })
        .sum();
    assert!(stack_rejections > 0, "a 5x storm must shed something");
    assert!(guest_observed > 0, "guests never observed a rejection");
    assert!(
        stack_rejections >= guest_observed,
        "guests observed {guest_observed} rejections but the stack only \
         accounted {stack_rejections} — sheds are leaking unaccounted"
    );

    // The poison tenant was quarantined: its failing calls tripped the
    // breaker (TransportError replies are the failure signal) and its
    // subsequent traffic was shed without occupying the device.
    assert!(
        *poison_faults >= 5,
        "poison tenant produced only {poison_faults} faulted calls"
    );
    assert!(
        poison_breaker_opens >= 1,
        "breaker never opened on the poison tenant"
    );
    assert!(
        poison_router_sheds > 0 && *poison_client_sheds > 0,
        "open breaker must shed the poison tenant's calls \
         (router {poison_router_sheds}, client {poison_client_sheds})"
    );

    // At-most-once survived the storm: duplicated frames and retries
    // never double-executed a call on any tenant.
    for &vm in &honest_vms {
        assert!(
            stack.vm_journal(vm).unwrap().call_ids_unique(),
            "vm {vm}: a call executed twice despite dedup"
        );
    }
}

/// A server that stays dead: with a respawn budget of zero the supervisor
/// marks the VM unavailable, and a call fails with `Unavailable` within
/// twice the configured deadline instead of burning the retry budget.
#[test]
fn permanently_dead_server_fails_unavailable_within_twice_the_deadline() {
    let deadline = Duration::from_millis(250);
    let config = StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        guest: GuestConfig {
            call_deadline: Some(deadline),
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            ..GuestConfig::default()
        },
        max_respawns: 0,
        ..StackConfig::default()
    };
    let stack = opencl_stack(silo_with_all_kernels(Scale::Test), config).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(Arc::clone(&lib));

    // Prove the lane works, then kill the server for good.
    client.get_platform_ids().unwrap();
    assert_eq!(lib.probe_liveness(Duration::from_secs(1)), Ok(true));
    stack.crash_vm_server(vm).unwrap();
    wait_for("recovery to give up", Duration::from_secs(10), || {
        stack.recovery_stats().failed >= 1
    });

    let start = Instant::now();
    let err = lib
        .call(
            "clGetPlatformIDs",
            vec![Value::U32(0), Value::Null, Value::U64(1)],
        )
        .unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(err, GuestError::Unavailable);
    assert!(
        elapsed <= deadline * 2,
        "unavailable reply took {elapsed:?}, budget {:?}",
        deadline * 2
    );

    // Heartbeats go unanswered on a dead lane.
    assert_eq!(
        lib.probe_liveness(Duration::from_millis(100)),
        Ok(false),
        "dead server must not ack heartbeats"
    );
    assert_eq!(stack.recovery_stats().respawns, 0);
    assert!(stack.vm_router_stats(vm).unwrap().unavailable_replies > 0);
}
