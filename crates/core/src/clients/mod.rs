//! The "generated guest libraries": typed remoting clients implementing
//! the same API traits as the native silos.

pub mod mvnc;
pub mod opencl;

pub use mvnc::MvncClient;
pub use opencl::OpenClClient;
