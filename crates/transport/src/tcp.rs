//! TCP socket transport for disaggregated accelerators.
//!
//! AvA supports pluggable transports so a VM can use an accelerator that
//! lives in another machine (§1, §4.1). This transport carries the same
//! encoded [`Message`] frames over a TCP stream with a 4-byte length
//! prefix followed by an 8-byte extra-delay field (the cost model's
//! delivery latency is materialized on the receiving side, since the two
//! ends do not share a clock).
//!
//! A dedicated reader thread owns the receive half of the socket and
//! pushes decoded messages into a channel: `recv`/`try_recv` never touch
//! the socket, so polling is cheap and partial frames can never be torn by
//! a read timeout.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_wire::Message;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use parking_lot::Mutex;

use crate::error::{Result, TransportError};
use crate::latency::{wait_until, CostModel};
use crate::stats::{StatsCell, TransportStats};
use crate::Transport;

/// Maximum accepted frame size (matches the wire sanity limit).
const MAX_FRAME: usize = 1 << 32;

/// One endpoint of a TCP transport.
pub struct TcpTransport {
    writer: Mutex<TcpStream>,
    incoming: Receiver<Result<Message>>,
    reader_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    model: CostModel,
    stats: Arc<StatsCell>,
}

impl TcpTransport {
    /// Wraps an established stream.
    pub fn from_stream(stream: TcpStream, model: CostModel) -> Result<Self> {
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let (tx, rx) = crossbeam::channel::unbounded();
        let stats = StatsCell::new();
        let reader_stats = Arc::clone(&stats);
        let reader = std::thread::Builder::new()
            .name("ava-tcp-reader".into())
            .spawn(move || reader_loop(read_half, tx, reader_stats))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport {
            writer: Mutex::new(stream),
            incoming: rx,
            reader_thread: Mutex::new(Some(reader)),
            model,
            stats,
        })
    }

    /// Connects to a listening AvA endpoint.
    pub fn connect(addr: &str, model: CostModel) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, model)
    }
}

/// Reads frames off the socket, decodes and (after honouring the modelled
/// delivery delay) forwards them into the channel. Exits on socket close.
fn reader_loop(
    mut socket: TcpStream,
    tx: crossbeam::channel::Sender<Result<Message>>,
    stats: Arc<StatsCell>,
) {
    let mut read_frame = move || -> Result<(Message, usize)> {
        let mut header = [0u8; 12];
        read_exact_mapped(&mut socket, &mut header)?;
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let delay_nanos = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len > MAX_FRAME {
            return Err(TransportError::FrameTooLarge {
                size: len,
                limit: MAX_FRAME,
            });
        }
        let mut payload = vec![0u8; len];
        read_exact_mapped(&mut socket, &mut payload)?;
        if delay_nanos > 0 {
            wait_until(Instant::now() + Duration::from_nanos(delay_nanos));
        }
        Ok((Message::decode(bytes::Bytes::from(payload))?, len + 12))
    };
    loop {
        match read_frame() {
            Ok((msg, frame_bytes)) => {
                stats.on_recv(msg.payload_bytes(), frame_bytes);
                if tx.send(Ok(msg)).is_err() {
                    return; // endpoint dropped
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

fn read_exact_mapped(socket: &mut TcpStream, buf: &mut [u8]) -> Result<()> {
    socket.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted => TransportError::Closed,
        _ => TransportError::Io(e.to_string()),
    })
}

impl Transport for TcpTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let encoded = msg.encode();
        let payload_bytes = msg.payload_bytes();
        let delay = self.model.delivery_latency + self.model.serialization_delay(payload_bytes);
        let now = Instant::now();
        {
            let mut writer = self.writer.lock();
            let mut header = [0u8; 12];
            header[..4].copy_from_slice(&(encoded.len() as u32).to_le_bytes());
            header[4..].copy_from_slice(&(delay.as_nanos() as u64).to_le_bytes());
            writer.write_all(&header)?;
            writer.write_all(&encoded)?;
            writer.flush()?;
        }
        self.stats.on_send(payload_bytes, encoded.len() + 12);
        wait_until(now + self.model.sender_overhead);
        Ok(())
    }

    fn recv(&self) -> Result<Message> {
        match self.incoming.recv() {
            Ok(result) => result,
            Err(_) => Err(TransportError::Closed),
        }
    }

    fn try_recv(&self) -> Result<Option<Message>> {
        match self.incoming.try_recv() {
            Ok(result) => result.map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>> {
        match self.incoming.recv_timeout(timeout) {
            Ok(result) => result.map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn close(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn register_telemetry(&self, registry: &ava_telemetry::Registry, prefix: &str) {
        self.stats.register_into(registry, prefix);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.close();
        if let Some(t) = self.reader_thread.lock().take() {
            let _ = t.join();
        }
    }
}

/// Creates a connected pair over loopback (used for tests and for the
/// single-machine "disaggregated" configuration).
pub fn localhost_pair(model: CostModel) -> Result<(TcpTransport, TcpTransport)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let client = TcpStream::connect(addr)?;
    let (server, _) = listener.accept()?;
    Ok((
        TcpTransport::from_stream(client, model)?,
        TcpTransport::from_stream(server, model)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_wire::{CallMode, CallRequest, ControlMessage, Value};

    fn call(id: u64, bytes: usize) -> Message {
        Message::Call(CallRequest {
            call_id: id,
            fn_id: 3,
            mode: CallMode::Async,
            args: vec![Value::Bytes(bytes::Bytes::from(vec![7u8; bytes]))],
            budget_us: 0,
        })
    }

    #[test]
    fn round_trip_over_loopback() {
        let (a, b) = localhost_pair(CostModel::free()).unwrap();
        let msg = call(11, 4096);
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
    }

    #[test]
    fn many_frames_in_order() {
        let (a, b) = localhost_pair(CostModel::free()).unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..200 {
                a.send(&call(i, 100)).unwrap();
            }
            a
        });
        for i in 0..200 {
            match b.recv().unwrap() {
                Message::Call(req) => assert_eq!(req.call_id, i),
                other => panic!("{other:?}"),
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn try_recv_never_tears_frames() {
        // Large frames + aggressive polling: the reader thread must deliver
        // whole messages no matter how the bytes arrive.
        let (a, b) = localhost_pair(CostModel::free()).unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..50 {
                a.send(&call(i, 256 * 1024)).unwrap();
            }
            a
        });
        let mut got = 0u64;
        while got < 50 {
            if let Some(Message::Call(req)) = b.try_recv().unwrap() {
                assert_eq!(req.call_id, got);
                assert_eq!(req.payload_bytes(), 256 * 1024);
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires() {
        let (_a, b) = localhost_pair(CostModel::free()).unwrap();
        let got = b.recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn close_surfaces_to_peer() {
        let (a, b) = localhost_pair(CostModel::free()).unwrap();
        a.close();
        assert_eq!(b.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn network_model_delays_delivery() {
        let model = CostModel {
            delivery_latency: Duration::from_millis(5),
            ..CostModel::free()
        };
        let (a, b) = localhost_pair(model).unwrap();
        let start = Instant::now();
        a.send(&Message::Control(ControlMessage::Ping(0))).unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn sync_round_trip_latency_is_sane() {
        // Regression guard for the polling-cost bug: a free-model TCP
        // round trip must be well under a millisecond on loopback.
        let (a, b) = localhost_pair(CostModel::free()).unwrap();
        let echo = std::thread::spawn(move || {
            while let Ok(msg) = b.recv() {
                if b.send(&msg).is_err() {
                    break;
                }
            }
        });
        let n = 200;
        let start = Instant::now();
        for i in 0..n {
            a.send(&call(i, 64)).unwrap();
            a.recv().unwrap();
        }
        let per_call = start.elapsed() / n as u32;
        assert!(
            per_call < Duration::from_millis(1),
            "round trip {per_call:?} too slow"
        );
        a.close();
        echo.join().unwrap();
    }
}
