//! Transport-layer errors.

use std::fmt;

use ava_wire::WireError;

/// Error raised by a transport operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint has been dropped or shut down.
    Closed,
    /// A frame failed to decode (corruption or version mismatch).
    Decode(WireError),
    /// An I/O error (socket transports).
    Io(String),
    /// A frame exceeded the transport's maximum size.
    FrameTooLarge {
        /// Size of the offending frame in bytes.
        size: usize,
        /// The transport's limit.
        limit: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "transport closed by peer"),
            Self::Decode(e) => write!(f, "frame decode failed: {e}"),
            Self::Io(m) => write!(f, "transport I/O error: {m}"),
            Self::FrameTooLarge { size, limit } => {
                write!(f, "frame of {size} bytes exceeds transport limit {limit}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Decode(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, TransportError>;
