//! The unified metrics registry shared by guest, router and server.
//!
//! A [`Registry`] is a named collection of [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s plus a cross-tier [`SpanTable`], cloneable (cheap `Arc`
//! clone) into every tier of the stack. Metric names follow the
//! `tier.subsystem.name` convention (`guest.calls.sync`,
//! `router.vm1.forwarded`, `server.execute.clFinish`, …).
//!
//! Existing per-component counters register their *own* storage into the
//! registry ([`Registry::register_counter`]), so the component's snapshot
//! API and the registry read the same atomics — no duplicated bookkeeping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::recorder::{Event, FlightRecorder};
use crate::span::{SpanRecord, SpanTable};

/// A shareable monotonic counter.
#[derive(Clone, Default, Debug)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero (used for in-flight gauges such
    /// as outstanding-call counts).
    pub fn dec_saturating(&self) {
        let _ = self
            .inner
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Returns the value and resets to zero.
    pub fn take(&self) -> u64 {
        self.inner.swap(0, Ordering::Relaxed)
    }
}

/// A shareable `f64` cell (stored as bits in an atomic), for estimated
/// quantities like device time that accumulate fractionally.
#[derive(Clone, Debug)]
pub struct Gauge {
    inner: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            inner: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (compare-and-swap loop; contention here is negligible).
    pub fn add(&self, v: f64) {
        let _ = self
            .inner
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.inner.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.inner.load(Ordering::Relaxed))
    }

    /// Returns the value and resets to zero.
    pub fn take(&self) -> f64 {
        f64::from_bits(self.inner.swap(0f64.to_bits(), Ordering::Relaxed))
    }
}

struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: SpanTable,
    recorder: FlightRecorder,
    epoch: Instant,
}

/// The cross-tier metrics registry. Cloning shares the same store.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch anchors all span timestamps.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: SpanTable::new(),
                recorder: FlightRecorder::default(),
                epoch: Instant::now(),
            }),
        }
    }

    /// Nanoseconds since this registry's epoch (the span clock).
    pub fn now_nanos(&self) -> u64 {
        self.inner
            .epoch
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("registry poisoned");
        counters.entry(name.to_string()).or_default().clone()
    }

    /// Registers existing counter storage under `name`; the registry and
    /// the owner then observe the same atomics.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut counters = self.inner.counters.lock().expect("registry poisoned");
        counters.insert(name.to_string(), counter.clone());
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().expect("registry poisoned");
        gauges.entry(name.to_string()).or_default().clone()
    }

    /// Registers existing gauge storage under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        let mut gauges = self.inner.gauges.lock().expect("registry poisoned");
        gauges.insert(name.to_string(), gauge.clone());
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut hists = self.inner.histograms.lock().expect("registry poisoned");
        hists.entry(name.to_string()).or_default().clone()
    }

    /// The cross-tier span store.
    pub fn spans(&self) -> &SpanTable {
        &self.inner.spans
    }

    /// The cross-tier flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Non-destructive snapshot of every metric and the completed spans.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: self.inner.spans.completed(),
            events: self.inner.recorder.events(),
            events_overwritten: self.inner.recorder.overwritten(),
            spans_dropped: self.inner.spans.dropped(),
        }
    }

    /// Snapshot-and-reset: returns the accumulated state and zeroes every
    /// counter, gauge and histogram and drains the completed spans, so
    /// benchmarks can measure phases independently. Registered component
    /// counters (guest/router/server/transport stats) reset too — their
    /// snapshot views read zero afterwards.
    pub fn take(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.take()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.take()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.take()))
                .collect(),
            spans: self.inner.spans.take_completed(),
            events_overwritten: self.inner.recorder.overwritten(),
            events: self.inner.recorder.take(),
            spans_dropped: self.inner.spans.dropped(),
        }
    }
}

/// A point-in-time export of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans.
    pub spans: Vec<SpanRecord>,
    /// Flight-recorder events, oldest first.
    pub events: Vec<Event>,
    /// Events shed by the recorder ring (overwrite-oldest).
    pub events_overwritten: u64,
    /// Spans dropped at the span-table capacity caps.
    pub spans_dropped: u64,
}

/// Mean of an optional-segment extractor over a span set, in nanoseconds.
fn segment_mean(spans: &[SpanRecord], f: impl Fn(&SpanRecord) -> Option<u64>) -> Option<f64> {
    let values: Vec<u64> = spans.iter().filter_map(&f).collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<u64>() as f64 / values.len() as f64)
    }
}

impl Snapshot {
    /// Aggregates the completed spans into named per-tier segments (mean
    /// nanoseconds), in pipeline order. Only observed segments appear.
    pub fn segment_breakdown(&self) -> Vec<(&'static str, f64)> {
        let spans: Vec<SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.total().is_some())
            .cloned()
            .collect();
        let mut out = Vec::new();
        type Segment = (&'static str, fn(&SpanRecord) -> Option<u64>);
        let segments: [Segment; 6] = [
            ("guest_marshal", SpanRecord::guest_marshal),
            ("transport_out", SpanRecord::transport_out),
            ("router_queue", SpanRecord::router_queue),
            ("server_execute", SpanRecord::server_execute),
            ("reply_path", SpanRecord::reply_path),
            ("transport_back", SpanRecord::transport_back),
        ];
        for (name, f) in segments {
            if let Some(mean) = segment_mean(&spans, f) {
                out.push((name, mean));
            }
        }
        out
    }

    /// Mean end-to-end latency across completed spans with a total.
    pub fn span_total_mean(&self) -> Option<f64> {
        segment_mean(&self.spans, SpanRecord::total)
    }

    /// Renders the snapshot as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            let w = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<w$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            let w = self.gauges.keys().map(String::len).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<w$}  {v:.1}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms (ns) ==\n");
            let w = self
                .histograms
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(4);
            out.push_str(&format!(
                "{:<w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                "name", "count", "p50", "p95", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                    name,
                    h.count,
                    h.percentile(0.50),
                    h.percentile(0.95),
                    h.percentile(0.99),
                    h.max
                ));
            }
        }
        let breakdown = self.segment_breakdown();
        if !breakdown.is_empty() {
            out.push_str("== span breakdown (mean ns per call) ==\n");
            let total: f64 = breakdown.iter().map(|(_, v)| v).sum();
            for (name, v) in &breakdown {
                out.push_str(&format!(
                    "{name:<16}  {v:>12.0}  {:>5.1}%\n",
                    100.0 * v / total.max(1e-9)
                ));
            }
            if let Some(e2e) = self.span_total_mean() {
                out.push_str(&format!(
                    "{:<16}  {:>12.0}  (segment sum {:.0}, {} spans)\n",
                    "end_to_end",
                    e2e,
                    total,
                    self.spans.len()
                ));
            }
        }
        out
    }

    /// Renders the snapshot as JSON (for `BENCH_*.json`-style trajectory
    /// tracking). Metric names are plain identifiers, so only minimal
    /// string escaping is needed.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        out.push_str(
            &self
                .counters
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"gauges\":{");
        out.push_str(
            &self
                .gauges
                .iter()
                .map(|(k, v)| format!("\"{}\":{:.3}", esc(k), v))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"histograms\":{");
        out.push_str(
            &self
                .histograms
                .iter()
                .map(|(k, h)| {
                    format!(
                        "\"{}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"mean\":{:.1}}}",
                        esc(k),
                        h.count,
                        h.percentile(0.50),
                        h.percentile(0.95),
                        h.percentile(0.99),
                        h.max,
                        h.mean()
                    )
                })
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"span_breakdown_ns\":{");
        out.push_str(
            &self
                .segment_breakdown()
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v:.1}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str("},\"spans_completed\":");
        out.push_str(&self.spans.len().to_string());
        if let Some(e2e) = self.span_total_mean() {
            out.push_str(&format!(",\"span_end_to_end_mean_ns\":{e2e:.1}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a.b.c").inc();
        r.counter("a.b.c").add(2);
        assert_eq!(r.counter("a.b.c").get(), 3);
    }

    #[test]
    fn registered_counter_shares_storage() {
        let r = Registry::new();
        let own = Counter::new();
        r.register_counter("guest.calls.sync", &own);
        own.add(5);
        assert_eq!(r.counter("guest.calls.sync").get(), 5);
        r.counter("guest.calls.sync").inc();
        assert_eq!(own.get(), 6, "registry writes show up in the owner");
    }

    #[test]
    fn take_zeroes_everything() {
        let r = Registry::new();
        r.counter("x").add(9);
        r.gauge("g").add(1.5);
        r.histogram("h").record(100);
        r.spans().stage((0, 1), Stage::Queued, 1, None);
        r.spans().stage((0, 1), Stage::Replied, 2, None);
        let snap = r.take();
        assert_eq!(snap.counters["x"], 9);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.spans.len(), 1);
        let after = r.snapshot();
        assert_eq!(after.counters["x"], 0);
        assert_eq!(after.gauges["g"], 0.0);
        assert_eq!(after.histograms["h"].count, 0);
        assert!(after.spans.is_empty());
    }

    #[test]
    fn gauge_accumulates_fractions() {
        let g = Gauge::new();
        g.add(0.25);
        g.add(0.5);
        assert!((g.get() - 0.75).abs() < 1e-12);
        assert!((g.take() - 0.75).abs() < 1e-12);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn render_text_lists_metrics() {
        let r = Registry::new();
        r.counter("guest.calls.sync").add(3);
        r.histogram("guest.call.clFinish").record(1000);
        let text = r.snapshot().render_text();
        assert!(text.contains("guest.calls.sync"));
        assert!(text.contains("guest.call.clFinish"));
        assert!(text.contains("p95"));
    }

    #[test]
    fn render_json_is_wellformed_enough() {
        let r = Registry::new();
        r.counter("a").inc();
        r.histogram("h").record(5);
        let json = r.snapshot().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"count\":1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }

    #[test]
    fn segment_breakdown_sums_to_total() {
        let r = Registry::new();
        let key = (1, 9);
        let s = r.spans();
        s.stage(key, Stage::GuestStart, 100, Some(1));
        s.stage(key, Stage::Sent, 150, None);
        s.stage(key, Stage::Queued, 250, None);
        s.stage(key, Stage::Forwarded, 300, None);
        s.stage(key, Stage::Executed, 900, Some(1));
        s.stage(key, Stage::Replied, 950, None);
        s.stage(key, Stage::GuestEnd, 1100, None);
        let snap = r.snapshot();
        let sum: f64 = snap.segment_breakdown().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 1000.0);
        assert_eq!(snap.span_total_mean(), Some(1000.0));
    }
}
