//! Extension experiment Ext-O: overload protection and graceful
//! degradation. A one-slot pool is driven at 1x, 2x, and 5x its capacity
//! by closed-loop clients; router admission control (bounded lane queues)
//! and end-to-end deadline budgets shed the excess with `Overloaded`
//! instead of queueing it, so *goodput* — completed calls per second —
//! plateaus at device capacity instead of collapsing, and the latency of
//! the calls that are admitted stays bounded by the queue the router is
//! willing to hold.
//!
//! The headline metrics:
//! - `goodput_plateau_ratio`: goodput at 5x offered load over goodput at
//!   1x. Without shedding this degrades as queues grow; with admission
//!   control it must stay near 1.0 (CI gates it at >= 0.8).
//! - `shed_accuracy`: client-observed `Overloaded` rejections over the
//!   stack's own count (router sheds + deadline/age drops + server
//!   expired discards). Every shed is reported to exactly one caller, so
//!   this must be 1.0 — rejections are accounted, never silent.
//!
//! Usage: `overload [--smoke]`. `--smoke` shrinks the run for CI; either
//! way a machine-readable `BENCH_overload.json` is written to the current
//! directory.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_bench::row;
use ava_core::{ApiStack, GuestConfig, SchedulerKind, StackConfig, VmPolicy};
use ava_guest::GuestError;
use ava_server::{ApiHandler, HandlerOutput};
use ava_spec::{compile_spec, FunctionDesc, LowerOptions, MapResolver};
use ava_telemetry::Registry;
use ava_transport::{CostModel, TransportKind};
use ava_wire::Value;

/// One sync operation that occupies the device for a declared cost.
const OV_SPEC: &str = r#"
api("ov", 1);
#define OV_OK 0
typedef int ov_status;
type(ov_status) { success(OV_OK); }
ov_status ov_work(unsigned long cost_us) {
  sync;
  resource(device_time_us, cost_us);
}
"#;

/// The "device": busy-spins for the declared cost under the slot's
/// handler mutex, so capacity is exactly `1e6 / cost_us` calls/sec.
struct SpinHandler;

impl ApiHandler for SpinHandler {
    fn dispatch(
        &mut self,
        _func: &FunctionDesc,
        args: &[Value],
    ) -> ava_server::Result<HandlerOutput> {
        let cost_us = match args.first() {
            Some(Value::U64(v)) => *v,
            Some(Value::U32(v)) => u64::from(*v),
            _ => 0,
        };
        let deadline = Instant::now() + Duration::from_micros(cost_us);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        Ok(HandlerOutput::ret(Value::I32(0)))
    }

    fn snapshot_object(&mut self, _kind: &str, _silo: u64) -> Option<Vec<u8>> {
        None
    }

    fn restore_object(&mut self, _kind: &str, _silo: u64, _data: &[u8]) -> bool {
        false
    }

    fn drop_object(&mut self, _kind: &str, _silo: u64) -> bool {
        false
    }
}

/// Per-thread tally from one closed-loop client.
#[derive(Default, Clone, Copy)]
struct ClientTally {
    attempts: u64,
    successes: u64,
    sheds: u64,
    other_errors: u64,
}

struct Scenario {
    name: String,
    offered_mult: usize,
    wall_s: f64,
    attempts: u64,
    successes: u64,
    goodput_cps: f64,
    client_sheds: u64,
    router_sheds: u64,
    deadline_drops: u64,
    age_drops: u64,
    server_expired_discards: u64,
    p50_us: u64,
    p99_us: u64,
    other_errors: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives `mult` closed-loop clients (each pacing itself to ~1x device
/// capacity) against a one-slot pool for `duration`. Offered load is
/// therefore ~`mult`x capacity; the protection stack decides what to
/// admit.
fn run_offered(mult: usize, cost_us: u64, duration: Duration) -> Scenario {
    let descriptor = Arc::new(
        compile_spec(OV_SPEC, &MapResolver::new(), LowerOptions::default())
            .expect("ov spec compiles"),
    );
    let config = StackConfig {
        transport: TransportKind::InProcess,
        cost_model: CostModel::free(),
        scheduler: SchedulerKind::Fifo,
        pool_size: 1,
        slot_inflight: 1,
        // The protection under test: at most 2 calls queued per lane and
        // 2 across the slot (each client here has one call outstanding,
        // so the slot limit is the one that bites), a 5ms staleness
        // ceiling in the router, and an 8ms end-to-end budget stamped by
        // the guest (no retries — every rejection is surfaced so the
        // accounting reconciles exactly).
        max_queue_depth: Some(2),
        max_slot_queue_depth: Some(2),
        max_queue_age: Some(Duration::from_millis(5)),
        guest: GuestConfig {
            call_deadline: Some(Duration::from_millis(8)),
            max_retries: 0,
            ..GuestConfig::default()
        },
        ..StackConfig::default()
    };
    let stack = Arc::new(ApiStack::new(
        Arc::clone(&descriptor),
        || Box::new(SpinHandler) as Box<dyn ApiHandler>,
        config,
    ));
    stack
        .set_telemetry(Registry::new())
        .expect("telemetry attaches");

    let barrier = Arc::new(std::sync::Barrier::new(mult + 1));
    let mut threads = Vec::new();
    let mut vm_ids = Vec::new();
    for _ in 0..mult {
        let (vm, lib) = stack.attach_vm(VmPolicy::default()).expect("vm attaches");
        vm_ids.push(vm);
        let barrier = Arc::clone(&barrier);
        let stack_ref = Arc::clone(&stack);
        threads.push(std::thread::spawn(move || {
            let _ = &stack_ref;
            let mut tally = ClientTally::default();
            let mut latencies_us: Vec<u64> = Vec::new();
            barrier.wait();
            let deadline = Instant::now() + duration;
            while Instant::now() < deadline {
                tally.attempts += 1;
                let t0 = Instant::now();
                match lib.call("ov_work", vec![Value::U64(cost_us)]) {
                    Ok(_) => {
                        tally.successes += 1;
                        latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    Err(GuestError::Overloaded) => {
                        tally.sheds += 1;
                        // Client-side backoff of one device-service-time:
                        // keeps each client's offered rate at ~1x capacity
                        // whether its calls are admitted or shed.
                        std::thread::sleep(Duration::from_micros(cost_us));
                    }
                    Err(_) => tally.other_errors += 1,
                }
            }
            (tally, latencies_us)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let results: Vec<(ClientTally, Vec<u64>)> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();
    let wall_s = start.elapsed().as_secs_f64();

    let mut attempts = 0u64;
    let mut successes = 0u64;
    let mut client_sheds = 0u64;
    let mut other_errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for (tally, lat) in results {
        attempts += tally.attempts;
        successes += tally.successes;
        client_sheds += tally.sheds;
        other_errors += tally.other_errors;
        latencies.extend(lat);
    }
    latencies.sort_unstable();

    let mut router_sheds = 0u64;
    let mut deadline_drops = 0u64;
    let mut age_drops = 0u64;
    let mut server_expired = 0u64;
    for &vm in &vm_ids {
        let rs = stack.vm_router_stats(vm).expect("router stats");
        router_sheds += rs.shed;
        deadline_drops += rs.deadline_drops;
        age_drops += rs.age_drops;
        server_expired += stack
            .vm_server_stats(vm)
            .expect("server stats")
            .expired_discards;
    }

    Scenario {
        name: format!("load_{mult}x"),
        offered_mult: mult,
        wall_s,
        attempts,
        successes,
        goodput_cps: successes as f64 / wall_s,
        client_sheds,
        router_sheds,
        deadline_drops,
        age_drops,
        server_expired_discards: server_expired,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        other_errors,
    }
}

fn print_scenario(s: &Scenario) {
    println!("## {} (offered ~{}x capacity)", s.name, s.offered_mult);
    let widths = [10usize, 10, 12, 10, 10, 9, 9];
    println!(
        "{}",
        row(
            &[
                "attempts".into(),
                "admitted".into(),
                "goodput/s".into(),
                "shed".into(),
                "expired".into(),
                "p50_us".into(),
                "p99_us".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                s.attempts.to_string(),
                s.successes.to_string(),
                format!("{:.0}", s.goodput_cps),
                s.client_sheds.to_string(),
                (s.deadline_drops + s.age_drops + s.server_expired_discards).to_string(),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
            ],
            &widths
        )
    );
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration = Duration::from_millis(if smoke { 600 } else { 2500 });
    let cost_us = 200u64;

    println!("# Overload protection on a shared device (Ext-O)");
    println!(
        "# 1 pool slot, {cost_us}us calls (capacity ~{:.0}/s); closed-loop clients at 1x/2x/5x",
        1e6 / cost_us as f64
    );
    println!();

    let mut scenarios = Vec::new();
    for mult in [1usize, 2, 5] {
        let s = run_offered(mult, cost_us, duration);
        print_scenario(&s);
        scenarios.push(s);
    }

    let goodput_1x = scenarios[0].goodput_cps;
    let goodput_5x = scenarios[2].goodput_cps;
    let goodput_plateau_ratio = goodput_5x / goodput_1x.max(1e-9);

    // Every rejection the stack made must surface as exactly one
    // client-observed Overloaded error — sheds are accounted, not silent.
    let stack_rejections: u64 = scenarios
        .iter()
        .map(|s| s.router_sheds + s.deadline_drops + s.age_drops + s.server_expired_discards)
        .sum();
    let client_rejections: u64 = scenarios.iter().map(|s| s.client_sheds).sum();
    let shed_accuracy = if stack_rejections == 0 && client_rejections == 0 {
        1.0
    } else {
        client_rejections as f64 / (stack_rejections as f64).max(1e-9)
    };
    let other_errors: u64 = scenarios.iter().map(|s| s.other_errors).sum();

    let mut json = String::from("{\n  \"bench\": \"overload\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"cost_us\": {cost_us},\n  \"duration_ms\": {},\n",
        duration.as_millis()
    ));
    json.push_str(&format!(
        "  \"goodput_plateau_ratio\": {goodput_plateau_ratio:.4},\n"
    ));
    json.push_str(&format!("  \"shed_accuracy\": {shed_accuracy:.4},\n"));
    json.push_str(&format!("  \"other_errors\": {other_errors},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"offered_mult\": {}, \"wall_s\": {:.3}, \
             \"attempts\": {}, \"successes\": {}, \"goodput_cps\": {:.1}, \
             \"client_sheds\": {}, \"router_sheds\": {}, \"deadline_drops\": {}, \
             \"age_drops\": {}, \"server_expired_discards\": {}, \
             \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            s.name,
            s.offered_mult,
            s.wall_s,
            s.attempts,
            s.successes,
            s.goodput_cps,
            s.client_sheds,
            s.router_sheds,
            s.deadline_drops,
            s.age_drops,
            s.server_expired_discards,
            s.p50_us,
            s.p99_us,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");

    println!(
        "# headline: goodput {:.0}/s at 1x -> {:.0}/s at 5x offered (plateau ratio {:.3}); \
         shed accuracy {:.3}; p99 {}us at 1x -> {}us at 5x",
        goodput_1x,
        goodput_5x,
        goodput_plateau_ratio,
        shed_accuracy,
        scenarios[0].p99_us,
        scenarios[2].p99_us
    );
    println!("# wrote BENCH_overload.json");
}
