//! End-to-end tests for the data-path transfer cache: content-addressed
//! buffer elision across guest library → router → API server, including
//! forced cache desync (NACK/resend convergence) and VM migration (epoch
//! reset). Results must be bit-identical with the cache on, off, or
//! mid-heal — the cache is a transport optimization, never a semantic.

use ava_core::{opencl_stack, GuestConfig, OpenClClient, StackConfig};
use ava_hypervisor::VmPolicy;
use ava_transport::{CostModel, TransportKind};
use simcl::types::*;
use simcl::{ClApi, SimCl};

fn config(cache_entries: usize) -> StackConfig {
    StackConfig {
        transport: TransportKind::SharedMemory,
        cost_model: CostModel::free(),
        guest: GuestConfig {
            payload_cache_entries: cache_entries,
            payload_cache_min_bytes: 64,
            ..GuestConfig::default()
        },
        ..StackConfig::default()
    }
}

/// A deterministic payload that does not compress into the eligibility
/// floor: every iteration ships the same bytes, which is exactly the
/// pattern iterative workloads (kmeans, backprop) produce.
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// One "training loop" against a virtual device: create a buffer, then
/// repeatedly upload the same host data, run nothing, and download it
/// back. Returns every downloaded snapshot.
fn iterative_writes(client: &OpenClClient, iters: usize, data: &[u8]) -> Vec<Vec<u8>> {
    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let buf = client
        .create_buffer(ctx, MemFlags::read_write(), data.len(), None)
        .unwrap();
    let mut reads = Vec::with_capacity(iters);
    for _ in 0..iters {
        client
            .enqueue_write_buffer(queue, buf, true, 0, data, &[], false)
            .unwrap();
        client.finish(queue).unwrap();
        let mut out = vec![0u8; data.len()];
        client
            .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
            .unwrap();
        reads.push(out);
    }
    reads
}

#[test]
fn elision_preserves_results_and_halves_payload_bytes() {
    let data = payload(8 << 10);
    let iters = 20;

    let stack_off = opencl_stack(SimCl::new(), config(0)).unwrap();
    let (vm_off, lib_off) = stack_off.attach_vm(VmPolicy::default()).unwrap();
    let reads_off = iterative_writes(&OpenClClient::new(lib_off), iters, &data);

    let stack_on = opencl_stack(SimCl::new(), config(64)).unwrap();
    let (vm_on, lib_on) = stack_on.attach_vm(VmPolicy::default()).unwrap();
    let client_on = OpenClClient::new(lib_on);
    let reads_on = iterative_writes(&client_on, iters, &data);

    // Bit-identical results regardless of the cache.
    assert_eq!(reads_off, reads_on);
    assert!(reads_on.iter().all(|r| r == &data));

    // The router saw the traffic shrink: every write after the first
    // shipped a 12-byte digest instead of the 8 KiB payload.
    let off = stack_off.vm_router_stats(vm_off).unwrap();
    let on = stack_on.vm_router_stats(vm_on).unwrap();
    assert_eq!(off.bytes_elided, 0);
    assert_eq!(off.cache_hits, 0);
    assert!(
        on.bytes_elided >= (iters as u64 - 1) * data.len() as u64,
        "elided {} bytes, expected at least {}",
        on.bytes_elided,
        (iters - 1) * data.len()
    );
    assert!(
        on.bytes_in * 2 <= off.bytes_in,
        "cache-on payload bytes {} not ≤ half of cache-off {}",
        on.bytes_in,
        off.bytes_in
    );

    // All three tiers agree on the hit count.
    let guest = client_on.library().stats();
    let server = stack_on.vm_server_stats(vm_on).unwrap();
    assert_eq!(guest.payload_cache_hits, iters as u64 - 1);
    assert_eq!(server.payload_cache_hits, iters as u64 - 1);
    assert_eq!(on.cache_hits, iters as u64 - 1);
    assert_eq!(guest.payload_cache_misses, 0);
    assert_eq!(server.payload_cache_misses, 0);
}

#[test]
fn forced_desync_heals_via_nack_and_converges() {
    let data = payload(4 << 10);
    let stack = opencl_stack(SimCl::new(), config(64)).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);

    // Warm the caches: second iteration onward is elided.
    let warm = iterative_writes(&client, 3, &data);
    assert!(warm.iter().all(|r| r == &data));

    // Wipe only the server's mirror — the guest still believes its
    // digests are known remotely, so its next elided write must be
    // NACKed and transparently resent in full.
    stack.desync_vm_payload_cache(vm).unwrap();
    let healed = iterative_writes(&client, 3, &data);
    assert!(healed.iter().all(|r| r == &data), "desync corrupted data");

    let server = stack.vm_server_stats(vm).unwrap();
    assert!(
        server.payload_cache_misses >= 1,
        "expected at least one NACK after the forced desync: {server:?}"
    );
    // Convergence: the resend repaired both sides, so elision resumed
    // (more hits than the single pre-desync warm run could produce).
    let router = stack.vm_router_stats(vm).unwrap();
    assert!(
        router.cache_misses >= 1,
        "router must account the NACK: {router:?}"
    );
    assert!(
        router.cache_hits > 2,
        "elision must resume after healing: {router:?}"
    );
}

#[test]
fn migration_resets_the_cache_epoch_without_corrupting_data() {
    let source = SimCl::new();
    let target = SimCl::new();
    let data = payload(4 << 10);

    let stack = opencl_stack(source, config(64)).unwrap();
    let (vm, lib) = stack.attach_vm(VmPolicy::default()).unwrap();
    let client = OpenClClient::new(lib);

    let platform = client.get_platform_ids().unwrap()[0];
    let device = client.get_device_ids(platform, DeviceType::All).unwrap()[0];
    let ctx = client.create_context(device).unwrap();
    let queue = client
        .create_command_queue(ctx, device, QueueProps::default())
        .unwrap();
    let buf = client
        .create_buffer(ctx, MemFlags::read_write(), data.len(), None)
        .unwrap();
    for _ in 0..3 {
        client
            .enqueue_write_buffer(queue, buf, true, 0, &data, &[], false)
            .unwrap();
        client.finish(queue).unwrap();
    }

    // Migrate: the restored server starts with an empty payload mirror
    // and the stack announces a new cache epoch to the guest.
    let tc = target.clone();
    let image = stack
        .migrate_vm(vm, move || Box::new(ava_core::OpenClHandler::new(tc)))
        .unwrap();
    assert!(!image.records.is_empty());

    // Post-migration writes still land the right bytes — whether the
    // epoch notice or a NACK wins the race, the protocol converges.
    for _ in 0..3 {
        client
            .enqueue_write_buffer(queue, buf, true, 0, &data, &[], false)
            .unwrap();
        client.finish(queue).unwrap();
    }
    let mut out = vec![0u8; data.len()];
    client
        .enqueue_read_buffer(queue, buf, true, 0, &mut out, &[], false)
        .unwrap();
    assert_eq!(out, data);

    // Elision re-warmed after the epoch reset: both sides repopulated.
    let router = stack.vm_router_stats(vm).unwrap();
    assert!(
        router.cache_hits >= 3,
        "elision must resume post-migration: {router:?}"
    );
}
