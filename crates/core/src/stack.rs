//! The assembled AvA stack: hypervisor + router + per-VM guest libraries
//! and API servers, wired over a chosen transport.
//!
//! [`ApiStack`] is API-agnostic: it is parameterized by a descriptor and a
//! handler factory (one fresh handler per VM, preserving the paper's
//! process-level isolation between guests). The OpenCL and MVNC
//! convenience constructors live in the crate root.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use ava_guest::{GuestConfig, GuestLibrary};
use ava_hypervisor::{
    BreakerConfig, Hypervisor, HypervisorError, PlacementPolicy, RouterConfig, SchedulerKind,
    VmPolicy, VmStats,
};
use ava_server::{
    shared_handler, ApiHandler, ApiServer, CallJournal, HandlerOutput, MemoryManager, MemoryStats,
    MigrationImage, ServerStats, SharedHandler,
};
use ava_spec::{ApiDescriptor, FunctionDesc};
use ava_telemetry::{
    pack_slots, Counter, EventKind, Gauge, Registry, SloConfig, SloMonitor, SloSubject,
    SloViolation, Telemetry, Tier,
};
use ava_transport::{CostModel, FaultPlan, Transport, TransportError, TransportKind};
use ava_wire::{ControlMessage, Message, Value, VmId};
use parking_lot::Mutex;

/// Stack-level errors.
#[derive(Debug)]
pub enum StackError {
    /// Hypervisor/router failure.
    Hypervisor(HypervisorError),
    /// Transport construction failure.
    Transport(TransportError),
    /// Server-side failure (e.g. during migration restore).
    Server(ava_server::ServerError),
    /// The VM id is unknown to this stack.
    UnknownVm(VmId),
    /// The operation requires a device pool (`StackConfig::pool_size > 0`).
    NotPooled,
    /// The pool-slot index is out of range.
    UnknownSlot(usize),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Hypervisor(e) => write!(f, "hypervisor: {e}"),
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::Server(e) => write!(f, "server: {e}"),
            Self::UnknownVm(id) => write!(f, "unknown VM {id}"),
            Self::NotPooled => write!(f, "stack has no device pool (pool_size is 0)"),
            Self::UnknownSlot(slot) => write!(f, "pool slot {slot} out of range"),
        }
    }
}

impl std::error::Error for StackError {}

impl From<HypervisorError> for StackError {
    fn from(e: HypervisorError) -> Self {
        StackError::Hypervisor(e)
    }
}

impl From<ava_server::ServerError> for StackError {
    fn from(e: ava_server::ServerError) -> Self {
        StackError::Server(e)
    }
}

/// Result alias for stack operations.
pub type Result<T> = std::result::Result<T, StackError>;

/// Supervisor-driven brownout policy: staged degradation under sustained
/// SLO burn (requires [`StackConfig::slo`] and attached telemetry).
///
/// Stage 1 trades throughput for latency — the router collapses batching
/// and halves its admission limits. Stage 2 additionally sheds the
/// lowest-priority tenants outright so the rest keep their SLO. Both
/// stages unwind automatically once the burn clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Consecutive violating SLO windows before entering stage 1.
    pub stage1_burn: u64,
    /// Consecutive violating windows before escalating to stage 2.
    pub stage2_burn: u64,
    /// Most tenants stage 2 may shed (lowest [`VmPolicy::priority`]
    /// first, ties broken by lowest VM id).
    pub max_shed: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            stage1_burn: 2,
            stage2_burn: 4,
            max_shed: 1,
        }
    }
}

/// Stack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackConfig {
    /// Guest↔hypervisor transport kind.
    pub transport: TransportKind,
    /// Cost model for the guest↔hypervisor transport.
    pub cost_model: CostModel,
    /// Cross-VM scheduler in the router.
    pub scheduler: SchedulerKind,
    /// Guest-library behaviour (batching).
    pub guest: GuestConfig,
    /// How many times the supervisor respawns a crashed API server before
    /// declaring the VM permanently unavailable.
    pub max_respawns: u32,
    /// How often the supervisor sweeps for dead API-server threads.
    pub supervision_interval: Duration,
    /// Number of shared devices in the pool. `0` (the default) preserves
    /// the historical behaviour: every VM gets a private device instance,
    /// and no placement or rebalancing ever happens. With `pool_size = N`,
    /// the stack constructs `N` shared handler instances up front and every
    /// attached VM is bound to one of them — VMs sharing a slot contend for
    /// that device's execution time for real (its handler mutex serializes
    /// them).
    pub pool_size: usize,
    /// How newly attached VMs are bound to pool slots (ignored when
    /// `pool_size` is 0).
    pub placement: PlacementPolicy,
    /// Router-side cap on sync calls in flight per pool slot (across all
    /// the slot's VMs). Keeps scheduling decisions in the router instead of
    /// laundering them through deep server-side queues.
    pub slot_inflight: usize,
    /// When set, the supervisor watches per-slot device time and migrates
    /// one VM from the hottest to the coolest slot whenever the hottest
    /// slot consumed at least this many more milliseconds of device time
    /// than the coolest over the last [`StackConfig::rebalance_interval`].
    /// `None` (the default) disables the watchdog; `rebalance_vm` is still
    /// available for explicit migration.
    pub rebalance_threshold_ms: Option<f64>,
    /// How often the load watchdog evaluates slot imbalance.
    pub rebalance_interval: Duration,
    /// Service-level objectives, evaluated by the supervisor on the
    /// [`StackConfig::rebalance_interval`] cadence once telemetry is
    /// attached ([`ApiStack::set_telemetry`]). A slot in violation is
    /// treated as hot by the rebalance watchdog even when the raw
    /// device-time gap alone would not trigger a migration. `None`
    /// disables SLO monitoring.
    pub slo: Option<SloConfig>,
    /// Soft per-slot (or per private device) ceiling on *resident* device
    /// memory, in bytes. When an allocation would push a device past this
    /// ceiling, the server proactively LRU-evicts cold buffers to the
    /// host-side swap store before dispatching — graceful overcommit
    /// instead of device OOM. `None` (the default) leaves eviction purely
    /// reactive (device OOM retry).
    pub device_mem_capacity: Option<u64>,
    /// Stack-wide default per-VM device-memory quota, in bytes: the most a
    /// VM may *own* (resident + swapped) before allocations are answered
    /// with `QuotaExceeded`. A per-VM [`VmPolicy::device_mem_quota`]
    /// overrides it. `None` (the default) leaves VMs unquota'd.
    pub device_mem_quota: Option<u64>,
    /// Router admission control: most calls queued per VM lane before new
    /// arrivals are shed with `Overloaded`. `None` (the default) admits
    /// unboundedly.
    pub max_queue_depth: Option<usize>,
    /// Router admission control: most sync calls queued across all of a
    /// pool slot's VMs before further arrivals to that slot are shed.
    pub max_slot_queue_depth: Option<usize>,
    /// Oldest a queued call may grow before the router drops it at
    /// dequeue instead of forwarding already-stale work.
    pub max_queue_age: Option<Duration>,
    /// Per-lane circuit breaker: after this many consecutive
    /// transport-failed replies the lane's traffic is shed until a
    /// half-open probe succeeds. `None` (the default) disables breakers.
    pub breaker: Option<BreakerConfig>,
    /// Staged brownout under sustained SLO burn, driven by the
    /// supervisor. `None` (the default) disables it; requires
    /// [`StackConfig::slo`].
    pub brownout: Option<BrownoutConfig>,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            transport: TransportKind::SharedMemory,
            cost_model: CostModel::paravirtual(),
            scheduler: SchedulerKind::Fifo,
            guest: GuestConfig::default(),
            max_respawns: 3,
            supervision_interval: Duration::from_millis(5),
            pool_size: 0,
            placement: PlacementPolicy::default(),
            slot_inflight: 2,
            rebalance_threshold_ms: None,
            rebalance_interval: Duration::from_millis(100),
            slo: None,
            device_mem_capacity: None,
            device_mem_quota: None,
            max_queue_depth: None,
            max_slot_queue_depth: None,
            max_queue_age: None,
            breaker: None,
            brownout: None,
        }
    }
}

/// Crash-recovery statistics for the whole stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// API servers respawned after a crash.
    pub respawns: u64,
    /// Journaled calls re-executed to rebuild crashed servers.
    pub replayed_calls: u64,
    /// Recoveries abandoned (respawn budget exhausted or the router is
    /// gone); the VM was marked unavailable.
    pub failed: u64,
}

/// Shared-storage counters behind [`RecoveryStats`]; registered into the
/// telemetry registry as `recovery.*`. They live at stack level — not on
/// the [`ApiServer`] — precisely because they must survive the servers
/// they describe.
#[derive(Clone, Default)]
struct RecoveryCounters {
    respawns: Counter,
    replayed_calls: Counter,
    failed: Counter,
}

impl RecoveryCounters {
    fn register(&self, registry: &Registry) {
        registry.register_counter("recovery.respawns", &self.respawns);
        registry.register_counter("recovery.replayed_calls", &self.replayed_calls);
        registry.register_counter("recovery.failed", &self.failed);
    }

    fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            respawns: self.respawns.get(),
            replayed_calls: self.replayed_calls.get(),
            failed: self.failed.get(),
        }
    }
}

/// Wraps a slot's handler so every dispatch is timed into the slot's
/// `pool.slot<N>.device_time_ms` gauge. The wrapper sits *inside* the
/// slot's shared mutex, so the measured interval is exactly the device
/// occupancy the mutex serializes.
struct TimedHandler {
    inner: Box<dyn ApiHandler>,
    device_time_ms: Gauge,
}

impl ApiHandler for TimedHandler {
    fn dispatch(
        &mut self,
        func: &FunctionDesc,
        args: &[Value],
    ) -> ava_server::Result<HandlerOutput> {
        let start = Instant::now();
        let out = self.inner.dispatch(func, args);
        self.device_time_ms.add(start.elapsed().as_secs_f64() * 1e3);
        out
    }

    fn swappable_kinds(&self) -> &[&str] {
        self.inner.swappable_kinds()
    }

    fn snapshot_object(&mut self, kind: &str, silo: u64) -> Option<Vec<u8>> {
        self.inner.snapshot_object(kind, silo)
    }

    fn restore_object(&mut self, kind: &str, silo: u64, data: &[u8]) -> bool {
        self.inner.restore_object(kind, silo, data)
    }

    fn drop_object(&mut self, kind: &str, silo: u64) -> bool {
        self.inner.drop_object(kind, silo)
    }

    fn ret_indicates_oom(&self, func: &FunctionDesc, ret: &Value) -> bool {
        self.inner.ret_indicates_oom(func, ret)
    }
}

/// One shared device in the pool: the handler every server bound to this
/// slot executes against, plus load gauges.
struct PoolSlot {
    handler: SharedHandler,
    device_time_ms: Gauge,
    vms: Gauge,
    /// Residency/swap accounting for every VM bound to this slot — the
    /// memory half of the slot's load. Shared by all the slot's servers so
    /// quota and capacity pressure see the device's true footprint.
    memory: Arc<MemoryManager>,
}

/// Load/occupancy snapshot of one pool slot (see [`ApiStack::pool_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolSlotStats {
    /// Wall-clock milliseconds of device time dispatched on this slot so
    /// far (time spent inside the slot's handler, under its mutex).
    pub device_time_ms: f64,
    /// VMs currently bound to this slot.
    pub vms: u32,
}

/// The shared-device pool: `pool_size` slots plus the VM→slot binding map.
struct PoolState {
    slots: Vec<PoolSlot>,
    placements: Mutex<HashMap<VmId, usize>>,
    rr_cursor: AtomicUsize,
}

impl PoolState {
    fn new<F>(size: usize, slot_factory: &F, mem_capacity: Option<u64>) -> Self
    where
        F: Fn(usize) -> Box<dyn ApiHandler> + ?Sized,
    {
        let slots = (0..size)
            .map(|i| {
                let device_time_ms = Gauge::new();
                let handler = shared_handler(Box::new(TimedHandler {
                    inner: slot_factory(i),
                    device_time_ms: device_time_ms.clone(),
                }));
                PoolSlot {
                    handler,
                    device_time_ms,
                    vms: Gauge::new(),
                    memory: Arc::new(MemoryManager::new(mem_capacity)),
                }
            })
            .collect();
        PoolState {
            slots,
            placements: Mutex::new(HashMap::new()),
            rr_cursor: AtomicUsize::new(0),
        }
    }

    fn register(&self, registry: &Registry) {
        for (i, slot) in self.slots.iter().enumerate() {
            registry.register_gauge(
                &format!("pool.slot{i}.device_time_ms"),
                &slot.device_time_ms,
            );
            registry.register_gauge(&format!("pool.slot{i}.vms"), &slot.vms);
            slot.memory.register(registry, &format!("slot{i}"));
        }
    }

    /// Chooses the slot for a newly attached VM.
    fn place(&self, policy: PlacementPolicy, hypervisor: &Hypervisor) -> usize {
        match policy {
            PlacementPolicy::RoundRobin => {
                self.rr_cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len()
            }
            PlacementPolicy::Packed => {
                // Fill the most occupied slot first (ties: lowest index),
                // maximizing idle slots.
                (0..self.slots.len())
                    .max_by(|&a, &b| {
                        self.slots[a]
                            .vms
                            .get()
                            .partial_cmp(&self.slots[b].vms.get())
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.cmp(&a))
                    })
                    .unwrap_or(0)
            }
            PlacementPolicy::LeastLoaded => {
                // Estimated device time already routed to each slot's VMs
                // (from the router's per-VM accounting), weighted by the
                // slot's resident device memory: a slot whose working set
                // is near eviction pressure scores worse than its compute
                // queue alone suggests. With no memory tracked the factor
                // is 1 and the ordering degenerates to time-only. Ties
                // broken by fewest VMs, then lowest index.
                let placements = self.placements.lock();
                let mut load = vec![0.0f64; self.slots.len()];
                for (&vm, &slot) in placements.iter() {
                    if let Ok(stats) = hypervisor.vm_stats(vm) {
                        load[slot] += stats.est_device_time_us;
                    }
                }
                let score: Vec<f64> = load
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        let resident = self.slots[i].memory.resident_bytes() as f64;
                        (1.0 + t) * (1.0 + resident)
                    })
                    .collect();
                (0..self.slots.len())
                    .min_by(|&a, &b| {
                        score[a]
                            .partial_cmp(&score[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| {
                                self.slots[a]
                                    .vms
                                    .get()
                                    .partial_cmp(&self.slots[b].vms.get())
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .then(a.cmp(&b))
                    })
                    .unwrap_or(0)
            }
        }
    }

    fn slot_of(&self, vm: VmId) -> Option<usize> {
        self.placements.lock().get(&vm).copied()
    }
}

/// Migrates one pooled VM to `dst`, reusing the crash-recovery machinery:
/// pause, quiesce, snapshot, free the source slot's device objects, replay
/// onto the destination slot's shared handler, re-home the router lane,
/// bump the cache epoch, resume. Shared by [`ApiStack::rebalance_vm`] and
/// the supervisor's load watchdog.
#[allow(clippy::too_many_arguments)]
fn rebalance(
    hypervisor: &Hypervisor,
    descriptor: &Arc<ApiDescriptor>,
    config: &StackConfig,
    vms: &Mutex<HashMap<VmId, VmRuntime>>,
    telemetry: &Mutex<Telemetry>,
    pool: &PoolState,
    vm: VmId,
    dst: usize,
) -> Result<()> {
    if dst >= pool.slots.len() {
        return Err(StackError::UnknownSlot(dst));
    }
    let src = pool.slot_of(vm).ok_or(StackError::UnknownVm(vm))?;
    if src == dst {
        return Ok(());
    }
    hypervisor.pause_vm(vm)?;
    if let Err(e) = hypervisor.wait_quiescent(vm, Duration::from_secs(30)) {
        let _ = hypervisor.resume_vm(vm);
        return Err(e.into());
    }

    let mut vms_guard = vms.lock();
    let runtime = vms_guard.get_mut(&vm).ok_or(StackError::UnknownVm(vm))?;
    runtime.halt();
    let image = {
        let mut server = runtime.server.lock();
        let image = server.snapshot();
        // Frees this VM's objects on the source slot's device; slot-mates
        // are untouched (their servers hold their own handle tables).
        // Teardown also drops the VM's residency registrations from the
        // source slot's memory manager.
        server.teardown();
        image
    };
    let mut restored = ApiServer::restore_with(
        Arc::clone(descriptor),
        Arc::clone(&pool.slots[dst].handler),
        &image,
    )?;
    restored.set_telemetry(telemetry.lock().with_vm(vm));
    restored.set_payload_cache(
        config.guest.payload_cache_entries,
        config.guest.payload_cache_min_bytes,
    );
    // Residency re-homes with the VM: the restored server re-registers
    // every surviving buffer (and re-parks still-swapped ones) with the
    // destination slot's accountant; the quota travels unchanged.
    restored.set_memory(Arc::clone(&pool.slots[dst].memory), vm);
    restored.set_mem_quota(runtime.mem_quota);
    runtime.memory = Arc::clone(&pool.slots[dst].memory);
    restored.set_journal(Arc::clone(&runtime.journal));
    runtime.server = Arc::new(Mutex::new(restored));
    runtime.spawn();
    // The restored server's payload mirror starts empty; a new epoch makes
    // the guest drop its digest cache instead of eating NACKs.
    runtime.cache_epoch += 1;
    let _ = runtime
        .transport
        .send(&Message::Control(ControlMessage::CacheEpoch(
            runtime.cache_epoch,
        )));
    drop(vms_guard);

    hypervisor.set_vm_slot(vm, Some(dst))?;
    pool.placements.lock().insert(vm, dst);
    pool.slots[src].vms.add(-1.0);
    pool.slots[dst].vms.add(1.0);
    hypervisor.resume_vm(vm)?;
    telemetry
        .lock()
        .with_vm(vm)
        .event(Tier::Pool, EventKind::Rebalance, 0, pack_slots(src, dst));
    Ok(())
}

/// Per-VM host-side runtime: the serving thread plus shared server state.
struct VmRuntime {
    stop: Arc<AtomicBool>,
    /// Simulated-crash flag: when set, the serving thread exits abruptly —
    /// no backlog drain, in-flight frames abandoned — exactly as if the
    /// API-server process had died.
    crashed: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    server: Arc<Mutex<ApiServer>>,
    transport: Arc<dyn Transport>,
    /// Transfer-cache epoch; bumped on migration so both ends drop their
    /// payload caches (the restored server starts with an empty mirror).
    cache_epoch: u64,
    /// Every call this VM's server executed, in order. Owned here — not by
    /// the server — because it must survive the server it describes: after
    /// a crash, replaying it is the only way to rebuild device state.
    journal: Arc<StdMutex<CallJournal>>,
    /// Respawns consumed so far (against [`StackConfig::max_respawns`]).
    respawns: u32,
    /// The residency accountant this VM's server reports into: the slot's
    /// shared manager for pooled VMs, a private one otherwise. Owned here —
    /// like the journal — because recovery must clear and rebuild the VM's
    /// registrations on whatever server replaces the crashed one.
    memory: Arc<MemoryManager>,
    /// Effective device-memory quota (policy override or stack default),
    /// re-applied to every server rebuilt for this VM.
    mem_quota: Option<u64>,
    /// Scheduling priority from the VM's policy, kept here so the
    /// supervisor's brownout stage 2 can pick the lowest-priority
    /// tenants to shed without a round-trip through the router.
    priority: u8,
}

impl VmRuntime {
    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn spawn(&mut self) {
        let stop = Arc::new(AtomicBool::new(false));
        let crashed = Arc::new(AtomicBool::new(false));
        self.stop = Arc::clone(&stop);
        self.crashed = Arc::clone(&crashed);
        let server = Arc::clone(&self.server);
        let transport = Arc::clone(&self.transport);
        self.thread = Some(
            std::thread::Builder::new()
                .name("ava-api-server".into())
                .spawn(move || serve_loop(&server, transport.as_ref(), &stop, &crashed))
                .expect("spawn API server thread"),
        );
    }
}

/// Serves one VM's calls until stop/shutdown (lock taken per message so
/// stats and migration can observe the server from other threads). On stop
/// the already-delivered backlog is drained first so migration never loses
/// in-flight calls; on a simulated crash the loop exits immediately,
/// abandoning the backlog, so recovery is exercised honestly.
fn serve_loop(
    server: &Mutex<ApiServer>,
    transport: &dyn Transport,
    stop: &AtomicBool,
    crashed: &AtomicBool,
) {
    loop {
        if crashed.load(Ordering::Acquire) {
            return;
        }
        if stop.load(Ordering::Acquire) {
            while let Ok(Some(msg)) = transport.try_recv() {
                if server.lock().serve_one(transport, msg).is_err() {
                    break;
                }
            }
            return;
        }
        match transport.recv_timeout(Duration::from_millis(2)) {
            Ok(Some(msg)) => {
                if server.lock().serve_one(transport, msg).is_err() {
                    return;
                }
            }
            Ok(None) => {}
            Err(_) => return,
        }
    }
}

/// Everything the supervisor thread needs to notice a dead API server and
/// rebuild it: the crash-recovery half of the stack, shared between
/// [`ApiStack`] and its background sweep.
struct Supervisor {
    hypervisor: Arc<Hypervisor>,
    descriptor: Arc<ApiDescriptor>,
    config: StackConfig,
    handler_factory: Arc<dyn Fn(usize) -> Box<dyn ApiHandler> + Send + Sync>,
    vms: Arc<Mutex<HashMap<VmId, VmRuntime>>>,
    telemetry: Arc<Mutex<Telemetry>>,
    recovery: RecoveryCounters,
    pool: Option<Arc<PoolState>>,
    /// SLO monitor, populated by `ApiStack::set_telemetry` (objectives
    /// need the registry to window over).
    slo: Arc<Mutex<Option<Arc<SloMonitor>>>>,
}

impl Supervisor {
    fn run(&self, stop: &AtomicBool) {
        let mut last_check = Instant::now();
        let mut last_time: Vec<f64> = self
            .pool
            .as_ref()
            .map(|p| vec![0.0; p.slots.len()])
            .unwrap_or_default();
        let mut brownout_stage: u8 = 0;
        let mut brownout_shed: Vec<VmId> = Vec::new();
        while !stop.load(Ordering::Acquire) {
            std::thread::sleep(self.config.supervision_interval);
            self.sweep();
            if last_check.elapsed() >= self.config.rebalance_interval {
                last_check = Instant::now();
                // SLO windows close on the watchdog cadence: the monitor
                // diffs this scrape against the previous one, and the
                // violations feed straight into the rebalance decision.
                let monitor = self.slo.lock().clone();
                let violations = match &monitor {
                    Some(m) => {
                        let placements: Vec<(VmId, usize)> = self
                            .pool
                            .as_ref()
                            .map(|p| p.placements.lock().iter().map(|(&v, &s)| (v, s)).collect())
                            .unwrap_or_default();
                        m.evaluate(&placements)
                    }
                    None => Vec::new(),
                };
                if let Some(bw) = self.config.brownout {
                    self.drive_brownout(bw, &violations, &mut brownout_stage, &mut brownout_shed);
                }
                if let Some(pool) = &self.pool {
                    self.maybe_rebalance(
                        pool,
                        self.config.rebalance_threshold_ms,
                        &mut last_time,
                        &violations,
                    );
                }
            }
        }
    }

    /// Brownout state machine, evaluated on the watchdog cadence. The
    /// stage follows the worst SLO burn across subjects: `stage1_burn`
    /// consecutive violating windows collapse batching and halve the
    /// router's admission limits; `stage2_burn` additionally sheds the
    /// lowest-priority tenants. Any clean window unwinds fully — the
    /// router re-admits shed tenants and restores its limits.
    fn drive_brownout(
        &self,
        cfg: BrownoutConfig,
        violations: &[SloViolation],
        stage: &mut u8,
        shed: &mut Vec<VmId>,
    ) {
        let burn = violations.iter().map(|v| v.burn).max().unwrap_or(0);
        let want_stage: u8 = if burn >= cfg.stage2_burn {
            2
        } else if burn >= cfg.stage1_burn {
            1
        } else {
            0
        };
        let want_shed: Vec<VmId> = if want_stage >= 2 {
            let vms = self.vms.lock();
            let mut by_prio: Vec<(u8, VmId)> =
                vms.iter().map(|(&vm, rt)| (rt.priority, vm)).collect();
            drop(vms);
            by_prio.sort_unstable();
            by_prio
                .into_iter()
                .take(cfg.max_shed)
                .map(|(_, vm)| vm)
                .collect()
        } else {
            Vec::new()
        };
        if (want_stage != *stage || want_shed != *shed)
            && self
                .hypervisor
                .set_brownout(want_stage, want_shed.clone())
                .is_ok()
        {
            *stage = want_stage;
            *shed = want_shed;
        }
    }

    /// Load watchdog: compares per-slot device time consumed over the last
    /// interval and migrates one VM (lowest id) from the hottest slot to
    /// the coolest when the gap exceeds the threshold. A slot in SLO
    /// violation is treated as hot regardless of the raw device-time gap —
    /// service quality is the contract; device time is only its proxy.
    /// Only acts when the hot slot has at least two VMs — a lone hot VM
    /// gains nothing from moving to an idle device of equal speed.
    fn maybe_rebalance(
        &self,
        pool: &Arc<PoolState>,
        threshold_ms: Option<f64>,
        last: &mut [f64],
        violations: &[SloViolation],
    ) {
        // Device time consumed over the window, weighted by resident
        // memory (1 + MiB resident): a slot under memory pressure is
        // hotter than its compute delta alone says, because every further
        // allocation there pays eviction/fault-in latency. With nothing
        // resident the weight is 1 and this is the raw device-time delta.
        let deltas: Vec<f64> = pool
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let cur = s.device_time_ms.get();
                let d = cur - last[i];
                last[i] = cur;
                let resident_mib = s.memory.resident_bytes() as f64 / (1u64 << 20) as f64;
                d * (1.0 + resident_mib)
            })
            .collect();
        let violating = violations.iter().find_map(|v| match v.subject {
            SloSubject::Slot(s) if s < deltas.len() => Some(s),
            _ => None,
        });
        let hot = match violating {
            Some(slot) => slot,
            None => {
                let Some(threshold) = threshold_ms else {
                    return;
                };
                let Some(hot) = (0..deltas.len()).max_by(|&a, &b| {
                    deltas[a]
                        .partial_cmp(&deltas[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) else {
                    return;
                };
                let Some(cold) = (0..deltas.len()).min_by(|&a, &b| {
                    deltas[a]
                        .partial_cmp(&deltas[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) else {
                    return;
                };
                if hot == cold || deltas[hot] - deltas[cold] < threshold {
                    return;
                }
                hot
            }
        };
        let Some(cold) = (0..deltas.len()).filter(|&i| i != hot).min_by(|&a, &b| {
            deltas[a]
                .partial_cmp(&deltas[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            return;
        };
        let victim = {
            let placements = pool.placements.lock();
            if placements.values().filter(|&&s| s == hot).count() < 2 {
                return;
            }
            placements
                .iter()
                .filter(|&(_, &s)| s == hot)
                .map(|(&vm, _)| vm)
                .min()
        };
        if let Some(vm) = victim {
            let _ = rebalance(
                &self.hypervisor,
                &self.descriptor,
                &self.config,
                &self.vms,
                &self.telemetry,
                pool,
                vm,
                cold,
            );
        }
    }

    /// One pass over every VM: a serving thread that exited without being
    /// asked to stop is a crashed server, and gets rebuilt in place.
    fn sweep(&self) {
        let mut vms = self.vms.lock();
        for (&vm, runtime) in vms.iter_mut() {
            let dead = runtime.thread.as_ref().is_some_and(|t| t.is_finished())
                && !runtime.stop.load(Ordering::Acquire);
            if dead {
                self.recover(vm, runtime);
            }
        }
    }

    /// Rebuilds one crashed API server: fresh handler, journal replay to
    /// reconstruct device state (wire handles re-mint deterministically, so
    /// the guest's handles stay valid), new router↔server channel, respawn.
    /// When the respawn budget is exhausted the VM is declared permanently
    /// unavailable instead, so guests fail fast.
    fn recover(&self, vm: VmId, runtime: &mut VmRuntime) {
        // Sever the old channel first: the router parks the lane and
        // requeues in-flight calls instead of writing into a channel
        // nobody will ever read again.
        runtime.transport.close();
        if let Some(t) = runtime.thread.take() {
            let _ = t.join();
        }
        let telemetry = self.telemetry.lock().with_vm(vm);
        telemetry.event(Tier::Supervisor, EventKind::ServerCrash, 0, 0);
        if runtime.respawns >= self.config.max_respawns {
            self.recovery.failed.inc();
            let _ = self.hypervisor.mark_unavailable(vm);
            return;
        }
        runtime.respawns += 1;
        // Pooled VMs recover onto their slot's shared device: the device
        // itself survived the server crash, but the crashed server's handle
        // table died with it, so replay re-creates this VM's objects there
        // (the crashed server's orphaned objects linger until slot
        // teardown — the price of sharing a device). Private VMs get a
        // fresh device instance, as before.
        let handler = match self.pool.as_ref().and_then(|p| p.slot_of(vm)) {
            Some(slot) => Arc::clone(
                &self.pool.as_ref().expect("pool exists for placed VM").slots[slot].handler,
            ),
            None => shared_handler((self.handler_factory)(0)),
        };
        let mut server = ApiServer::with_shared(Arc::clone(&self.descriptor), handler);
        server.set_telemetry(telemetry.clone());
        server.set_payload_cache(
            self.config.guest.payload_cache_entries,
            self.config.guest.payload_cache_min_bytes,
        );
        // The crashed server's residency registrations describe state that
        // died with it; wipe them, then let journal replay re-register the
        // rebuilt allocations (replay runs with the accountant and quota
        // already attached, so residency is rematerialized exactly as the
        // original execution produced it).
        runtime.memory.free_all(vm);
        server.set_memory(Arc::clone(&runtime.memory), vm);
        server.set_mem_quota(runtime.mem_quota);
        let entries = match runtime.journal.lock() {
            Ok(journal) => journal.entries().to_vec(),
            Err(poisoned) => poisoned.into_inner().entries().to_vec(),
        };
        let replayed = server.replay_journal(&entries);
        self.recovery.replayed_calls.add(replayed);
        telemetry.event(Tier::Supervisor, EventKind::JournalReplay, 0, replayed);
        // Attach the journal only after replay, so replayed calls are not
        // journaled a second time.
        server.set_journal(Arc::clone(&runtime.journal));

        let transport = match self.hypervisor.reattach_server(vm) {
            Ok(t) => t,
            Err(_) => {
                self.recovery.failed.inc();
                let _ = self.hypervisor.mark_unavailable(vm);
                return;
            }
        };
        if let Some(registry) = telemetry.registry() {
            transport.register_telemetry(registry, &format!("vm{vm}.server"));
        }
        runtime.server = Arc::new(Mutex::new(server));
        runtime.transport = Arc::from(transport);
        // The rebuilt payload mirror is empty; announce a new epoch so the
        // guest drops its digest cache instead of eating a NACK per payload.
        runtime.cache_epoch += 1;
        let _ = runtime
            .transport
            .send(&Message::Control(ControlMessage::CacheEpoch(
                runtime.cache_epoch,
            )));
        telemetry.event(
            Tier::Supervisor,
            EventKind::ServerRespawn,
            0,
            u64::from(runtime.respawns),
        );
        // Counted only now: observers waiting on `recovery.respawns` must
        // see the replay/replayed-calls counters already settled.
        self.recovery.respawns.inc();
        runtime.spawn();
    }
}

/// An assembled AvA stack for one API.
pub struct ApiStack {
    hypervisor: Arc<Hypervisor>,
    descriptor: Arc<ApiDescriptor>,
    config: StackConfig,
    handler_factory: Arc<dyn Fn(usize) -> Box<dyn ApiHandler> + Send + Sync>,
    vms: Arc<Mutex<HashMap<VmId, VmRuntime>>>,
    telemetry: Arc<Mutex<Telemetry>>,
    recovery: RecoveryCounters,
    pool: Option<Arc<PoolState>>,
    slo: Arc<Mutex<Option<Arc<SloMonitor>>>>,
    supervisor_stop: Arc<AtomicBool>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl ApiStack {
    /// Builds a stack for `descriptor`; `handler_factory` produces one
    /// fresh API handler per attached VM (and per crash recovery) when the
    /// stack has no pool, or one per pool slot when it does.
    pub fn new<F>(descriptor: Arc<ApiDescriptor>, handler_factory: F, config: StackConfig) -> Self
    where
        F: Fn() -> Box<dyn ApiHandler> + Send + Sync + 'static,
    {
        ApiStack::new_indexed(descriptor, move |_| handler_factory(), config)
    }

    /// Like [`ApiStack::new`], but the factory receives the pool-slot
    /// index it is building a device for — the constructor for pools of
    /// *distinct* physical devices (`pool_size` slots are built eagerly,
    /// indices `0..pool_size`). With `pool_size = 0` the index is always 0.
    pub fn new_indexed<F>(
        descriptor: Arc<ApiDescriptor>,
        handler_factory: F,
        config: StackConfig,
    ) -> Self
    where
        F: Fn(usize) -> Box<dyn ApiHandler> + Send + Sync + 'static,
    {
        let hypervisor = Arc::new(Hypervisor::with_config(RouterConfig {
            scheduler: config.scheduler,
            descriptor: Some(Arc::clone(&descriptor)),
            slot_inflight: config.slot_inflight,
            max_queue_depth: config.max_queue_depth,
            max_slot_queue_depth: config.max_slot_queue_depth,
            max_queue_age: config.max_queue_age,
            breaker: config.breaker,
            ..RouterConfig::default()
        }));
        let handler_factory: Arc<dyn Fn(usize) -> Box<dyn ApiHandler> + Send + Sync> =
            Arc::new(handler_factory);
        let pool = (config.pool_size > 0).then(|| {
            Arc::new(PoolState::new(
                config.pool_size,
                &*handler_factory,
                config.device_mem_capacity,
            ))
        });
        let vms = Arc::new(Mutex::new(HashMap::new()));
        let telemetry = Arc::new(Mutex::new(Telemetry::disabled()));
        let recovery = RecoveryCounters::default();
        let slo: Arc<Mutex<Option<Arc<SloMonitor>>>> = Arc::new(Mutex::new(None));
        let supervisor = Supervisor {
            hypervisor: Arc::clone(&hypervisor),
            descriptor: Arc::clone(&descriptor),
            config,
            handler_factory: Arc::clone(&handler_factory),
            vms: Arc::clone(&vms),
            telemetry: Arc::clone(&telemetry),
            recovery: recovery.clone(),
            pool: pool.clone(),
            slo: Arc::clone(&slo),
        };
        let supervisor_stop = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&supervisor_stop);
        let supervisor = std::thread::Builder::new()
            .name("ava-supervisor".into())
            .spawn(move || supervisor.run(&stop))
            .expect("spawn supervisor thread");
        ApiStack {
            hypervisor,
            descriptor,
            config,
            handler_factory,
            vms,
            telemetry,
            recovery,
            pool,
            slo,
            supervisor_stop,
            supervisor: Some(supervisor),
        }
    }

    /// Attaches a unified telemetry registry to every tier: router counters
    /// and span stamps, stack-level `recovery.*` counters, plus
    /// guest/server/transport instrumentation for each VM attached from now
    /// on. Call before [`ApiStack::attach_vm`].
    pub fn set_telemetry(&self, registry: Registry) -> Result<()> {
        self.recovery.register(&registry);
        if let Some(pool) = &self.pool {
            pool.register(&registry);
        }
        // SLO objectives window over the registry, so the monitor can only
        // come alive once one is attached.
        if let Some(slo_config) = self.config.slo.filter(SloConfig::any_enabled) {
            *self.slo.lock() = Some(Arc::new(SloMonitor::new(registry.clone(), slo_config)));
        }
        let telemetry = Telemetry::new(registry);
        *self.telemetry.lock() = telemetry.clone();
        self.hypervisor.set_telemetry(telemetry)?;
        Ok(())
    }

    /// The latest SLO-evaluation window's violations; empty when no SLO is
    /// configured, telemetry is not attached, or every objective is met.
    /// The rebalance watchdog consults the same list before migrating.
    pub fn slo_violations(&self) -> Vec<SloViolation> {
        self.slo
            .lock()
            .as_ref()
            .map(|m| m.violations())
            .unwrap_or_default()
    }

    /// Renders the attached registry as a text report; `None` when
    /// telemetry was never attached.
    pub fn telemetry_report(&self) -> Option<String> {
        self.telemetry.lock().report()
    }

    /// Renders the attached registry as Chrome-trace / Perfetto JSON;
    /// `None` when telemetry was never attached.
    pub fn export_trace(&self) -> Option<String> {
        self.telemetry.lock().export_trace()
    }

    /// Renders the attached registry as Prometheus text exposition;
    /// `None` when telemetry was never attached.
    pub fn export_prometheus(&self) -> Option<String> {
        self.telemetry.lock().export_prometheus()
    }

    /// The API descriptor this stack serves.
    pub fn descriptor(&self) -> &Arc<ApiDescriptor> {
        &self.descriptor
    }

    /// The hypervisor (for pause/resume/stats).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hypervisor
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Ids of every currently attached VM, ascending. The daemon-facing
    /// listing primitive: control planes enumerate their tenants' VMs
    /// through this instead of tracking attach/detach themselves.
    pub fn vm_ids(&self) -> Vec<VmId> {
        let mut ids: Vec<VmId> = self.vms.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Boots a VM: attaches it to the router, starts its API server, and
    /// returns the guest library its applications link against.
    pub fn attach_vm(&self, policy: VmPolicy) -> Result<(VmId, Arc<GuestLibrary>)> {
        self.attach_vm_with_faults(policy, None, None)
    }

    /// Like [`ApiStack::attach_vm`], but with deterministic fault injection
    /// on the guest↔hypervisor channel (chaos testing): `guest_tx_plan`
    /// faults the frames the guest sends (calls), `guest_rx_plan` the
    /// frames it receives (replies). Each direction draws from its own
    /// seeded schedule, so a chaos run is reproducible from the seeds.
    pub fn attach_vm_with_faults(
        &self,
        policy: VmPolicy,
        guest_tx_plan: Option<FaultPlan>,
        guest_rx_plan: Option<FaultPlan>,
    ) -> Result<(VmId, Arc<GuestLibrary>)> {
        // Pooled stacks bind the VM to a slot chosen by the placement
        // policy: its server executes against that slot's shared handler,
        // and the router accounts the lane against the slot's in-flight
        // budget. Private stacks keep a fresh device per VM, as ever.
        let (slot, handler) = match &self.pool {
            Some(pool) => {
                let slot = pool.place(self.config.placement, &self.hypervisor);
                (Some(slot), Arc::clone(&pool.slots[slot].handler))
            }
            None => (None, shared_handler((self.handler_factory)(0))),
        };
        // Pooled VMs share the slot's residency accountant (quota and
        // capacity pressure see the device's true footprint); private VMs
        // get their own. Per-VM policy quota beats the stack default.
        let memory = match (&self.pool, slot) {
            (Some(pool), Some(slot)) => Arc::clone(&pool.slots[slot].memory),
            _ => Arc::new(MemoryManager::new(self.config.device_mem_capacity)),
        };
        let mem_quota = policy.device_mem_quota.or(self.config.device_mem_quota);
        let priority = policy.priority;
        let conn = self.hypervisor.add_vm_full(
            policy,
            self.config.transport,
            self.config.cost_model,
            slot,
            guest_tx_plan,
            guest_rx_plan,
        )?;
        let telemetry = self.telemetry.lock().with_vm(conn.vm_id);
        let mut server = ApiServer::with_shared(Arc::clone(&self.descriptor), handler);
        server.set_telemetry(telemetry.clone());
        // The server's payload mirror must match the guest's transfer cache
        // exactly (same capacity, same eligibility floor) — the stack is
        // the single source of truth for both.
        server.set_payload_cache(
            self.config.guest.payload_cache_entries,
            self.config.guest.payload_cache_min_bytes,
        );
        server.set_memory(Arc::clone(&memory), conn.vm_id);
        server.set_mem_quota(mem_quota);
        if let Some(registry) = telemetry.registry() {
            conn.guest
                .register_telemetry(registry, &format!("vm{}.guest", conn.vm_id));
            conn.server
                .register_telemetry(registry, &format!("vm{}.server", conn.vm_id));
            // Pooled managers are registered per-slot (`mem.slot<N>.*`) by
            // `PoolState::register`; private ones get a per-VM scope here.
            if self.pool.is_none() {
                memory.register(registry, &format!("vm{}", conn.vm_id));
            }
        }
        let journal = Arc::new(StdMutex::new(CallJournal::new()));
        server.set_journal(Arc::clone(&journal));
        let mut runtime = VmRuntime {
            stop: Arc::new(AtomicBool::new(true)),
            crashed: Arc::new(AtomicBool::new(false)),
            thread: None,
            server: Arc::new(Mutex::new(server)),
            transport: Arc::from(conn.server),
            cache_epoch: 0,
            journal,
            respawns: 0,
            memory,
            mem_quota,
            priority,
        };
        runtime.spawn();
        self.vms.lock().insert(conn.vm_id, runtime);
        if let (Some(pool), Some(slot)) = (&self.pool, slot) {
            pool.placements.lock().insert(conn.vm_id, slot);
            pool.slots[slot].vms.add(1.0);
            telemetry.event(Tier::Pool, EventKind::Placement, 0, slot as u64);
        }
        let mut lib =
            GuestLibrary::new(Arc::clone(&self.descriptor), conn.guest, self.config.guest);
        lib.attach_telemetry(telemetry);
        Ok((conn.vm_id, Arc::new(lib)))
    }

    /// The pool slot a VM is bound to; `None` for private-device stacks
    /// (or unknown VMs).
    pub fn vm_slot(&self, vm: VmId) -> Option<usize> {
        self.pool.as_ref().and_then(|p| p.slot_of(vm))
    }

    /// Per-slot load statistics; empty for private-device stacks.
    pub fn pool_stats(&self) -> Vec<PoolSlotStats> {
        self.pool
            .as_ref()
            .map(|pool| {
                pool.slots
                    .iter()
                    .map(|s| PoolSlotStats {
                        device_time_ms: s.device_time_ms.get(),
                        vms: s.vms.get().max(0.0) as u32,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Live-migrates a pooled VM to pool slot `dst` (§4.3 applied to
    /// load rebalancing): pause, quiesce, snapshot, free its objects on the
    /// source slot's device, replay onto the destination slot's shared
    /// handler, re-home the router lane, resume. The guest's transport and
    /// wire handles survive unchanged; a no-op when the VM is already on
    /// `dst`. Fails with [`StackError::NotPooled`] on private stacks.
    pub fn rebalance_vm(&self, vm: VmId, dst: usize) -> Result<()> {
        let pool = self.pool.as_ref().ok_or(StackError::NotPooled)?;
        rebalance(
            &self.hypervisor,
            &self.descriptor,
            &self.config,
            &self.vms,
            &self.telemetry,
            pool,
            vm,
            dst,
        )
    }

    /// Router-side statistics for a VM.
    pub fn vm_router_stats(&self, vm: VmId) -> Result<VmStats> {
        Ok(self.hypervisor.vm_stats(vm)?)
    }

    /// Forces a brownout stage on the router (stage 0 exits). Traffic
    /// from `shed` VMs is refused with `Overloaded` while the stage
    /// holds. The supervisor drives this automatically when
    /// [`StackConfig::brownout`] is set; this hook exists for tests,
    /// benches, and operator overrides.
    pub fn set_brownout(&self, stage: u8, shed: Vec<VmId>) -> Result<()> {
        Ok(self.hypervisor.set_brownout(stage, shed)?)
    }

    /// Server-side statistics for a VM.
    pub fn vm_server_stats(&self, vm: VmId) -> Result<ServerStats> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        let stats = runtime.server.lock().stats();
        Ok(stats)
    }

    /// Estimated live device memory held by a VM's server.
    pub fn vm_live_device_mem(&self, vm: VmId) -> Result<u64> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        let mem = runtime.server.lock().live_device_mem();
        Ok(mem)
    }

    /// Residency/swap statistics from the memory manager a VM reports
    /// into. For pooled VMs this is the *slot's* accountant, so the totals
    /// cover every VM sharing that device; [`ApiStack::vm_owned_device_mem`]
    /// gives the single-VM footprint.
    pub fn vm_memory_stats(&self, vm: VmId) -> Result<MemoryStats> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        Ok(runtime.memory.stats())
    }

    /// Bytes of device memory a VM currently *owns* (resident + swapped) —
    /// the footprint its quota is enforced against.
    pub fn vm_owned_device_mem(&self, vm: VmId) -> Result<u64> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        Ok(runtime.memory.vm_bytes(vm))
    }

    /// Per-slot residency/swap statistics; empty for private-device stacks.
    pub fn pool_memory_stats(&self) -> Vec<MemoryStats> {
        self.pool
            .as_ref()
            .map(|pool| pool.slots.iter().map(|s| s.memory.stats()).collect())
            .unwrap_or_default()
    }

    /// Detaches a VM and stops its server.
    pub fn detach_vm(&self, vm: VmId) -> Result<()> {
        let mut vms = self.vms.lock();
        let mut runtime = vms.remove(&vm).ok_or(StackError::UnknownVm(vm))?;
        runtime.halt();
        // Release the VM's residency accounting (and any host-store swap
        // payloads it still owned) from its slot's shared accountant.
        runtime.memory.free_all(vm);
        self.hypervisor.remove_vm(vm)?;
        if let Some(pool) = &self.pool {
            if let Some(slot) = pool.placements.lock().remove(&vm) {
                pool.slots[slot].vms.add(-1.0);
            }
        }
        Ok(())
    }

    /// Migrates a VM's API state to a new host backend (§4.3): pause,
    /// quiesce, snapshot, free source device resources, replay onto a
    /// fresh handler, restore payloads, resume. The guest's transport and
    /// wire handles survive unchanged.
    pub fn migrate_vm<F>(&self, vm: VmId, target_handler: F) -> Result<MigrationImage>
    where
        F: FnOnce() -> Box<dyn ApiHandler>,
    {
        self.hypervisor.pause_vm(vm)?;
        self.hypervisor
            .wait_quiescent(vm, Duration::from_secs(30))?;

        let mut vms = self.vms.lock();
        let runtime = vms.get_mut(&vm).ok_or(StackError::UnknownVm(vm))?;
        runtime.halt();

        let image = {
            let mut server = runtime.server.lock();
            let image = server.snapshot();
            server.teardown();
            image
        };

        let mut restored =
            ApiServer::restore(Arc::clone(&self.descriptor), target_handler(), &image)?;
        restored.set_telemetry(self.telemetry.lock().with_vm(vm));
        restored.set_payload_cache(
            self.config.guest.payload_cache_entries,
            self.config.guest.payload_cache_min_bytes,
        );
        // Migrating onto a private handler re-homes residency onto a fresh
        // private accountant (the source teardown already released the
        // VM's registrations from the old one); the restore path replays
        // allocation sizes and re-parks still-swapped buffers.
        {
            let memory = Arc::new(MemoryManager::new(self.config.device_mem_capacity));
            restored.set_memory(Arc::clone(&memory), vm);
            restored.set_mem_quota(runtime.mem_quota);
            runtime.memory = memory;
        }
        // The journal keeps accumulating across migrations: it already
        // holds the pre-migration history, so a later crash still replays
        // the full execution and re-mints the same wire handles.
        restored.set_journal(Arc::clone(&runtime.journal));
        runtime.server = Arc::new(Mutex::new(restored));
        runtime.spawn();
        // The restored server's payload mirror starts empty; announce the
        // new epoch so the guest proactively drops its digest cache instead
        // of discovering the desync one NACK at a time. (The NACK/resend
        // path would heal it regardless — this is an optimization, and the
        // reason record/replay stays sound: replay only ever sees the
        // materialized bytes resolved before recording.)
        runtime.cache_epoch += 1;
        let _ = runtime
            .transport
            .send(&Message::Control(ControlMessage::CacheEpoch(
                runtime.cache_epoch,
            )));
        drop(vms);

        // Migrating onto a caller-supplied private handler takes the VM
        // off the pool: its objects now live on the target device, so the
        // router must stop charging its calls to the old slot.
        if let Some(pool) = &self.pool {
            if let Some(slot) = pool.placements.lock().remove(&vm) {
                pool.slots[slot].vms.add(-1.0);
                self.hypervisor.set_vm_slot(vm, None)?;
            }
        }

        self.hypervisor.resume_vm(vm)?;
        Ok(image)
    }

    /// Live-migrates a VM onto a fresh device instance built by the
    /// stack's own handler factory — the control-plane form of
    /// [`ApiStack::migrate_vm`], for callers (like the `avad` daemon) that
    /// cannot supply a handler closure over the wire. Pooled VMs leave
    /// the pool, exactly as with an explicit target handler.
    pub fn migrate_vm_fresh(&self, vm: VmId) -> Result<()> {
        let factory = Arc::clone(&self.handler_factory);
        self.migrate_vm(vm, move || factory(0))?;
        Ok(())
    }

    /// Wipes a VM's server-side payload cache while leaving the guest's
    /// digest cache untouched — a deliberate desync. Test hook for
    /// exercising the `CacheMiss` NACK/resend convergence path end-to-end.
    pub fn desync_vm_payload_cache(&self, vm: VmId) -> Result<()> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        runtime.server.lock().clear_payload_cache();
        Ok(())
    }

    /// Kills a VM's API server mid-flight, abandoning all server state —
    /// the crash the supervisor exists to heal. Test hook for recovery
    /// paths: the serving thread exits without draining, frames in flight
    /// on the severed channel are lost, and the supervisor rebuilds the
    /// server by journal replay.
    pub fn crash_vm_server(&self, vm: VmId) -> Result<()> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        runtime.crashed.store(true, Ordering::Release);
        runtime.transport.close();
        Ok(())
    }

    /// Crash-recovery statistics (respawns, replayed calls, abandoned
    /// recoveries) for the whole stack.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.stats()
    }

    /// A snapshot of a VM's execution journal. Its call ids being unique
    /// ([`CallJournal::call_ids_unique`]) is the at-most-once guarantee
    /// made observable: no call ever executed device-side twice, however
    /// many duplicate frames the transport delivered.
    pub fn vm_journal(&self, vm: VmId) -> Result<CallJournal> {
        let vms = self.vms.lock();
        let runtime = vms.get(&vm).ok_or(StackError::UnknownVm(vm))?;
        let journal = match runtime.journal.lock() {
            Ok(journal) => journal.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        Ok(journal)
    }
}

impl Drop for ApiStack {
    fn drop(&mut self) {
        self.supervisor_stop.store(true, Ordering::Release);
        if let Some(t) = self.supervisor.take() {
            let _ = t.join();
        }
        for (_, runtime) in self.vms.lock().iter_mut() {
            runtime.halt();
        }
    }
}
