/*
 * OpenCL subset header for the AvA reproduction.
 *
 * Shapes follow the Khronos cl.h; a small number of signatures are
 * simplified where the original multiplexes types through void* in ways
 * the CAvA annotation language cannot express (documented in DESIGN.md):
 *   - clCreateProgramWithSource takes one source string;
 *   - clSetKernelArg is split into scalar/mem/local variants;
 *   - clCreateImage takes explicit geometry instead of descriptor structs;
 *   - single-value Get*Info queries return through a typed out-pointer.
 */
#ifndef AVA_CL_H
#define AVA_CL_H 1

#define CL_SUCCESS 0
#define CL_DEVICE_NOT_FOUND -1
#define CL_MEM_OBJECT_ALLOCATION_FAILURE -4
#define CL_OUT_OF_RESOURCES -5
#define CL_OUT_OF_HOST_MEMORY -6
#define CL_PROFILING_INFO_NOT_AVAILABLE -7
#define CL_BUILD_PROGRAM_FAILURE -11
#define CL_INVALID_VALUE -30
#define CL_INVALID_DEVICE -33
#define CL_INVALID_CONTEXT -34
#define CL_INVALID_QUEUE_PROPERTIES -35
#define CL_INVALID_COMMAND_QUEUE -36
#define CL_INVALID_MEM_OBJECT -38
#define CL_INVALID_PROGRAM -44
#define CL_INVALID_PROGRAM_EXECUTABLE -45
#define CL_INVALID_KERNEL_NAME -46
#define CL_INVALID_KERNEL -48
#define CL_INVALID_ARG_INDEX -49
#define CL_INVALID_ARG_VALUE -50
#define CL_INVALID_ARG_SIZE -51
#define CL_INVALID_KERNEL_ARGS -52
#define CL_INVALID_WORK_DIMENSION -53
#define CL_INVALID_WORK_GROUP_SIZE -54
#define CL_INVALID_EVENT_WAIT_LIST -57
#define CL_INVALID_EVENT -58
#define CL_INVALID_BUFFER_SIZE -61

#define CL_FALSE 0
#define CL_TRUE 1

#define CL_DEVICE_TYPE_GPU (1 << 2)
#define CL_DEVICE_TYPE_ACCELERATOR (1 << 3)
#define CL_DEVICE_TYPE_ALL 0xFFFFFFFF

#define CL_PLATFORM_NAME 0x0902
#define CL_PLATFORM_VENDOR 0x0903
#define CL_PLATFORM_VERSION 0x0901

#define CL_DEVICE_NAME 0x102B
#define CL_DEVICE_VENDOR 0x102C
#define CL_DEVICE_MAX_COMPUTE_UNITS 0x1002
#define CL_DEVICE_MAX_WORK_GROUP_SIZE 0x1004
#define CL_DEVICE_GLOBAL_MEM_SIZE 0x101F
#define CL_DEVICE_LOCAL_MEM_SIZE 0x1023
#define CL_DEVICE_TYPE_INFO 0x1000

#define CL_QUEUE_PROFILING_ENABLE (1 << 1)

#define CL_MEM_READ_WRITE (1 << 0)
#define CL_MEM_WRITE_ONLY (1 << 1)
#define CL_MEM_READ_ONLY (1 << 2)
#define CL_MEM_COPY_HOST_PTR (1 << 5)

#define CL_PROFILING_COMMAND_QUEUED 0x1280
#define CL_PROFILING_COMMAND_SUBMIT 0x1281
#define CL_PROFILING_COMMAND_START 0x1282
#define CL_PROFILING_COMMAND_END 0x1283

typedef int cl_int;
typedef unsigned int cl_uint;
typedef unsigned long cl_ulong;
typedef cl_uint cl_bool;
typedef cl_ulong cl_bitfield;
typedef cl_bitfield cl_device_type;
typedef cl_bitfield cl_mem_flags;
typedef cl_bitfield cl_command_queue_properties;
typedef cl_uint cl_platform_info;
typedef cl_uint cl_device_info;

typedef struct _cl_platform_id *cl_platform_id;
typedef struct _cl_device_id *cl_device_id;
typedef struct _cl_context *cl_context;
typedef struct _cl_command_queue *cl_command_queue;
typedef struct _cl_mem *cl_mem;
typedef struct _cl_program *cl_program;
typedef struct _cl_kernel *cl_kernel;
typedef struct _cl_event *cl_event;

/* Platform and device discovery. */
cl_int clGetPlatformIDs(cl_uint num_entries, cl_platform_id *platforms,
                        cl_uint *num_platforms);
cl_int clGetPlatformInfo(cl_platform_id platform, cl_platform_info param_name,
                         size_t param_value_size, void *param_value,
                         size_t *param_value_size_ret);
cl_int clGetDeviceIDs(cl_platform_id platform, cl_device_type device_type,
                      cl_uint num_entries, cl_device_id *devices,
                      cl_uint *num_devices);
cl_int clGetDeviceInfo(cl_device_id device, cl_device_info param_name,
                       size_t param_value_size, void *param_value,
                       size_t *param_value_size_ret);

/* Contexts. */
cl_context clCreateContext(cl_uint num_devices, const cl_device_id *devices,
                           void (*pfn_notify)(const char *, const void *, size_t, void *),
                           void *user_data, cl_int *errcode_ret);
cl_int clRetainContext(cl_context context);
cl_int clReleaseContext(cl_context context);
cl_int clGetContextInfo(cl_context context, cl_device_id *device);

/* Command queues. */
cl_command_queue clCreateCommandQueue(cl_context context, cl_device_id device,
                                      cl_command_queue_properties properties,
                                      cl_int *errcode_ret);
cl_int clRetainCommandQueue(cl_command_queue command_queue);
cl_int clReleaseCommandQueue(cl_command_queue command_queue);

/* Memory objects. */
cl_mem clCreateBuffer(cl_context context, cl_mem_flags flags, size_t size,
                      const void *host_ptr, cl_int *errcode_ret);
cl_mem clCreateImage(cl_context context, cl_mem_flags flags, size_t width,
                     size_t height, size_t elem_size, const void *host_ptr,
                     cl_int *errcode_ret);
cl_int clRetainMemObject(cl_mem memobj);
cl_int clReleaseMemObject(cl_mem memobj);
cl_int clGetMemObjectInfo(cl_mem memobj, size_t *size);

/* Programs. */
cl_program clCreateProgramWithSource(cl_context context, const char *source,
                                     cl_int *errcode_ret);
cl_int clBuildProgram(cl_program program, const char *options);
cl_int clCompileProgram(cl_program program, const char *options);
cl_int clGetProgramBuildInfo(cl_program program, size_t param_value_size,
                             void *param_value, size_t *param_value_size_ret);
cl_int clRetainProgram(cl_program program);
cl_int clReleaseProgram(cl_program program);

/* Kernels. */
cl_kernel clCreateKernel(cl_program program, const char *kernel_name,
                         cl_int *errcode_ret);
cl_int clCreateKernelsInProgram(cl_program program, cl_uint num_kernels,
                                cl_kernel *kernels, cl_uint *num_kernels_ret);
cl_int clRetainKernel(cl_kernel kernel);
cl_int clReleaseKernel(cl_kernel kernel);
cl_int clSetKernelArg(cl_kernel kernel, cl_uint arg_index, size_t arg_size,
                      const void *arg_value);
cl_int clSetKernelArgMem(cl_kernel kernel, cl_uint arg_index, cl_mem mem);
cl_int clSetKernelArgLocal(cl_kernel kernel, cl_uint arg_index, size_t size);
cl_int clGetKernelWorkGroupInfo(cl_kernel kernel, cl_device_id device,
                                size_t *work_group_size);

/* Enqueue operations. */
cl_int clEnqueueNDRangeKernel(cl_command_queue command_queue, cl_kernel kernel,
                              cl_uint work_dim, const size_t *global_work_offset,
                              const size_t *global_work_size,
                              const size_t *local_work_size,
                              cl_uint num_events_in_wait_list,
                              const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueTask(cl_command_queue command_queue, cl_kernel kernel,
                     cl_uint num_events_in_wait_list,
                     const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueReadBuffer(cl_command_queue command_queue, cl_mem buf,
                           cl_bool blocking_read, size_t offset, size_t size,
                           void *ptr, cl_uint num_events_in_wait_list,
                           const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueWriteBuffer(cl_command_queue command_queue, cl_mem buf,
                            cl_bool blocking_write, size_t offset, size_t size,
                            const void *ptr, cl_uint num_events_in_wait_list,
                            const cl_event *event_wait_list, cl_event *event);
cl_int clEnqueueCopyBuffer(cl_command_queue command_queue, cl_mem src_buffer,
                           cl_mem dst_buffer, size_t src_offset,
                           size_t dst_offset, size_t size,
                           cl_uint num_events_in_wait_list,
                           const cl_event *event_wait_list, cl_event *event);

/* Synchronization and events. */
cl_int clFlush(cl_command_queue command_queue);
cl_int clFinish(cl_command_queue command_queue);
cl_int clWaitForEvents(cl_uint num_events, const cl_event *event_list);
cl_int clGetEventInfo(cl_event event, cl_int *execution_status);
cl_int clGetEventProfilingInfo(cl_event event, cl_uint param_name,
                               cl_ulong *param_value);
cl_int clRetainEvent(cl_event event);
cl_int clReleaseEvent(cl_event event);

#endif /* AVA_CL_H */
