//! `backprop` — Rodinia's back-propagation training step for a
//! three-layer perceptron: a forward pass through the hidden layer and a
//! weight-adjustment pass.

use simcl::kernels::KernelRegistry;
use simcl::mem::{as_f32, as_f32_mut};
use simcl::types::KernelArg;
use simcl::ClApi;

use crate::harness::{close_enough, ClWorkload, Result, Scale, Session, WorkloadError, XorShift};

/// OpenCL C source (signatures drive `clSetKernelArg` validation).
pub const SOURCE: &str = r#"
__kernel void bpnn_layerforward(__global const float *input,
                                __global const float *weights,
                                __global float *hidden,
                                const uint in_n, const uint hid_n) {
    int j = get_global_id(0);
    if (j < hid_n) {
        float sum = 0.0f;
        for (uint i = 0; i < in_n; i++) sum += input[i] * weights[i * hid_n + j];
        hidden[j] = 1.0f / (1.0f + exp(-sum));
    }
}
__kernel void bpnn_adjust_weights(__global const float *delta,
                                  __global const float *input,
                                  __global float *weights,
                                  const uint in_n, const uint hid_n,
                                  const float eta) {
    int i = get_global_id(0);
    if (i < in_n)
        for (uint j = 0; j < hid_n; j++)
            weights[i * hid_n + j] += eta * delta[j] * input[i];
}
"#;

/// The backprop workload.
pub struct Backprop {
    in_n: usize,
    hid_n: usize,
    epochs: usize,
}

impl Backprop {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Backprop {
                in_n: 256,
                hid_n: 8,
                epochs: 2,
            },
            Scale::Bench => Backprop {
                in_n: 64 * 1024,
                hid_n: 16,
                epochs: 8,
            },
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = XorShift::new(0xbac0);
        let input: Vec<f32> = (0..self.in_n).map(|_| rng.next_f32()).collect();
        let weights: Vec<f32> = (0..self.in_n * self.hid_n)
            .map(|_| rng.next_f32() * 0.02 - 0.01)
            .collect();
        (input, weights)
    }

    fn cpu_forward(&self, input: &[f32], weights: &[f32]) -> Vec<f32> {
        (0..self.hid_n)
            .map(|j| {
                let mut sum = 0.0f32;
                for i in 0..self.in_n {
                    sum += input[i] * weights[i * self.hid_n + j];
                }
                1.0 / (1.0 + (-sum).exp())
            })
            .collect()
    }
}

impl ClWorkload for Backprop {
    fn name(&self) -> &'static str {
        "backprop"
    }

    fn register(&self, registry: &KernelRegistry) {
        registry.register_fn("bpnn_layerforward", |inv| {
            let in_n = inv.scalar_u32(3)? as usize;
            let hid_n = inv.scalar_u32(4)? as usize;
            let [input, weights, hidden] = inv.bufs([0, 1, 2])?;
            let (input, weights) = (as_f32(input), as_f32(weights));
            let hidden = as_f32_mut(hidden);
            for j in 0..hid_n.min(hidden.len()) {
                let mut sum = 0.0f32;
                for i in 0..in_n {
                    sum += input[i] * weights[i * hid_n + j];
                }
                hidden[j] = 1.0 / (1.0 + (-sum).exp());
            }
            Ok(())
        });
        registry.register_fn("bpnn_adjust_weights", |inv| {
            let in_n = inv.scalar_u32(3)? as usize;
            let hid_n = inv.scalar_u32(4)? as usize;
            let eta = inv.scalar_f32(5)?;
            let [delta, input, weights] = inv.bufs([0, 1, 2])?;
            let (delta, input) = (as_f32(delta), as_f32(input));
            let weights = as_f32_mut(weights);
            for i in 0..in_n {
                for j in 0..hid_n {
                    weights[i * hid_n + j] += eta * delta[j] * input[i];
                }
            }
            Ok(())
        });
    }

    fn run(&self, api: &dyn ClApi) -> Result<f64> {
        let (input, weights) = self.inputs();
        let mut session = Session::open(api)?;
        session.build(SOURCE)?;
        let k_fwd = session.kernel("bpnn_layerforward")?;
        let k_adj = session.kernel("bpnn_adjust_weights")?;

        let b_input = session.buffer_f32(&input)?;
        let b_weights = session.buffer_f32(&weights)?;
        let b_hidden = session.buffer_zeroed(self.hid_n * 4)?;
        let b_delta = session.buffer_zeroed(self.hid_n * 4)?;

        let mut checksum = 0.0f64;
        let mut first_hidden: Vec<f32> = Vec::new();
        for epoch in 0..self.epochs {
            session.set_args(
                k_fwd,
                &[
                    KernelArg::Mem(b_input),
                    KernelArg::Mem(b_weights),
                    KernelArg::Mem(b_hidden),
                    KernelArg::from_u32(self.in_n as u32),
                    KernelArg::from_u32(self.hid_n as u32),
                ],
            )?;
            session.run_1d(k_fwd, self.hid_n)?;
            let hidden = session.read_f32(b_hidden, self.hid_n)?;
            if epoch == 0 {
                first_hidden = hidden.clone();
            }

            // Host computes the output-layer delta (target = 0.5).
            let delta: Vec<f32> = hidden.iter().map(|h| h * (1.0 - h) * (0.5 - h)).collect();
            session.write_f32(b_delta, &delta)?;
            session.set_args(
                k_adj,
                &[
                    KernelArg::Mem(b_delta),
                    KernelArg::Mem(b_input),
                    KernelArg::Mem(b_weights),
                    KernelArg::from_u32(self.in_n as u32),
                    KernelArg::from_u32(self.hid_n as u32),
                    KernelArg::from_f32(0.3),
                ],
            )?;
            session.run_1d(k_adj, self.in_n)?;
            checksum = hidden.iter().map(|&h| f64::from(h)).sum();
        }
        session.finish()?;

        // Validate the first epoch's forward pass against the CPU.
        let reference = self.cpu_forward(&input, &weights);
        for (a, b) in reference.iter().zip(first_hidden.iter()) {
            if !close_enough(*a, *b, 1e-4) {
                return Err(WorkloadError::Validation(format!(
                    "forward mismatch: cpu {a} vs device {b}"
                )));
            }
        }
        let final_weights = session.read_f32(b_weights, self.in_n * self.hid_n)?;
        if final_weights.iter().any(|w| !w.is_finite()) {
            return Err(WorkloadError::Validation("weights diverged".into()));
        }

        for mem in [b_input, b_weights, b_hidden, b_delta] {
            session.release(mem)?;
        }
        session.close()?;
        Ok(checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backprop_runs_and_validates_native() {
        let wl = Backprop::new(Scale::Test);
        let registry = Arc::new(KernelRegistry::new());
        wl.register(&registry);
        let cl =
            simcl::SimCl::with_devices_and_registry(vec![simcl::DeviceConfig::default()], registry);
        let checksum = wl.run(&cl).unwrap();
        assert!(checksum.is_finite() && checksum > 0.0);
        // Deterministic across runs.
        assert_eq!(checksum, wl.run(&cl).unwrap());
    }
}
