//! In-process channel transport.
//!
//! Messages are passed by value over a crossbeam channel — no serialization
//! and (by default) no modelled costs. This is the baseline "ideal"
//! transport, and it also backs the router↔server hop when both run in the
//! same host process.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ava_wire::Message;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::{Result, TransportError};
use crate::latency::{wait_until, CostModel};
use crate::stats::{StatsCell, TransportStats};
use crate::Transport;

/// A message annotated with the instant it becomes deliverable.
enum Timed {
    /// An ordinary message.
    Msg {
        /// When the receiver may observe the message.
        deliver_at: Instant,
        /// The message itself.
        msg: Message,
    },
    /// Sent by [`Transport::close`] so a blocked receiver wakes up.
    Closed,
}

/// One endpoint of an in-process transport pair.
pub struct InProcTransport {
    tx: Sender<Timed>,
    rx: Receiver<Timed>,
    model: CostModel,
    stats: Arc<StatsCell>,
    closed: Arc<std::sync::atomic::AtomicBool>,
}

/// Creates a connected pair with the given cost model.
pub fn pair(model: CostModel) -> (InProcTransport, InProcTransport) {
    let (tx_ab, rx_ab) = channel::unbounded();
    let (tx_ba, rx_ba) = channel::unbounded();
    let closed = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let a = InProcTransport {
        tx: tx_ab,
        rx: rx_ba,
        model,
        stats: StatsCell::new(),
        closed: Arc::clone(&closed),
    };
    let b = InProcTransport {
        tx: tx_ba,
        rx: rx_ab,
        model,
        stats: StatsCell::new(),
        closed,
    };
    (a, b)
}

impl InProcTransport {
    fn deliver(&self, timed: Timed) -> Result<Message> {
        match timed {
            Timed::Msg { deliver_at, msg } => {
                wait_until(deliver_at);
                self.stats.on_recv(msg.payload_bytes(), 0);
                Ok(msg)
            }
            Timed::Closed => Err(TransportError::Closed),
        }
    }

    fn check_open(&self) -> Result<()> {
        if self.closed.load(std::sync::atomic::Ordering::Acquire) {
            Err(TransportError::Closed)
        } else {
            Ok(())
        }
    }

    /// `Err(Closed)` once the pair is closed *and* this end's queue is
    /// empty; pending frames that raced the close stay receivable.
    fn closed_after_drain(&self) -> Result<()> {
        if self.closed.load(std::sync::atomic::Ordering::Acquire) && self.rx.is_empty() {
            Err(TransportError::Closed)
        } else {
            Ok(())
        }
    }
}

impl Transport for InProcTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        self.check_open()?;
        let payload = msg.payload_bytes();
        let now = Instant::now();
        let timed = Timed::Msg {
            deliver_at: self.model.deliver_at(now, payload),
            msg: msg.clone(),
        };
        self.tx.send(timed).map_err(|_| TransportError::Closed)?;
        self.stats.on_send(payload, 0);
        wait_until(now + self.model.sender_overhead);
        Ok(())
    }

    fn recv(&self) -> Result<Message> {
        // Poll rather than block indefinitely: once the pair is closed and
        // the backlog (including the wake-up sentinel) has been drained, a
        // blocked receiver must still observe `Closed` rather than hang —
        // the sentinel is consumed by whichever receive gets there first.
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(timed) => return self.deliver(timed),
                Err(RecvTimeoutError::Timeout) => self.closed_after_drain()?,
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Message>> {
        match self.rx.try_recv() {
            // A message whose deliver-at lies ahead is drained anyway
            // (blocking the short remainder) rather than re-queued, which
            // would reorder traffic.
            Ok(timed) => self.deliver(timed).map(Some),
            Err(TryRecvError::Empty) => {
                self.closed_after_drain()?;
                Ok(None)
            }
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>> {
        match self.rx.recv_timeout(timeout) {
            Ok(timed) => self.deliver(timed).map(Some),
            Err(RecvTimeoutError::Timeout) => {
                self.closed_after_drain()?;
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn close(&self) {
        self.closed
            .store(true, std::sync::atomic::Ordering::Release);
        // Wake a receiver blocked on the peer end.
        let _ = self.tx.send(Timed::Closed);
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn register_telemetry(&self, registry: &ava_telemetry::Registry, prefix: &str) {
        self.stats.register_into(registry, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_wire::{CallMode, CallRequest, ControlMessage, Value};

    fn call(id: u64, bytes: usize) -> Message {
        Message::Call(CallRequest {
            call_id: id,
            fn_id: 1,
            mode: CallMode::Sync,
            args: vec![Value::Bytes(bytes::Bytes::from(vec![0u8; bytes]))],
            budget_us: 0,
        })
    }

    #[test]
    fn round_trip_preserves_order() {
        let (a, b) = pair(CostModel::free());
        for i in 0..100 {
            a.send(&call(i, 10)).unwrap();
        }
        for i in 0..100 {
            match b.recv().unwrap() {
                Message::Call(req) => assert_eq!(req.call_id, i),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn try_recv_on_empty_returns_none() {
        let (a, b) = pair(CostModel::free());
        assert_eq!(b.try_recv().unwrap(), None);
        a.send(&call(1, 0)).unwrap();
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn recv_timeout_expires() {
        let (_a, b) = pair(CostModel::free());
        let got = b.recv_timeout(Duration::from_millis(10)).unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn dropped_peer_closes_channel() {
        let (a, b) = pair(CostModel::free());
        drop(a);
        assert_eq!(b.recv().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn stats_count_traffic() {
        let (a, b) = pair(CostModel::free());
        a.send(&call(1, 500)).unwrap();
        a.send(&Message::Control(ControlMessage::Ping(0))).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().messages_sent, 2);
        assert_eq!(a.stats().payload_bytes_sent, 500);
        assert_eq!(b.stats().messages_received, 2);
        assert_eq!(b.stats().payload_bytes_received, 500);
    }

    #[test]
    fn latency_model_delays_delivery() {
        let model = CostModel {
            delivery_latency: Duration::from_millis(5),
            ..CostModel::free()
        };
        let (a, b) = pair(model);
        let start = Instant::now();
        a.send(&call(1, 0)).unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn bandwidth_model_charges_large_payloads() {
        let model = CostModel {
            bytes_per_sec: Some(1_000_000), // 1 MB/s
            ..CostModel::free()
        };
        let (a, b) = pair(model);
        let start = Instant::now();
        a.send(&call(1, 10_000)).unwrap(); // 10 ms at 1 MB/s
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
    }
}
