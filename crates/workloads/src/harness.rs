//! Workload harness: the contract every benchmark implements, plus a
//! session helper that wraps the OpenCL boilerplate while preserving the
//! real API call pattern (the thing that determines remoting overhead).

use std::fmt;

use simcl::kernels::KernelRegistry;
use simcl::types::*;
use simcl::{ClApi, ClError};

/// Workload failure.
#[derive(Debug)]
pub enum WorkloadError {
    /// An OpenCL call failed.
    Cl(ClError),
    /// An NCSDK call failed.
    Nc(simnc::NcError),
    /// Output validation failed.
    Validation(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cl(e) => write!(f, "OpenCL error: {e}"),
            Self::Nc(e) => write!(f, "NCSDK error: {e}"),
            Self::Validation(m) => write!(f, "validation failed: {m}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ClError> for WorkloadError {
    fn from(e: ClError) -> Self {
        WorkloadError::Cl(e)
    }
}

impl From<simnc::NcError> for WorkloadError {
    fn from(e: simnc::NcError) -> Self {
        WorkloadError::Nc(e)
    }
}

/// Result alias for workloads.
pub type Result<T> = std::result::Result<T, WorkloadError>;

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit tests (sub-millisecond kernels).
    Test,
    /// Benchmark inputs (tens to hundreds of milliseconds end-to-end).
    Bench,
}

/// An OpenCL workload: registers its kernels, then runs end-to-end against
/// any [`ClApi`] implementation (native silo or AvA remoting client).
pub trait ClWorkload: Send + Sync {
    /// Benchmark name (Rodinia-style).
    fn name(&self) -> &'static str;

    /// Registers the Rust kernel bodies this workload's program needs.
    fn register(&self, registry: &KernelRegistry);

    /// Runs the workload end-to-end; returns a checksum of the results.
    /// Implementations must verify their own invariants and return
    /// [`WorkloadError::Validation`] on bad output.
    fn run(&self, api: &dyn ClApi) -> Result<f64>;
}

/// Shared OpenCL session boilerplate.
///
/// The helper performs exactly the calls a Rodinia host program performs —
/// nothing is batched or elided, so the per-call cost structure AvA
/// interposes on is preserved.
pub struct Session<'a> {
    /// The API being driven.
    pub api: &'a dyn ClApi,
    /// Selected device.
    pub device: ClDevice,
    /// Context for this run.
    pub ctx: ClContext,
    /// In-order command queue (profiling enabled).
    pub queue: ClQueue,
    program: Option<ClProgram>,
    /// Kernels created through this session; released by [`Session::close`]
    /// (a kernel object pins its bound argument buffers, so leaking kernels
    /// leaks device memory).
    kernels: std::cell::RefCell<Vec<ClKernel>>,
}

impl<'a> Session<'a> {
    /// Discovers the platform/device and builds context + queue.
    pub fn open(api: &'a dyn ClApi) -> Result<Self> {
        let platform = api.get_platform_ids()?[0];
        let device = api.get_device_ids(platform, DeviceType::All)?[0];
        let ctx = api.create_context(device)?;
        let queue = api.create_command_queue(ctx, device, QueueProps { profiling: true })?;
        Ok(Session {
            api,
            device,
            ctx,
            queue,
            program: None,
            kernels: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// Compiles `source` and remembers the program.
    pub fn build(&mut self, source: &str) -> Result<()> {
        let program = self.api.create_program_with_source(self.ctx, source)?;
        self.api.build_program(program, "")?;
        self.program = Some(program);
        Ok(())
    }

    /// Creates a kernel from the built program.
    pub fn kernel(&self, name: &str) -> Result<ClKernel> {
        let program = self
            .program
            .ok_or_else(|| WorkloadError::Validation("Session::build not called".into()))?;
        let kernel = self.api.create_kernel(program, name)?;
        self.kernels.borrow_mut().push(kernel);
        Ok(kernel)
    }

    /// Creates a read-write buffer initialized with `f32` data.
    pub fn buffer_f32(&self, data: &[f32]) -> Result<ClMem> {
        Ok(self.api.create_buffer(
            self.ctx,
            MemFlags::read_write(),
            data.len() * 4,
            Some(&simcl::mem::f32_to_bytes(data)),
        )?)
    }

    /// Creates a read-write buffer initialized with `i32` data.
    pub fn buffer_i32(&self, data: &[i32]) -> Result<ClMem> {
        Ok(self.api.create_buffer(
            self.ctx,
            MemFlags::read_write(),
            data.len() * 4,
            Some(&simcl::mem::i32_to_bytes(data)),
        )?)
    }

    /// Creates an uninitialized (zeroed) buffer of `len` bytes.
    pub fn buffer_zeroed(&self, len: usize) -> Result<ClMem> {
        Ok(self
            .api
            .create_buffer(self.ctx, MemFlags::read_write(), len, None)?)
    }

    /// Blocking read of a whole `f32` buffer.
    pub fn read_f32(&self, mem: ClMem, count: usize) -> Result<Vec<f32>> {
        let mut raw = vec![0u8; count * 4];
        self.api
            .enqueue_read_buffer(self.queue, mem, true, 0, &mut raw, &[], false)?;
        Ok(simcl::mem::bytes_to_f32(&raw))
    }

    /// Blocking read of a whole `i32` buffer.
    pub fn read_i32(&self, mem: ClMem, count: usize) -> Result<Vec<i32>> {
        let mut raw = vec![0u8; count * 4];
        self.api
            .enqueue_read_buffer(self.queue, mem, true, 0, &mut raw, &[], false)?;
        Ok(simcl::mem::bytes_to_i32(&raw))
    }

    /// Non-blocking write of `f32` data into a buffer.
    pub fn write_f32(&self, mem: ClMem, data: &[f32]) -> Result<()> {
        self.api.enqueue_write_buffer(
            self.queue,
            mem,
            false,
            0,
            &simcl::mem::f32_to_bytes(data),
            &[],
            false,
        )?;
        Ok(())
    }

    /// Sets several kernel arguments starting at index 0.
    pub fn set_args(&self, kernel: ClKernel, args: &[KernelArg]) -> Result<()> {
        for (i, arg) in args.iter().enumerate() {
            self.api.set_kernel_arg(kernel, i as u32, arg.clone())?;
        }
        Ok(())
    }

    /// Enqueues a 1-D NDRange.
    pub fn run_1d(&self, kernel: ClKernel, global: usize) -> Result<()> {
        self.api
            .enqueue_nd_range_kernel(self.queue, kernel, [global, 1, 1], None, &[], false)?;
        Ok(())
    }

    /// Enqueues a 2-D NDRange.
    pub fn run_2d(&self, kernel: ClKernel, gx: usize, gy: usize) -> Result<()> {
        self.api
            .enqueue_nd_range_kernel(self.queue, kernel, [gx, gy, 1], None, &[], false)?;
        Ok(())
    }

    /// Waits for the queue to drain.
    pub fn finish(&self) -> Result<()> {
        Ok(self.api.finish(self.queue)?)
    }

    /// Releases a buffer.
    pub fn release(&self, mem: ClMem) -> Result<()> {
        Ok(self.api.release_mem_object(mem)?)
    }

    /// Releases session objects (kernels, program, queue, context).
    pub fn close(self) -> Result<()> {
        self.api.finish(self.queue)?;
        for kernel in self.kernels.borrow_mut().drain(..) {
            self.api.release_kernel(kernel)?;
        }
        if let Some(program) = self.program {
            self.api.release_program(program)?;
        }
        self.api.release_command_queue(self.queue)?;
        self.api.release_context(self.ctx)?;
        Ok(())
    }
}

/// A deterministic xorshift PRNG so workloads are reproducible without
/// threading `rand` through every kernel body.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator from a seed (0 is mapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f32 in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform usize in [0, bound).
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// Relative-error check used by validations.
pub fn close_enough(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..1000 {
            let va = a.next_f32();
            assert_eq!(va, b.next_f32());
            assert!((0.0..1.0).contains(&va));
        }
        let mut c = XorShift::new(0);
        assert!(c.next_below(10) < 10);
    }

    #[test]
    fn close_enough_tolerates_small_errors() {
        assert!(close_enough(1.0, 1.0 + 1e-6, 1e-4));
        assert!(!close_enough(1.0, 1.1, 1e-4));
        assert!(close_enough(0.0, 1e-6, 1e-4));
    }

    #[test]
    fn session_lifecycle_on_native_silo() {
        let cl = simcl::SimCl::new();
        let mut session = Session::open(&cl).unwrap();
        session.build(simcl::kernels::builtins::SOURCE).unwrap();
        let k = session.kernel("fill").unwrap();
        let buf = session.buffer_f32(&[0.0; 16]).unwrap();
        session
            .set_args(k, &[KernelArg::Mem(buf), KernelArg::from_f32(2.5)])
            .unwrap();
        session.run_1d(k, 16).unwrap();
        let out = session.read_f32(buf, 16).unwrap();
        assert!(out.iter().all(|&v| v == 2.5));
        session.release(buf).unwrap();
        session.close().unwrap();
    }
}
