//! A minimal TOML reader/writer for `avad` configuration files.
//!
//! The repo builds offline with `--locked` and no external crates, so the
//! daemon carries its own parser for the TOML subset its config schema
//! actually uses: `[table]` / `[table.sub]` headers, `key = value` pairs
//! with string / integer / float / boolean values, comments, and blank
//! lines. Arrays, inline tables, dotted keys, and multi-line strings are
//! rejected with a line-numbered error — the config schema never needs
//! them, and refusing beats silently misreading.

use std::collections::BTreeMap;
use std::fmt;

/// A scalar TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string.
    Str(String),
    /// An integer (underscore separators accepted).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl TomlValue {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
        }
    }
}

impl fmt::Display for TomlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TomlValue::Str(s) => write!(f, "{}", write_str(s)),
            TomlValue::Int(i) => write!(f, "{i}"),
            TomlValue::Float(v) => write!(f, "{}", write_float(*v)),
            TomlValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One `[section]`'s key→value pairs.
pub type TomlTable = BTreeMap<String, TomlValue>;

/// A parsed document: table path (`""` for top-level keys, `"a.b"` for
/// `[a.b]`) → key/value pairs. Table order is not preserved; the schema
/// layer addresses tables by name.
pub type TomlDoc = BTreeMap<String, TomlTable>;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a TOML document (the subset described in the module docs).
pub fn parse(src: &str) -> Result<TomlDoc, TomlError> {
    let mut doc = TomlDoc::new();
    doc.insert(String::new(), TomlTable::new());
    let mut current = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if rest.starts_with('[') {
                return Err(err(lineno, "array-of-tables `[[...]]` is not supported"));
            }
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, "unterminated table header"));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty table name"));
            }
            for part in name.split('.') {
                if !is_bare_key(part.trim()) {
                    return Err(err(lineno, format!("invalid table name `{name}`")));
                }
            }
            let canonical = name
                .split('.')
                .map(|p| p.trim().to_string())
                .collect::<Vec<_>>()
                .join(".");
            current = canonical.clone();
            doc.entry(canonical).or_default();
            continue;
        }
        let Some(eq) = find_unquoted_eq(line) else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        if !is_bare_key(key) {
            return Err(err(lineno, format!("invalid key `{key}`")));
        }
        if value.is_empty() {
            return Err(err(lineno, format!("key `{key}` has no value")));
        }
        let parsed = parse_value(value, lineno)?;
        let table = doc.entry(current.clone()).or_default();
        if table.insert(key.to_string(), parsed).is_some() {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = in_str && c == '\\' && !escaped;
    }
    line
}

fn find_unquoted_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_value(value: &str, lineno: usize) -> Result<TomlValue, TomlError> {
    if let Some(rest) = value.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(err(lineno, "unterminated string"));
        };
        return Ok(TomlValue::Str(unescape(inner, lineno)?));
    }
    if value.starts_with('[') || value.starts_with('{') {
        return Err(err(lineno, "arrays and inline tables are not supported"));
    }
    match value {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let numeric: String = value.chars().filter(|&c| c != '_').collect();
    if numeric.contains('.') || numeric.contains('e') || numeric.contains('E') {
        if let Ok(f) = numeric.parse::<f64>() {
            return Ok(TomlValue::Float(f));
        }
    } else if let Ok(i) = numeric.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    Err(err(lineno, format!("cannot parse value `{value}`")))
}

fn unescape(s: &str, lineno: usize) -> Result<String, TomlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' {
                return Err(err(lineno, "unescaped quote inside string"));
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            other => {
                return Err(err(
                    lineno,
                    format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                ))
            }
        }
    }
    Ok(out)
}

/// Serializes a string as a quoted TOML value.
pub fn write_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a float so the parser reads the identical value back
/// (Rust's shortest round-trip `Display`, forced to carry a `.` or
/// exponent so TOML typing stays `Float`).
pub fn write_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.contains("inf")
        || s.contains("NaN")
    {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_scalar_types() {
        let doc = parse(
            r#"
# top comment
top_level = 3
[daemon]
listen = "127.0.0.1:0" # trailing comment
drain = 1_000
frac = 0.25
flag = true
[tenants.alice]
token = "se#cret \"x\""
"#,
        )
        .unwrap();
        assert_eq!(doc[""]["top_level"], TomlValue::Int(3));
        assert_eq!(
            doc["daemon"]["listen"],
            TomlValue::Str("127.0.0.1:0".into())
        );
        assert_eq!(doc["daemon"]["drain"], TomlValue::Int(1000));
        assert_eq!(doc["daemon"]["frac"], TomlValue::Float(0.25));
        assert_eq!(doc["daemon"]["flag"], TomlValue::Bool(true));
        assert_eq!(
            doc["tenants.alice"]["token"],
            TomlValue::Str("se#cret \"x\"".into())
        );
    }

    #[test]
    fn rejects_unsupported_and_malformed_syntax() {
        for (src, needle) in [
            ("[[vms]]\n", "array-of-tables"),
            ("x = [1, 2]\n", "arrays"),
            ("x = \n", "no value"),
            ("x 3\n", "expected `key = value`"),
            ("[a\n", "unterminated table header"),
            ("x = \"abc\n", "unterminated string"),
            ("[a]\nx = 1\nx = 2\n", "duplicate key"),
            ("x = zebra\n", "cannot parse value"),
        ] {
            let e = parse(src).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{src:?} -> {e} (wanted {needle})"
            );
        }
    }

    #[test]
    fn float_writer_round_trips() {
        for v in [0.0, 1.0, 0.05, 1e-9, 123456.789, 8.0] {
            let s = write_float(v);
            match parse_value(&s, 1).unwrap() {
                TomlValue::Float(back) => assert_eq!(back, v, "{s}"),
                other => panic!("{s} parsed as {other:?}"),
            }
        }
    }
}
