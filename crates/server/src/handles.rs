//! Per-VM handle translation.
//!
//! The guest never sees silo (vendor-library) handles: every object handle
//! crossing the transport is a *wire handle* minted by the API server. The
//! table maps wire → silo and records the handle kind so translations are
//! type-checked. An entry can also be in the `Swapped` state, meaning its
//! device-side object was evicted and its payload parked in host memory
//! (buffer-granularity swapping, §4.3).

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, ServerError};

/// State of one wire handle.
#[derive(Debug, Clone, PartialEq)]
pub enum HandleState {
    /// Backed by a live silo object.
    Live(u64),
    /// Device object evicted; payload parked host-side. The payload is
    /// shared with the [`MemoryManager`]'s digest-deduplicated store, so
    /// identical swapped content is held once however many handles (or
    /// VMs) reference it.
    ///
    /// [`MemoryManager`]: crate::memory::MemoryManager
    Swapped {
        /// Saved object contents (shared with the host-side store).
        data: Arc<Vec<u8>>,
    },
}

/// One table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct HandleEntry {
    /// Handle kind (the typedef name, e.g. `cl_mem`).
    pub kind: String,
    /// Live or swapped state.
    pub state: HandleState,
}

/// The wire↔silo handle table for one VM.
#[derive(Debug, Default)]
pub struct HandleTable {
    next: u64,
    map: HashMap<u64, HandleEntry>,
}

impl HandleTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        HandleTable {
            next: 0x4000_0000,
            map: HashMap::new(),
        }
    }

    /// Mints a new wire handle for a silo object.
    pub fn insert(&mut self, kind: &str, silo: u64) -> u64 {
        let wire = self.next;
        self.next += 1;
        self.map.insert(
            wire,
            HandleEntry {
                kind: kind.to_string(),
                state: HandleState::Live(silo),
            },
        );
        wire
    }

    /// Binds a *specific* wire handle (used by migration replay, where the
    /// guest already holds the old wire values).
    pub fn bind(&mut self, wire: u64, kind: &str, silo: u64) {
        self.next = self.next.max(wire + 1);
        self.map.insert(
            wire,
            HandleEntry {
                kind: kind.to_string(),
                state: HandleState::Live(silo),
            },
        );
    }

    /// Looks up an entry.
    pub fn get(&self, wire: u64) -> Option<&HandleEntry> {
        self.map.get(&wire)
    }

    /// Translates a wire handle of the expected kind to its silo handle.
    pub fn to_silo(&self, wire: u64, kind: &str) -> Result<u64> {
        let entry = self.map.get(&wire).ok_or(ServerError::BadHandle(wire))?;
        if entry.kind != kind {
            return Err(ServerError::BadArguments(format!(
                "handle {wire:#x} is a {} but a {kind} was expected",
                entry.kind
            )));
        }
        match &entry.state {
            HandleState::Live(silo) => Ok(*silo),
            HandleState::Swapped { .. } => Err(ServerError::Swap(format!(
                "handle {wire:#x} is swapped out"
            ))),
        }
    }

    /// Removes an entry, returning it.
    pub fn remove(&mut self, wire: u64) -> Option<HandleEntry> {
        self.map.remove(&wire)
    }

    /// Marks a handle swapped-out, parking `data`.
    pub fn mark_swapped(&mut self, wire: u64, data: Arc<Vec<u8>>) -> Result<()> {
        let entry = self
            .map
            .get_mut(&wire)
            .ok_or(ServerError::BadHandle(wire))?;
        entry.state = HandleState::Swapped { data };
        Ok(())
    }

    /// Brings a swapped handle back to life with a new silo handle,
    /// returning the parked payload.
    pub fn mark_live(&mut self, wire: u64, silo: u64) -> Result<Arc<Vec<u8>>> {
        let entry = self
            .map
            .get_mut(&wire)
            .ok_or(ServerError::BadHandle(wire))?;
        match std::mem::replace(&mut entry.state, HandleState::Live(silo)) {
            HandleState::Swapped { data } => Ok(data),
            live @ HandleState::Live(_) => {
                entry.state = live;
                Err(ServerError::Swap(format!(
                    "handle {wire:#x} was not swapped"
                )))
            }
        }
    }

    /// True if the handle is currently swapped out.
    pub fn is_swapped(&self, wire: u64) -> bool {
        matches!(
            self.map.get(&wire).map(|e| &e.state),
            Some(HandleState::Swapped { .. })
        )
    }

    /// All wire handles of a given kind that are currently live.
    pub fn live_of_kind(&self, kind: &str) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, e)| e.kind == kind && matches!(e.state, HandleState::Live(_)))
            .map(|(w, _)| *w)
            .collect();
        out.sort_unstable();
        out
    }

    /// All entries (wire, entry), sorted by wire handle.
    pub fn entries(&self) -> Vec<(u64, &HandleEntry)> {
        let mut out: Vec<(u64, &HandleEntry)> = self.map.iter().map(|(w, e)| (*w, e)).collect();
        out.sort_by_key(|(w, _)| *w);
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_translate_remove() {
        let mut t = HandleTable::new();
        let w = t.insert("cl_mem", 0x99);
        assert_eq!(t.to_silo(w, "cl_mem").unwrap(), 0x99);
        assert!(t.to_silo(w, "cl_context").is_err(), "kind mismatch");
        assert!(t.to_silo(0xdead, "cl_mem").is_err(), "unknown handle");
        assert!(t.remove(w).is_some());
        assert!(t.to_silo(w, "cl_mem").is_err());
    }

    #[test]
    fn wire_values_are_unique_and_disjoint_from_silo() {
        let mut t = HandleTable::new();
        let a = t.insert("k", 1);
        let b = t.insert("k", 1);
        assert_ne!(a, b);
        assert!(
            a >= 0x4000_0000,
            "wire namespace must not collide with silo ids"
        );
    }

    #[test]
    fn bind_reserves_explicit_wire_values() {
        let mut t = HandleTable::new();
        t.bind(0x4000_0005, "cl_mem", 7);
        assert_eq!(t.to_silo(0x4000_0005, "cl_mem").unwrap(), 7);
        // Fresh inserts must not collide with the bound value.
        let w = t.insert("cl_mem", 8);
        assert!(w > 0x4000_0005);
    }

    #[test]
    fn swap_lifecycle() {
        let mut t = HandleTable::new();
        let w = t.insert("cl_mem", 3);
        assert!(!t.is_swapped(w));
        t.mark_swapped(w, Arc::new(vec![1, 2, 3])).unwrap();
        assert!(t.is_swapped(w));
        assert!(t.to_silo(w, "cl_mem").is_err(), "swapped handle not usable");
        let data = t.mark_live(w, 12).unwrap();
        assert_eq!(*data, vec![1, 2, 3]);
        assert_eq!(t.to_silo(w, "cl_mem").unwrap(), 12);
        assert!(t.mark_live(w, 13).is_err(), "double swap-in rejected");
    }

    #[test]
    fn live_of_kind_filters() {
        let mut t = HandleTable::new();
        let a = t.insert("cl_mem", 1);
        let _b = t.insert("cl_context", 2);
        let c = t.insert("cl_mem", 3);
        t.mark_swapped(c, Arc::new(vec![])).unwrap();
        assert_eq!(t.live_of_kind("cl_mem"), vec![a]);
        assert_eq!(t.len(), 3);
    }
}
