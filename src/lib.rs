//! `ava` — the repository root crate: re-exports the whole AvA
//! reproduction so examples and repo-level integration tests can use one
//! dependency. The library itself lives in `crates/` (see README.md and
//! DESIGN.md).

pub use ava_cava as cava;
pub use ava_core as core;
pub use ava_guest as guest;
pub use ava_hypervisor as hypervisor;
pub use ava_server as server;
pub use ava_spec as spec;
pub use ava_transport as transport;
pub use ava_wire as wire;
pub use ava_workloads as workloads;
pub use simcl;
pub use simnc;
